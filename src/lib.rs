//! # hyperq — facade for the Hyper-Q reproduction
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can write `use hyperq::core::...` etc. See the README
//! for the architecture overview and DESIGN.md for the paper mapping.
//!
//! ```
//! use std::sync::Arc;
//! use hyperq::core::{targets, Backend, HyperQBuilder};
//! use hyperq::engine::EngineDb;
//!
//! let warehouse = Arc::new(EngineDb::new());
//! warehouse
//!     .execute_sql("CREATE TABLE SALES (AMOUNT INTEGER, SALES_DATE DATE)")
//!     .unwrap();
//! warehouse
//!     .execute_sql("INSERT INTO SALES VALUES (500, DATE '2014-03-01')")
//!     .unwrap();
//!
//! let mut hq =
//!     HyperQBuilder::for_target(warehouse as Arc<dyn Backend>, targets::simwh()).build();
//! // Teradata dialect in (SEL, integer-coded date, QUALIFY shorthand)…
//! let out = hq
//!     .run_one("SEL * FROM SALES WHERE SALES_DATE > 1140101 QUALIFY RANK(AMOUNT DESC) <= 10")
//!     .unwrap();
//! // …ANSI SQL out, executed on the target.
//! assert_eq!(out.result.rows.len(), 1);
//! assert!(!out.sql_sent[0].contains("QUALIFY"));
//! ```

#![forbid(unsafe_code)]

pub use hyperq_assess as assess;
pub use hyperq_core as core;
pub use hyperq_governor as governor;
pub use hyperq_obs as obs;
pub use hyperq_engine as engine;
pub use hyperq_parser as parser;
pub use hyperq_wire as wire;
pub use hyperq_workload as workload;
pub use hyperq_xtra as xtra;
