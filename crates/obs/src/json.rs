//! Minimal JSON well-formedness checker.
//!
//! The workspace has no serde; the expositions in this crate hand-roll
//! their JSON. This validator closes the loop: tests and the observability
//! endpoint's smoke checks can assert that rendered output actually parses
//! without pulling in a dependency. It checks syntax only (RFC 8259
//! grammar), not any schema.

/// Validate that `s` is one well-formed JSON value. Returns the byte
/// offset and a message on the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(b, pos) {
        return Err(err(start, "bad number"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(err(start, "bad number fraction"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(err(start, "bad number exponent"));
        }
    }
    Ok(())
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, "bad literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"a\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " [ 1 , 2 ] ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "01x",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(validate(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn validates_registry_expositions() {
        let r = crate::metrics::MetricsRegistry::default();
        r.counter("a_total", &[("k", "v\"q\n")]).inc();
        r.histogram("h_seconds", &[]).record_micros(3);
        validate(&r.render_json()).unwrap();
    }
}
