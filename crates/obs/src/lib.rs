//! Zero-dependency observability for the Hyper-Q pipeline.
//!
//! Three pillars, one context:
//!
//! * [`trace`] — lightweight span/event tracing with per-statement trace
//!   ids, propagated through a thread-local stack and buffered in a
//!   bounded ring.
//! * [`metrics`] — a registry of atomic counters, gauges and log-bucketed
//!   latency histograms, rendered via [`metrics::MetricsRegistry::render_prometheus`]
//!   and [`metrics::MetricsRegistry::render_json`].
//! * [`slowlog`] — statements exceeding a latency threshold are captured
//!   with their full span tree.
//!
//! Pipeline layers share an [`ObsContext`]: the process-wide
//! [`ObsContext::global`] by default, or an isolated instance in tests.
//! Recording on the hot path is atomics-only; registry lookups happen once
//! at construction time and hand out `Arc` handles.

#![forbid(unsafe_code)]

pub mod io;
pub mod json;
pub mod metrics;
pub mod provenance;
pub mod report;
pub mod slowlog;
pub mod trace;

use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use provenance::{CacheOutcome, ConvertStats, ProvenanceLog, ProvenanceRecord};
pub use report::WorkloadReport;
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use trace::{Span, SpanId, SpanRecord, TraceId, TraceSink};

/// Per-statement stage timings (the paper's Figure 9 instrumentation):
/// `translation` covers parsing, binding, backend-specific transformations
/// and emitting the final query into the target language; `execution` is
/// the time the target database took. Lives here so every layer can report
/// timings without depending on the core crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    pub translation: Duration,
    pub execution: Duration,
}

impl StageTimings {
    pub fn merge(&mut self, other: StageTimings) {
        self.translation += other.translation;
        self.execution += other.execution;
    }
}

/// Shared observability state: metrics registry, trace sink, slow-query
/// log, per-statement provenance ring.
#[derive(Debug, Default)]
pub struct ObsContext {
    pub metrics: MetricsRegistry,
    pub traces: TraceSink,
    pub slowlog: SlowQueryLog,
    pub provenance: ProvenanceLog,
}

/// Provenance capture knobs, applied through `HyperQBuilder` or directly
/// on an [`ObsContext`].
#[derive(Debug, Clone, Copy)]
pub struct ProvenanceConfig {
    pub enabled: bool,
    /// Total ring capacity across shards.
    pub capacity: usize,
    /// Store raw SQL in records instead of literal-redacted text.
    pub capture_raw_sql: bool,
}

impl Default for ProvenanceConfig {
    fn default() -> Self {
        ProvenanceConfig {
            enabled: true,
            capacity: provenance::DEFAULT_PROVENANCE_CAPACITY,
            capture_raw_sql: false,
        }
    }
}

impl ProvenanceConfig {
    pub fn apply(&self, log: &ProvenanceLog) {
        log.set_enabled(self.enabled);
        log.set_capacity(self.capacity);
        log.set_capture_raw(self.capture_raw_sql);
    }
}

impl ObsContext {
    /// A fresh, isolated context (used by tests and by anything that wants
    /// metrics scoped away from the process globals).
    pub fn new() -> Arc<ObsContext> {
        Arc::new(ObsContext::default())
    }

    /// The process-wide context. Environment knobs, read once:
    ///
    /// * `HYPERQ_SLOW_QUERY_MS` — slow-query log threshold in milliseconds
    ///   (unset or 0 disables capture).
    /// * `HYPERQ_TRACE` — set to `0` or `off` to disable span buffering.
    /// * `HYPERQ_PROVENANCE` — set to `0` or `off` to disable per-statement
    ///   provenance capture.
    /// * `HYPERQ_RAW_SQL` — set to `1` or `on` to store raw (unredacted)
    ///   SQL in the slow-query log and provenance records.
    pub fn global() -> &'static Arc<ObsContext> {
        static GLOBAL: OnceLock<Arc<ObsContext>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let ctx = ObsContext::new();
            if let Ok(ms) = std::env::var("HYPERQ_SLOW_QUERY_MS") {
                if let Ok(ms) = ms.trim().parse::<u64>() {
                    if ms > 0 {
                        ctx.slowlog.set_threshold(Some(Duration::from_millis(ms)));
                    }
                }
            }
            let off = |v: String| {
                let v = v.trim().to_ascii_lowercase();
                v == "0" || v == "off" || v == "false"
            };
            let on = |v: String| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "on" || v == "true"
            };
            if std::env::var("HYPERQ_TRACE").is_ok_and(off) {
                ctx.traces.set_enabled(false);
            }
            if std::env::var("HYPERQ_PROVENANCE").is_ok_and(off) {
                ctx.provenance.set_enabled(false);
            }
            if std::env::var("HYPERQ_RAW_SQL").is_ok_and(on) {
                ctx.provenance.set_capture_raw(true);
                ctx.slowlog.set_capture_raw(true);
            }
            ctx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_merge_accumulates() {
        let mut t = StageTimings::default();
        t.merge(StageTimings {
            translation: Duration::from_millis(2),
            execution: Duration::from_millis(3),
        });
        t.merge(StageTimings {
            translation: Duration::from_millis(1),
            execution: Duration::from_millis(4),
        });
        assert_eq!(t.translation, Duration::from_millis(3));
        assert_eq!(t.execution, Duration::from_millis(7));
    }

    #[test]
    fn global_context_is_a_singleton() {
        let a = Arc::as_ptr(ObsContext::global());
        let b = Arc::as_ptr(ObsContext::global());
        assert_eq!(a, b);
    }
}
