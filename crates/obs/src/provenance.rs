//! Per-statement query provenance: what happened to each statement.
//!
//! Aggregate metrics (counters, histograms) answer "how is the fleet
//! doing"; provenance answers "what happened to *this* query": which
//! rewrite rules fired and how often, which emulations ran, whether the
//! translation cache hit, how many transparent retries and recoveries the
//! backend needed, how long admission queued it, and how the time split
//! across pipeline stages. Records land in a bounded, sharded ring so a
//! busy gateway keeps a rolling window of recent statements without
//! unbounded memory.
//!
//! Capture is hook-based: the crosscompiler opens a per-statement builder
//! on the current thread ([`ProvenanceLog::begin`]), instrumented layers
//! deeper in the stack (transformer, resilient/recovering backends, the
//! admission gate) call the free `note_*` functions — each a cheap
//! thread-local check that no-ops when no builder is active — and the
//! statement epilogue seals the record ([`ProvenanceLog::finish`]). This
//! works because one statement runs on one thread end to end; layers never
//! thread record handles explicitly, mirroring the span stack in
//! [`crate::trace`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::json_str;
use crate::trace::TraceId;

/// Default total ring capacity across all shards.
pub const DEFAULT_PROVENANCE_CAPACITY: usize = 1024;

const SHARDS: usize = 8;

/// How the translation cache treated a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The statement never interacted with the cache (cache disabled, or a
    /// statement kind the cache does not hold).
    Uncached,
    /// Served from a cached translation.
    Hit,
    /// Translated fresh; the result was offered to the cache.
    Miss,
    /// Deliberately skipped, with the reason.
    Bypass(&'static str),
}

impl CacheOutcome {
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Uncached => "uncached",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass(_) => "bypass",
        }
    }

    pub fn bypass_reason(&self) -> Option<&'static str> {
        match self {
            CacheOutcome::Bypass(r) => Some(r),
            _ => None,
        }
    }
}

/// Result-conversion statistics attached after the fact by the wire layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertStats {
    pub rows: u64,
    pub bytes: u64,
    pub duration: Duration,
}

/// One statement's full forensic trail.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord {
    /// Monotonic capture sequence number (per log).
    pub seq: u64,
    pub trace: TraceId,
    /// Literal-normalized query fingerprint (0 when unfingerprintable).
    pub fingerprint: u64,
    /// Coarse statement kind from the leading keyword.
    pub kind: &'static str,
    /// Registry name of the target profile the statement was translated
    /// for (`simwh`, `simwh-reduced`, ...).
    pub target: String,
    /// Statement text, literal-redacted unless raw capture is enabled.
    pub sql: String,
    pub total: Duration,
    /// Per-stage latency breakdown, accumulated across nested pipeline
    /// runs (e.g. macro bodies, MERGE legs).
    pub stages: Vec<(&'static str, Duration)>,
    /// Transform rules that fired, with per-rule fire counts.
    pub rules: Vec<(&'static str, u64)>,
    /// Emulation kinds triggered, with counts.
    pub emulations: Vec<(&'static str, u64)>,
    /// Detected non-standard dialect feature codes (T1…E9).
    pub features: Vec<&'static str>,
    pub cache: CacheOutcome,
    /// Transparent backend retries consumed by this statement.
    pub retries: u64,
    /// Transparent session recoveries consumed by this statement.
    pub recoveries: u64,
    /// Time spent queued at admission gates before this statement ran.
    pub admission_wait: Duration,
    /// Analyze-mode verdict: the mode the plan validator ran under.
    pub analyze_mode: &'static str,
    /// Validator invariant violations observed during this statement.
    pub violations: u64,
    pub ok: bool,
    pub error: Option<String>,
    /// Why the governor cancelled this statement (`client_abort`,
    /// `deadline`, `budget`, `shutdown`), if it was cancelled.
    pub cancelled: Option<&'static str>,
    /// Which replica served this statement, when a replicated backend
    /// routed it (`r0`, `r1`, …); `None` on single-backend paths.
    pub replica: Option<String>,
    /// Rows produced by the backend.
    pub rows: u64,
    /// Wire-format conversion stats, if the result was converted.
    pub convert: Option<ConvertStats>,
}

/// Thread-local in-flight record state.
#[derive(Debug, Default)]
struct Builder {
    stages: Vec<(&'static str, Duration)>,
    rules: Vec<(&'static str, u64)>,
    emulations: Vec<(&'static str, u64)>,
    cache: Option<CacheOutcome>,
    retries: u64,
    recoveries: u64,
    violations: u64,
    admission_wait: Duration,
    cancelled: Option<&'static str>,
    replica: Option<String>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Builder>> = const { RefCell::new(None) };
    /// Admission wait observed before the statement's builder exists
    /// (gates admit before the crosscompiler runs); micros, accumulated.
    static PENDING_ADMISSION_MICROS: Cell<u64> = const { Cell::new(0) };
    /// Cache-bypass reason decided before the builder exists (the fast
    /// path rejects, then the slow path begins the record).
    static PENDING_CACHE_BYPASS: Cell<Option<&'static str>> = const { Cell::new(None) };
}

fn with_active(f: impl FnOnce(&mut Builder)) {
    ACTIVE.with(|a| {
        if let Some(b) = a.borrow_mut().as_mut() {
            f(b);
        }
    });
}

fn accumulate(list: &mut Vec<(&'static str, u64)>, key: &'static str, n: u64) {
    match list.iter_mut().find(|(k, _)| *k == key) {
        Some((_, v)) => *v += n,
        None => list.push((key, n)),
    }
}

/// Add `d` to the named stage of the active record, if any.
pub fn note_stage(name: &'static str, d: Duration) {
    with_active(|b| match b.stages.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += d,
        None => b.stages.push((name, d)),
    });
}

/// Credit `fires` firings of a transform rule to the active record.
pub fn note_rule(name: &'static str, fires: u64) {
    if fires > 0 {
        with_active(|b| accumulate(&mut b.rules, name, fires));
    }
}

/// Record one emulation of the given kind against the active record.
pub fn note_emulation(kind: &'static str) {
    with_active(|b| accumulate(&mut b.emulations, kind, 1));
}

/// Set the cache outcome of the active record (last writer wins).
pub fn note_cache(outcome: CacheOutcome) {
    with_active(|b| b.cache = Some(outcome));
}

/// Record one transparent backend retry.
pub fn note_retry() {
    with_active(|b| b.retries += 1);
}

/// Record one transparent session recovery.
pub fn note_recovery() {
    with_active(|b| b.recoveries += 1);
}

/// Record one validator invariant violation.
pub fn note_violation() {
    with_active(|b| b.violations += 1);
}

/// Record that the governor cancelled this statement, with the stable
/// cancel-reason label (first writer wins, matching the sticky token).
pub fn note_cancelled(reason: &'static str) {
    with_active(|b| {
        if b.cancelled.is_none() {
            b.cancelled = Some(reason);
        }
    });
}

/// Record which replica served the statement (last writer wins: a write
/// broadcast notes the replica whose result was returned to the client).
pub fn note_replica(name: &str) {
    with_active(|b| b.replica = Some(name.to_string()));
}

/// Record time spent queued at an admission gate. Safe to call before the
/// statement's record exists: the wait is parked thread-locally and folded
/// into the next [`ProvenanceLog::begin`].
pub fn pend_admission_wait(d: Duration) {
    let micros = d.as_micros().min(u64::MAX as u128) as u64;
    ACTIVE.with(|a| {
        if let Some(b) = a.borrow_mut().as_mut() {
            b.admission_wait += d;
            return;
        }
        PENDING_ADMISSION_MICROS.with(|c| c.set(c.get().saturating_add(micros)));
    });
}

/// Park a cache-bypass reason for the next [`ProvenanceLog::begin`] on
/// this thread (used when the bypass decision precedes the record).
pub fn pend_cache_bypass(reason: &'static str) {
    PENDING_CACHE_BYPASS.with(|c| c.set(Some(reason)));
}

/// Run `f` with provenance capture suspended on this thread: notes made
/// inside do not reach the active record. Used for side-band work (cache
/// revalidation probes) that must not pollute the statement's trail.
pub fn suspended<T>(f: impl FnOnce() -> T) -> T {
    let saved = ACTIVE.with(|a| a.borrow_mut().take());
    let out = f();
    ACTIVE.with(|a| *a.borrow_mut() = saved);
    out
}

/// Everything the statement epilogue knows when sealing a record.
#[derive(Debug)]
pub struct FinishedStatement<'a> {
    pub trace: TraceId,
    pub fingerprint: u64,
    pub kind: &'static str,
    /// Registry name of the target profile in effect for the statement.
    pub target: &'a str,
    pub sql: &'a str,
    pub total: Duration,
    pub features: Vec<&'static str>,
    pub analyze_mode: &'static str,
    pub rows: u64,
    pub error: Option<&'a str>,
}

/// Bounded, sharded ring of [`ProvenanceRecord`]s.
///
/// Shards are selected by trace id, so concurrent sessions rarely contend
/// on the same lock and post-hoc attachment ([`ProvenanceLog::attach_convert`])
/// only scans one shard.
#[derive(Debug)]
pub struct ProvenanceLog {
    enabled: AtomicBool,
    capture_raw: AtomicBool,
    seq: AtomicU64,
    capacity: AtomicUsize,
    shards: [Mutex<VecDeque<ProvenanceRecord>>; SHARDS],
}

impl Default for ProvenanceLog {
    fn default() -> Self {
        ProvenanceLog {
            enabled: AtomicBool::new(true),
            capture_raw: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            capacity: AtomicUsize::new(DEFAULT_PROVENANCE_CAPACITY),
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
        }
    }
}

impl ProvenanceLog {
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opt in to storing raw SQL instead of literal-redacted text.
    pub fn set_capture_raw(&self, on: bool) {
        self.capture_raw.store(on, Ordering::Relaxed);
    }

    pub fn capture_raw(&self) -> bool {
        self.capture_raw.load(Ordering::Relaxed)
    }

    /// Total ring capacity across shards; applies to subsequent captures.
    pub fn set_capacity(&self, total: usize) {
        self.capacity.store(total.max(SHARDS), Ordering::Relaxed);
    }

    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    fn shard_capacity(&self) -> usize {
        self.capacity().div_ceil(SHARDS)
    }

    /// Open a builder for the statement starting on this thread, consuming
    /// any parked admission wait / cache-bypass reason. When capture is
    /// disabled the parked state is still drained so it cannot leak into a
    /// later statement.
    pub fn begin(&self) {
        let parked_wait = PENDING_ADMISSION_MICROS.with(|c| c.replace(0));
        let parked_bypass = PENDING_CACHE_BYPASS.with(|c| c.replace(None));
        if !self.is_enabled() {
            ACTIVE.with(|a| *a.borrow_mut() = None);
            return;
        }
        let builder = Builder {
            admission_wait: Duration::from_micros(parked_wait),
            cache: parked_bypass.map(CacheOutcome::Bypass),
            ..Builder::default()
        };
        ACTIVE.with(|a| *a.borrow_mut() = Some(builder));
    }

    /// Whether this thread currently has an open builder.
    pub fn in_flight(&self) -> bool {
        ACTIVE.with(|a| a.borrow().is_some())
    }

    /// Seal the active builder into a record. Returns the sequence number,
    /// or `None` when no builder was active (capture disabled, or nested).
    pub fn finish(&self, f: FinishedStatement<'_>) -> Option<u64> {
        let builder = ACTIVE.with(|a| a.borrow_mut().take())?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = ProvenanceRecord {
            seq,
            trace: f.trace,
            fingerprint: f.fingerprint,
            kind: f.kind,
            target: f.target.to_string(),
            sql: f.sql.to_string(),
            total: f.total,
            stages: builder.stages,
            rules: builder.rules,
            emulations: builder.emulations,
            features: f.features,
            cache: builder.cache.unwrap_or(CacheOutcome::Uncached),
            retries: builder.retries,
            recoveries: builder.recoveries,
            admission_wait: builder.admission_wait,
            analyze_mode: f.analyze_mode,
            violations: builder.violations,
            ok: f.error.is_none(),
            error: f.error.map(|e| truncate(e, 240)),
            cancelled: builder.cancelled,
            replica: builder.replica,
            rows: f.rows,
            convert: None,
        };
        self.push(record);
        Some(seq)
    }

    fn push(&self, record: ProvenanceRecord) {
        let cap = self.shard_capacity();
        let shard = &self.shards[record.trace.0 as usize % SHARDS];
        let mut ring = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Attach result-conversion stats to the (already sealed) record of a
    /// trace. Returns whether a record was found.
    pub fn attach_convert(
        &self,
        trace: TraceId,
        rows: u64,
        bytes: u64,
        duration: Duration,
    ) -> bool {
        let shard = &self.shards[trace.0 as usize % SHARDS];
        let mut ring = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for rec in ring.iter_mut().rev() {
            if rec.trace == trace && rec.convert.is_none() {
                rec.convert = Some(ConvertStats { rows, bytes, duration });
                return true;
            }
        }
        false
    }

    /// All buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<ProvenanceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            out.extend(ring.iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The most recent `n` records, oldest of those first.
    pub fn recent(&self, n: usize) -> Vec<ProvenanceRecord> {
        let mut all = self.snapshot();
        let skip = all.len().saturating_sub(n);
        all.drain(..skip);
        all
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// Render records as a JSON array (hand-rolled; the workspace has no
/// serde).
pub fn render_json(records: &[ProvenanceRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_record_json(r));
    }
    out.push(']');
    out
}

fn render_record_json(r: &ProvenanceRecord) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"seq\":{},", r.seq));
    out.push_str(&format!("\"trace\":\"{}\",", r.trace));
    out.push_str(&format!("\"fingerprint\":\"{:016x}\",", r.fingerprint));
    out.push_str(&format!("\"kind\":{},", json_str(r.kind)));
    out.push_str(&format!("\"target\":{},", json_str(&r.target)));
    out.push_str(&format!("\"sql\":{},", json_str(&r.sql)));
    out.push_str(&format!("\"total_seconds\":{},", r.total.as_secs_f64()));
    out.push_str("\"stages\":{");
    for (i, (name, d)) in r.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(name), d.as_secs_f64()));
    }
    out.push_str("},\"rules\":{");
    for (i, (name, n)) in r.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(name), n));
    }
    out.push_str("},\"emulations\":{");
    for (i, (kind, n)) in r.emulations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(kind), n));
    }
    out.push_str("},\"features\":[");
    for (i, code) in r.features.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(code));
    }
    out.push_str("],");
    out.push_str(&format!("\"cache\":{},", json_str(r.cache.as_str())));
    out.push_str(&format!(
        "\"cache_bypass_reason\":{},",
        r.cache.bypass_reason().map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!("\"retries\":{},", r.retries));
    out.push_str(&format!("\"recoveries\":{},", r.recoveries));
    out.push_str(&format!(
        "\"admission_wait_seconds\":{},",
        r.admission_wait.as_secs_f64()
    ));
    out.push_str(&format!("\"analyze_mode\":{},", json_str(r.analyze_mode)));
    out.push_str(&format!("\"violations\":{},", r.violations));
    out.push_str(&format!("\"ok\":{},", r.ok));
    out.push_str(&format!(
        "\"error\":{},",
        r.error.as_deref().map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!(
        "\"cancelled\":{},",
        r.cancelled.map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!(
        "\"replica\":{},",
        r.replica.as_deref().map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!("\"rows\":{},", r.rows));
    match &r.convert {
        Some(c) => out.push_str(&format!(
            "\"convert\":{{\"rows\":{},\"bytes\":{},\"duration_seconds\":{}}}",
            c.rows,
            c.bytes,
            c.duration.as_secs_f64()
        )),
        None => out.push_str("\"convert\":null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seal(log: &ProvenanceLog, trace: u64, sql: &str, ok: bool) -> Option<u64> {
        log.finish(FinishedStatement {
            trace: TraceId(trace),
            fingerprint: 0xabcd,
            kind: "select",
            target: "simwh",
            sql,
            total: Duration::from_micros(500),
            features: vec!["X1"],
            analyze_mode: "log_only",
            rows: 3,
            error: (!ok).then_some("boom"),
        })
    }

    #[test]
    fn begin_note_finish_roundtrip() {
        let log = ProvenanceLog::default();
        log.begin();
        assert!(log.in_flight());
        note_stage("bind", Duration::from_micros(10));
        note_stage("bind", Duration::from_micros(5));
        note_rule("qualify_to_subquery", 2);
        note_rule("noop_rule", 0);
        note_emulation("macro");
        note_emulation("macro");
        note_cache(CacheOutcome::Miss);
        note_retry();
        note_recovery();
        note_violation();
        let seq = seal(&log, 7, "SELECT 1", true).unwrap();
        assert!(!log.in_flight());
        let records = log.snapshot();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.seq, seq);
        assert_eq!(r.stages, vec![("bind", Duration::from_micros(15))]);
        assert_eq!(r.rules, vec![("qualify_to_subquery", 2)]);
        assert_eq!(r.emulations, vec![("macro", 2)]);
        assert_eq!(r.cache, CacheOutcome::Miss);
        assert_eq!((r.retries, r.recoveries, r.violations), (1, 1, 1));
        assert!(r.ok);
        assert_eq!(r.features, vec!["X1"]);
    }

    #[test]
    fn notes_without_begin_are_noops_and_finish_returns_none() {
        let log = ProvenanceLog::default();
        note_stage("bind", Duration::from_micros(10));
        note_retry();
        assert_eq!(seal(&log, 1, "SELECT 1", true), None);
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_log_drains_parked_state() {
        let log = ProvenanceLog::default();
        pend_admission_wait(Duration::from_micros(100));
        pend_cache_bypass("volatile");
        log.set_enabled(false);
        log.begin();
        assert!(!log.in_flight());
        log.set_enabled(true);
        log.begin();
        let _ = seal(&log, 2, "SELECT 1", true);
        let r = &log.snapshot()[0];
        assert_eq!(r.admission_wait, Duration::ZERO, "parked wait must not leak");
        assert_eq!(r.cache, CacheOutcome::Uncached, "parked bypass must not leak");
    }

    #[test]
    fn parked_admission_and_bypass_fold_into_next_begin() {
        let log = ProvenanceLog::default();
        pend_admission_wait(Duration::from_micros(40));
        pend_admission_wait(Duration::from_micros(2));
        pend_cache_bypass("volatile");
        log.begin();
        pend_admission_wait(Duration::from_micros(8)); // active: adds directly
        let _ = seal(&log, 3, "SELECT 1", true);
        let r = &log.snapshot()[0];
        assert_eq!(r.admission_wait, Duration::from_micros(50));
        assert_eq!(r.cache, CacheOutcome::Bypass("volatile"));
        assert_eq!(r.cache.as_str(), "bypass");
        assert_eq!(r.cache.bypass_reason(), Some("volatile"));
    }

    #[test]
    fn suspended_shields_the_active_record() {
        let log = ProvenanceLog::default();
        log.begin();
        note_rule("real", 1);
        suspended(|| {
            note_rule("probe_only", 9);
            note_retry();
        });
        let _ = seal(&log, 4, "SELECT 1", true);
        let r = &log.snapshot()[0];
        assert_eq!(r.rules, vec![("real", 1)]);
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn ring_is_bounded_and_recent_returns_newest() {
        let log = ProvenanceLog::default();
        log.set_capacity(SHARDS); // one record per shard
        for i in 0..50 {
            log.begin();
            let _ = seal(&log, i, "SELECT 1", true);
        }
        assert!(log.len() <= SHARDS);
        let recent = log.recent(3);
        assert_eq!(recent.len(), 3);
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(recent.last().unwrap().seq, 49);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn attach_convert_finds_record_by_trace() {
        let log = ProvenanceLog::default();
        log.begin();
        let _ = seal(&log, 11, "SELECT 1", true);
        assert!(log.attach_convert(TraceId(11), 3, 120, Duration::from_micros(9)));
        assert!(!log.attach_convert(TraceId(12), 1, 1, Duration::ZERO));
        let r = &log.snapshot()[0];
        let c = r.convert.unwrap();
        assert_eq!((c.rows, c.bytes), (3, 120));
    }

    #[test]
    fn error_records_truncate_and_render_as_json() {
        let log = ProvenanceLog::default();
        log.begin();
        let long = "x".repeat(500);
        log.finish(FinishedStatement {
            trace: TraceId(5),
            fingerprint: 1,
            kind: "select",
            target: "simwh",
            sql: "SELECT 1",
            total: Duration::from_micros(10),
            features: Vec::new(),
            analyze_mode: "off",
            rows: 0,
            error: Some(&long),
        });
        let records = log.snapshot();
        assert!(!records[0].ok);
        assert!(records[0].error.as_ref().unwrap().len() < 500);
        let json = render_json(&records);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"cache\":\"uncached\""));
        assert!(json.contains("\"convert\":null"));
        crate::json::validate(&json).expect("record JSON must parse");
    }
}
