//! Metrics primitives and the registry.
//!
//! Handle acquisition (`counter`/`gauge`/`histogram`) takes a lock and is
//! meant for cold paths — construction time, session setup. The returned
//! `Arc` handles are lock-free: recording is a handful of relaxed atomic
//! operations, so instrumented hot paths pay nothing measurable when nobody
//! is scraping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (active sessions, in-flight statements).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite buckets; bucket `i` has upper bound `2^i` microseconds,
/// so the largest finite bound is ~36 minutes. Values beyond that land in
/// the overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Log₂-bucketed latency histogram over microseconds.
///
/// Recording is wait-free: one bucket increment plus count/sum adds and a
/// compare-exchange loop for the max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

/// Upper bound of finite bucket `i`, in microseconds.
pub fn bucket_bound_micros(i: usize) -> u64 {
    1u64 << i
}

fn bucket_index(micros: u64) -> Option<usize> {
    let idx = if micros <= 1 {
        0
    } else {
        64 - (micros - 1).leading_zeros() as usize
    };
    (idx < HISTOGRAM_BUCKETS).then_some(idx)
}

impl Histogram {
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn record_micros(&self, micros: u64) {
        match bucket_index(micros) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from bucket counts. Returns
    /// the upper bound of the bucket holding the target rank; quantiles
    /// that fall in the overflow bucket report the observed max.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Duration::from_micros(bucket_bound_micros(i));
            }
        }
        self.max()
    }

    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    fn bucket_counts(&self) -> ([u64; HISTOGRAM_BUCKETS], u64) {
        (
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.overflow.load(Ordering::Relaxed),
        )
    }
}

/// Metric identity: name plus sorted label pairs. `BTreeMap` keys keep the
/// exposition output deterministically ordered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    MetricKey { name: name.to_string(), labels }
}

/// Registry of named metrics. One global instance lives in
/// [`crate::ObsContext::global`]; tests build isolated ones.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

macro_rules! get_or_insert {
    ($map:expr, $name:expr, $labels:expr) => {{
        let mut map = $map.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(key($name, $labels)).or_default())
    }};
}

impl MetricsRegistry {
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_insert!(self.counters, name, labels)
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_insert!(self.gauges, name, labels)
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_insert!(self.histograms, name, labels)
    }

    /// Read a counter's current value without creating it; 0 if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let map = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(&key(name, labels)).map_or(0, |c| c.get())
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, c) in self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
            out.push_str(&format!("{}{} {}\n", k.name, label_set(&k.labels, None), c.get()));
        }
        for (k, g) in self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
            out.push_str(&format!("{}{} {}\n", k.name, label_set(&k.labels, None), g.get()));
        }
        for (k, h) in self.histograms.lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
            let (buckets, overflow) = h.bucket_counts();
            let mut cumulative = 0u64;
            // Emit finite buckets up to the one covering the observed max
            // (always at least one), then +Inf — a valid cumulative
            // exposition without 32 lines of empty tail per histogram.
            let max_micros = h.max().as_micros() as u64;
            let last = bucket_index(max_micros).unwrap_or(HISTOGRAM_BUCKETS - 1);
            for (i, b) in buckets.iter().enumerate().take(last + 1) {
                cumulative += b;
                let le = bucket_bound_micros(i) as f64 / 1e6;
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    k.name,
                    label_set(&k.labels, Some(&format!("{le}"))),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                k.name,
                label_set(&k.labels, Some("+Inf")),
                cumulative + overflow
            ));
            let sum = h.sum().as_micros() as f64 / 1e6;
            out.push_str(&format!("{}_sum{} {}\n", k.name, label_set(&k.labels, None), sum));
            out.push_str(&format!("{}_count{} {}\n", k.name, label_set(&k.labels, None), h.count()));
            // Pre-computed quantile gauges (seconds), so scrapers get
            // latency percentiles without doing histogram math.
            for (suffix, v) in
                [("p50", h.p50()), ("p95", h.p95()), ("p99", h.p99())]
            {
                out.push_str(&format!(
                    "{}_{suffix}{} {}\n",
                    k.name,
                    label_set(&k.labels, None),
                    v.as_micros() as f64 / 1e6
                ));
            }
        }
        out
    }

    /// Render every metric as a JSON object (hand-rolled; the workspace has
    /// no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        let counters = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, (k, c)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                json_str(&k.name),
                json_labels(&k.labels),
                c.get()
            ));
        }
        drop(counters);
        out.push_str("],\"gauges\":[");
        let gauges = self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, (k, g)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                json_str(&k.name),
                json_labels(&k.labels),
                g.get()
            ));
        }
        drop(gauges);
        out.push_str("],\"histograms\":[");
        let histograms = self.histograms.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, (k, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"count\":{},\"sum_seconds\":{},\
                 \"max_seconds\":{},\"p50_seconds\":{},\"p95_seconds\":{},\"p99_seconds\":{}}}",
                json_str(&k.name),
                json_labels(&k.labels),
                h.count(),
                h.sum().as_secs_f64(),
                h.max().as_secs_f64(),
                h.p50().as_secs_f64(),
                h.p95().as_secs_f64(),
                h.p99().as_secs_f64(),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{}:{}", json_str(k), json_str(v))).collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_over_micros() {
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(2), Some(1));
        assert_eq!(bucket_index(3), Some(2));
        assert_eq!(bucket_index(4), Some(2));
        assert_eq!(bucket_index(5), Some(3));
        assert_eq!(bucket_index(1 << 31), Some(31));
        assert_eq!(bucket_index((1 << 31) + 1), None, "past the last finite bound");
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn histogram_quantiles_track_bucket_bounds() {
        let h = Histogram::default();
        // 90 fast (≤8µs bucket) and 10 slow (≤1024µs bucket) samples.
        for _ in 0..90 {
            h.record_micros(7);
        }
        for _ in 0..10 {
            h.record_micros(1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Duration::from_micros(8));
        assert_eq!(h.quantile(0.90), Duration::from_micros(8));
        assert_eq!(h.p95(), Duration::from_micros(1024));
        assert_eq!(h.p99(), Duration::from_micros(1024));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.sum(), Duration::from_micros(90 * 7 + 10 * 1000));
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::default();
        h.record_micros(3);
        h.record(Duration::from_secs(10_000)); // 1e10 µs > 2^31 µs
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), h.max(), "overflow quantiles fall back to the observed max");
        assert_eq!(h.max(), Duration::from_secs(10_000));
        let text = {
            let r = MetricsRegistry::default();
            let hist = r.histogram("t", &[]);
            hist.record_micros(3);
            hist.record(Duration::from_secs(10_000));
            r.render_prometheus()
        };
        assert!(text.contains("t_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn registry_returns_same_handle_for_same_key() {
        let r = MetricsRegistry::default();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("x_total", &[("k", "v")]), 3);
        assert_eq!(r.counter_value("x_total", &[("k", "other")]), 0);
    }

    #[test]
    fn prometheus_exposition_golden() {
        let r = MetricsRegistry::default();
        r.counter("demo_queries_total", &[("session", "1")]).add(5);
        r.gauge("demo_sessions_active", &[]).set(2);
        let h = r.histogram("hyperq_stage_duration_seconds", &[("stage", "parse")]);
        h.record_micros(1); // bucket 0 (le = 1µs)
        h.record_micros(3); // bucket 2 (le = 4µs)
        let text = r.render_prometheus();
        let expected = "\
demo_queries_total{session=\"1\"} 5
demo_sessions_active 2
hyperq_stage_duration_seconds_bucket{stage=\"parse\",le=\"0.000001\"} 1
hyperq_stage_duration_seconds_bucket{stage=\"parse\",le=\"0.000002\"} 1
hyperq_stage_duration_seconds_bucket{stage=\"parse\",le=\"0.000004\"} 2
hyperq_stage_duration_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2
hyperq_stage_duration_seconds_sum{stage=\"parse\"} 0.000004
hyperq_stage_duration_seconds_count{stage=\"parse\"} 2
hyperq_stage_duration_seconds_p50{stage=\"parse\"} 0.000001
hyperq_stage_duration_seconds_p95{stage=\"parse\"} 0.000004
hyperq_stage_duration_seconds_p99{stage=\"parse\"} 0.000004
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_exposition_golden() {
        let r = MetricsRegistry::default();
        r.counter("a_total", &[("k", "v\"q")]).inc();
        r.gauge("g", &[]).set(-4);
        r.histogram("h_seconds", &[]).record_micros(2);
        let json = r.render_json();
        let expected = "{\"counters\":[{\"name\":\"a_total\",\"labels\":{\"k\":\"v\\\"q\"},\
\"value\":1}],\"gauges\":[{\"name\":\"g\",\"labels\":{},\"value\":-4}],\
\"histograms\":[{\"name\":\"h_seconds\",\"labels\":{},\"count\":1,\
\"sum_seconds\":0.000002,\"max_seconds\":0.000002,\"p50_seconds\":0.000002,\
\"p95_seconds\":0.000002,\"p99_seconds\":0.000002}]}";
        assert_eq!(json, expected);
    }
}
