//! Lightweight span tracing.
//!
//! Every statement processed by the pipeline gets a trace: a root span plus
//! one child span per pipeline stage (and deeper children for nested work
//! like recursive-CTE iterations). Span context propagates through a
//! thread-local stack, so instrumented layers never thread IDs explicitly;
//! finished spans land in a bounded ring buffer for inspection and for the
//! slow-query log.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifies one traced statement end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A finished span as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub span: SpanId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    /// Start offset from the sink's epoch.
    pub start: Duration,
    pub duration: Duration,
    /// Timestamped annotations: offset from span start, message.
    pub events: Vec<(Duration, String)>,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<(TraceId, SpanId)>> = const { RefCell::new(Vec::new()) };
}

/// Collects finished spans into a bounded ring buffer.
#[derive(Debug)]
pub struct TraceSink {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink {
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            enabled: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a span. If the current thread is already inside a span, the new
    /// one joins that trace as a child; otherwise it roots a fresh trace.
    pub fn enter(&self, name: &'static str) -> Span<'_> {
        let (trace, parent) = SPAN_STACK.with(|s| {
            s.borrow().last().map_or_else(|| {
                (TraceId(self.fresh_id()), None)
            }, |&(t, id)| (t, Some(id)))
        });
        self.open(trace, parent, name)
    }

    /// Open a span attached to an existing trace (e.g. converting results
    /// for a statement whose pipeline trace already finished).
    pub fn enter_in(&self, trace: TraceId, name: &'static str) -> Span<'_> {
        let parent = SPAN_STACK.with(|s| {
            s.borrow().last().and_then(|&(t, id)| (t == trace).then_some(id))
        });
        self.open(trace, parent, name)
    }

    fn open(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> Span<'_> {
        let span = SpanId(self.fresh_id());
        SPAN_STACK.with(|s| s.borrow_mut().push((trace, span)));
        Span {
            sink: self,
            trace,
            span,
            parent,
            name,
            started: Instant::now(),
            events: Vec::new(),
            closed: false,
        }
    }

    /// Append an externally-measured span — for work that ran before its
    /// trace existed (e.g. script parsing charged to the first statement's
    /// trace).
    pub fn record_manual(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        duration: Duration,
    ) -> SpanId {
        let span = SpanId(self.fresh_id());
        let now = self.epoch.elapsed();
        self.record(SpanRecord {
            trace,
            span,
            parent,
            name,
            start: now.saturating_sub(duration),
            duration,
            events: Vec::new(),
        });
        span
    }

    /// The (trace, span) the current thread is inside, if any.
    pub fn current(&self) -> Option<(TraceId, SpanId)> {
        SPAN_STACK.with(|s| s.borrow().last().copied())
    }

    fn record(&self, rec: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// All buffered spans for a trace, in completion order (children finish
    /// before their parents).
    pub fn spans_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().filter(|r| r.trace == trace).cloned().collect()
    }

    /// The most recent `n` spans across all traces.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().rev().take(n).cloned().collect()
    }

    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }

    /// Render the span tree of a trace as an indented text outline —
    /// the slow-query log's payload.
    pub fn render_tree(&self, trace: TraceId) -> String {
        let spans = self.spans_for(trace);
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
        for root in roots {
            render_node(&spans, root, 0, &mut out);
        }
        out
    }
}

fn render_node(all: &[SpanRecord], node: &SpanRecord, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("{} {:.3?}", node.name, node.duration));
    for (at, msg) in &node.events {
        out.push_str(&format!(" [{:.3?}: {msg}]", at));
    }
    out.push('\n');
    let mut children: Vec<&SpanRecord> =
        all.iter().filter(|s| s.parent == Some(node.span)).collect();
    children.sort_by_key(|s| s.start);
    for child in children {
        render_node(all, child, depth + 1, out);
    }
}

/// An open span; finishing (or dropping) it pops the thread-local context
/// and records it in the sink.
pub struct Span<'a> {
    sink: &'a TraceSink,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    started: Instant,
    events: Vec<(Duration, String)>,
    closed: bool,
}

impl Span<'_> {
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    pub fn id(&self) -> SpanId {
        self.span
    }

    /// Attach a timestamped annotation to this span.
    pub fn event(&mut self, message: impl Into<String>) {
        if self.sink.is_enabled() {
            self.events.push((self.started.elapsed(), message.into()));
        }
    }

    /// Close the span and return its wall-clock duration, so callers can
    /// feed the same measurement into a histogram without a second clock
    /// read.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let duration = self.started.elapsed();
        if self.closed {
            return duration;
        }
        self.closed = true;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops during unwinding.
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == self.span) {
                stack.truncate(pos);
            }
        });
        self.sink.record(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            start: self.started.duration_since(self.sink.epoch),
            duration,
            events: std::mem::take(&mut self.events),
        });
        duration
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_one_trace_with_parent_links() {
        let sink = TraceSink::default();
        let trace = {
            let root = sink.enter("statement");
            let trace = root.trace_id();
            let parse = sink.enter("parse");
            assert_eq!(parse.trace_id(), trace, "children join the ambient trace");
            parse.finish();
            let mut bind = sink.enter("bind");
            bind.event("resolved 3 tables");
            bind.finish();
            root.finish();
            trace
        };
        let spans = sink.spans_for(trace);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "statement").unwrap();
        assert_eq!(root.parent, None);
        for name in ["parse", "bind"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root.span), "{name} must hang off the root");
        }
        assert_eq!(spans.iter().find(|s| s.name == "bind").unwrap().events.len(), 1);
        let tree = sink.render_tree(trace);
        assert!(tree.starts_with("statement "), "{tree}");
        assert!(tree.contains("\n  parse "), "{tree}");
        assert!(tree.contains("resolved 3 tables"), "{tree}");
    }

    #[test]
    fn sequential_roots_get_distinct_traces() {
        let sink = TraceSink::default();
        let a = sink.enter("one").trace_id();
        let b = sink.enter("two").trace_id();
        assert_ne!(a, b);
        assert_eq!(sink.spans_for(a).len(), 1);
    }

    #[test]
    fn enter_in_attaches_to_foreign_trace() {
        let sink = TraceSink::default();
        let trace = sink.enter("pipeline").trace_id();
        let conv = sink.enter_in(trace, "convert");
        assert_eq!(conv.trace_id(), trace);
        conv.finish();
        assert_eq!(sink.spans_for(trace).len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_disable_drops_records() {
        let sink = TraceSink::with_capacity(2);
        for _ in 0..5 {
            sink.enter("s").finish();
        }
        assert_eq!(sink.recent(10).len(), 2);
        sink.set_enabled(false);
        let t = sink.enter("off").trace_id();
        assert!(sink.spans_for(t).is_empty());
    }

    #[test]
    fn drop_without_finish_still_pops_context() {
        let sink = TraceSink::default();
        {
            let _root = sink.enter("outer");
            let _child = sink.enter("inner");
            // dropped in reverse order here
        }
        assert_eq!(sink.current(), None);
    }
}
