//! Slow-query log: statements whose end-to-end latency crosses a threshold
//! are captured with their full span tree for post-hoc inspection.
//!
//! Captured SQL is passed through an installable redactor before storage
//! (the session builder installs a literal-redacting one based on the
//! parser's fingerprint spans), so literal values from user queries do not
//! sit in process memory or leak through the observability endpoint. Raw
//! capture is an explicit opt-in ([`SlowQueryLog::set_capture_raw`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::trace::{TraceId, TraceSink};

/// One captured slow statement.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    pub trace: TraceId,
    pub sql: String,
    pub total: Duration,
    /// Indented span-tree rendering at capture time.
    pub spans: String,
}

pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

type Redactor = Arc<dyn Fn(&str) -> String + Send + Sync>;

/// Bounded ring of slow statements. The threshold check on the hot path is
/// a single relaxed atomic load; 0 means disabled.
pub struct SlowQueryLog {
    threshold_micros: AtomicU64,
    capture_raw: AtomicBool,
    redactor: Mutex<Option<Redactor>>,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    capacity: usize,
}

impl fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("threshold", &self.threshold())
            .field("capture_raw", &self.capture_raw())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog {
            threshold_micros: AtomicU64::new(0),
            capture_raw: AtomicBool::new(false),
            redactor: Mutex::new(None),
            ring: Mutex::new(VecDeque::new()),
            capacity: DEFAULT_SLOWLOG_CAPACITY,
        }
    }
}

impl SlowQueryLog {
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        let micros = threshold
            .map_or(0, |d| (d.as_micros().min(u64::MAX as u128) as u64).max(1));
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_micros.load(Ordering::Relaxed) {
            0 => None,
            micros => Some(Duration::from_micros(micros)),
        }
    }

    /// Opt in to storing raw SQL, bypassing the installed redactor.
    pub fn set_capture_raw(&self, on: bool) {
        self.capture_raw.store(on, Ordering::Relaxed);
    }

    pub fn capture_raw(&self) -> bool {
        self.capture_raw.load(Ordering::Relaxed)
    }

    /// Install the redaction function applied to SQL before storage.
    /// Without one, text is stored as given (the core session builder
    /// installs a parser-backed literal redactor on every context it
    /// uses). Runs only on capture, never on the hot path.
    pub fn install_redactor(&self, f: impl Fn(&str) -> String + Send + Sync + 'static) {
        *self.redactor.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(f));
    }

    pub fn has_redactor(&self) -> bool {
        self.redactor.lock().unwrap_or_else(|p| p.into_inner()).is_some()
    }

    /// Capture `sql` if it ran longer than the threshold. Returns whether
    /// it was captured.
    pub fn observe(
        &self,
        traces: &TraceSink,
        trace: TraceId,
        sql: &str,
        total: Duration,
    ) -> bool {
        let threshold = self.threshold_micros.load(Ordering::Relaxed);
        if threshold == 0 || (total.as_micros() as u64) < threshold {
            return false;
        }
        let stored = if self.capture_raw() {
            sql.to_string()
        } else {
            let redactor = self.redactor.lock().unwrap_or_else(|p| p.into_inner()).clone();
            match redactor {
                Some(r) => r(sql),
                None => sql.to_string(),
            }
        };
        let entry = SlowQueryEntry {
            trace,
            sql: stored,
            total,
            spans: traces.render_tree(trace),
        };
        let mut ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        let ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().cloned().collect()
    }

    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// Render entries as a JSON array for the observability endpoint.
pub fn render_json(entries: &[SlowQueryEntry]) -> String {
    use crate::metrics::json_str;
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace\":\"{}\",\"sql\":{},\"total_seconds\":{},\"spans\":{}}}",
            e.trace,
            json_str(&e.sql),
            e.total.as_secs_f64(),
            json_str(&e.spans)
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_threshold_gates_capture() {
        let log = SlowQueryLog::default();
        let traces = TraceSink::default();
        let trace = traces.enter("statement").trace_id();
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_secs(5)));
        log.set_threshold(Some(Duration::from_millis(100)));
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_millis(99)));
        assert!(log.observe(&traces, trace, "SELECT 1", Duration::from_millis(100)));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].sql, "SELECT 1");
        assert!(entries[0].spans.starts_with("statement "), "{}", entries[0].spans);
        log.set_threshold(None);
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_secs(9)));
    }

    #[test]
    fn redactor_applies_unless_raw_capture_opted_in() {
        let log = SlowQueryLog::default();
        let traces = TraceSink::default();
        let trace = traces.enter("statement").trace_id();
        log.set_threshold(Some(Duration::from_millis(1)));
        log.install_redactor(|sql| sql.replace("42", "?"));
        assert!(log.has_redactor());
        log.observe(&traces, trace, "SELECT 42", Duration::from_secs(1));
        assert_eq!(log.entries()[0].sql, "SELECT ?");
        log.set_capture_raw(true);
        log.observe(&traces, trace, "SELECT 42", Duration::from_secs(1));
        assert_eq!(log.entries()[1].sql, "SELECT 42");
    }

    #[test]
    fn entries_render_as_json() {
        let log = SlowQueryLog::default();
        let traces = TraceSink::default();
        let trace = traces.enter("statement").trace_id();
        log.set_threshold(Some(Duration::from_millis(1)));
        log.observe(&traces, trace, "SELECT \"q\"", Duration::from_secs(1));
        let json = render_json(&log.entries());
        crate::json::validate(&json).expect("slowlog JSON must parse");
        assert!(json.contains("\"total_seconds\":1"));
    }
}
