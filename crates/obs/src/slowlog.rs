//! Slow-query log: statements whose end-to-end latency crosses a threshold
//! are captured with their full span tree for post-hoc inspection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::trace::{TraceId, TraceSink};

/// One captured slow statement.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    pub trace: TraceId,
    pub sql: String,
    pub total: Duration,
    /// Indented span-tree rendering at capture time.
    pub spans: String,
}

pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

/// Bounded ring of slow statements. The threshold check on the hot path is
/// a single relaxed atomic load; 0 means disabled.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_micros: AtomicU64,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    capacity: usize,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        SlowQueryLog {
            threshold_micros: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            capacity: DEFAULT_SLOWLOG_CAPACITY,
        }
    }
}

impl SlowQueryLog {
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        let micros = threshold
            .map(|d| (d.as_micros().min(u64::MAX as u128) as u64).max(1))
            .unwrap_or(0);
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_micros.load(Ordering::Relaxed) {
            0 => None,
            micros => Some(Duration::from_micros(micros)),
        }
    }

    /// Capture `sql` if it ran longer than the threshold. Returns whether
    /// it was captured.
    pub fn observe(
        &self,
        traces: &TraceSink,
        trace: TraceId,
        sql: &str,
        total: Duration,
    ) -> bool {
        let threshold = self.threshold_micros.load(Ordering::Relaxed);
        if threshold == 0 || (total.as_micros() as u64) < threshold {
            return false;
        }
        let entry = SlowQueryEntry {
            trace,
            sql: sql.to_string(),
            total,
            spans: traces.render_tree(trace),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().cloned().collect()
    }

    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_threshold_gates_capture() {
        let log = SlowQueryLog::default();
        let traces = TraceSink::default();
        let trace = traces.enter("statement").trace_id();
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_secs(5)));
        log.set_threshold(Some(Duration::from_millis(100)));
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_millis(99)));
        assert!(log.observe(&traces, trace, "SELECT 1", Duration::from_millis(100)));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].sql, "SELECT 1");
        assert!(entries[0].spans.starts_with("statement "), "{}", entries[0].spans);
        log.set_threshold(None);
        assert!(!log.observe(&traces, trace, "SELECT 1", Duration::from_secs(9)));
    }
}
