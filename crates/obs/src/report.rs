//! Workload intelligence: fold provenance records into the paper's
//! evaluation artifacts.
//!
//! * **Figure 7 analog** — where time goes: aggregate stage shares plus
//!   the distribution of per-query translation-overhead ratios
//!   (translation time relative to end-to-end time).
//! * **Figure 8 analog** — feature usage: for every tracked non-standard
//!   feature code, how many statements and how many distinct queries used
//!   it.
//! * Top-N queries by latency, by volume and by emulation cost, and cache
//!   efficiency by fingerprint.
//!
//! Everything is computed from live [`ProvenanceRecord`]s only — nothing
//! here re-parses SQL or consults other registries — and renders as both
//! JSON and aligned plain text.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::metrics::json_str;
use crate::provenance::{CacheOutcome, ProvenanceRecord};

/// Stages counted as translation overhead (everything Hyper-Q adds in
/// front of the target database). `execute` is the backend's time;
/// `convert` is accounted from the attached conversion stats.
const TRANSLATION_STAGES: [&str; 6] =
    ["parse", "bind", "transform", "serialize", "validate", "cache"];

/// Upper bounds (percent) of the overhead-ratio distribution bands.
const BAND_BOUNDS: [f64; 7] = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0];
const BAND_LABELS: [&str; 8] =
    ["<=0.5%", "0.5-1%", "1-2%", "2-5%", "5-10%", "10-25%", "25-50%", ">50%"];

/// Aggregate time spent in one pipeline stage across the workload.
#[derive(Debug, Clone)]
pub struct StageShare {
    pub stage: String,
    pub total: Duration,
    /// Share of the summed end-to-end time, in percent.
    pub share_pct: f64,
}

/// One band of the per-query overhead-ratio distribution (Figure 7
/// analog): how many queries spent this fraction of their end-to-end time
/// in translation.
#[derive(Debug, Clone)]
pub struct OverheadBand {
    pub label: &'static str,
    pub queries: u64,
    pub share_pct: f64,
}

/// Feature-usage frequency (Figure 8 analog) for one tracked feature code.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    pub code: String,
    pub statements: u64,
    pub statement_pct: f64,
    pub distinct_queries: u64,
    pub distinct_pct: f64,
}

/// Per-fingerprint aggregate used by the top-N tables.
#[derive(Debug, Clone)]
pub struct QueryAgg {
    pub fingerprint: u64,
    pub sample: String,
    pub executions: u64,
    pub total: Duration,
    pub mean: Duration,
    pub max: Duration,
    pub rows: u64,
    /// Total emulation requests across all executions.
    pub emulations: u64,
}

/// Cache behavior of one fingerprint.
#[derive(Debug, Clone)]
pub struct CacheRow {
    pub fingerprint: u64,
    pub sample: String,
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub hit_rate_pct: f64,
}

/// The folded workload analytics.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub statements: u64,
    pub errors: u64,
    pub distinct_fingerprints: u64,
    pub retries: u64,
    pub recoveries: u64,
    pub admission_wait: Duration,
    pub stage_shares: Vec<StageShare>,
    /// Mean per-query translation-overhead ratio, percent.
    pub mean_overhead_pct: f64,
    pub overhead_bands: Vec<OverheadBand>,
    pub features: Vec<FeatureRow>,
    pub top_latency: Vec<QueryAgg>,
    pub top_volume: Vec<QueryAgg>,
    pub top_emulation: Vec<QueryAgg>,
    pub cache_rows: Vec<CacheRow>,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_bypasses: u64,
}

const TOP_N: usize = 5;
const CACHE_ROWS: usize = 10;

fn pct(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        part / whole * 100.0
    }
}

/// Order feature codes T1…T9, X1…X9, E1…E9, then anything unknown.
fn feature_order(code: &str) -> (u8, u32, String) {
    let class = match code.as_bytes().first() {
        Some(b'T') => 0,
        Some(b'X') => 1,
        Some(b'E') => 2,
        _ => 3,
    };
    let num = code.get(1..).and_then(|s| s.parse().ok()).unwrap_or(u32::MAX);
    (class, num, code.to_string())
}

impl WorkloadReport {
    pub fn from_records(records: &[ProvenanceRecord]) -> WorkloadReport {
        let statements = records.len() as u64;
        let errors = records.iter().filter(|r| !r.ok).count() as u64;
        let retries: u64 = records.iter().map(|r| r.retries).sum();
        let recoveries: u64 = records.iter().map(|r| r.recoveries).sum();
        let admission_wait: Duration = records.iter().map(|r| r.admission_wait).sum();

        // Figure 7 analog: aggregate stage shares plus per-query overhead
        // ratio bands.
        let mut stage_totals: BTreeMap<&str, Duration> = BTreeMap::new();
        let mut grand_total = Duration::ZERO;
        let mut bands = [0u64; BAND_LABELS.len()];
        let mut overhead_sum = 0.0f64;
        let mut overhead_n = 0u64;
        for r in records {
            grand_total += r.total;
            for (stage, d) in &r.stages {
                *stage_totals.entry(stage).or_default() += *d;
            }
            if let Some(c) = &r.convert {
                *stage_totals.entry("convert").or_default() += c.duration;
            }
            let translation: Duration = r
                .stages
                .iter()
                .filter(|(s, _)| TRANSLATION_STAGES.contains(s))
                .map(|(_, d)| *d)
                .sum();
            if !r.total.is_zero() {
                let ratio = pct(translation.as_secs_f64(), r.total.as_secs_f64());
                let band = BAND_BOUNDS.iter().position(|&b| ratio <= b).unwrap_or(BAND_BOUNDS.len());
                bands[band] += 1;
                overhead_sum += ratio;
                overhead_n += 1;
            }
        }
        let stage_shares = stage_totals
            .into_iter()
            .map(|(stage, total)| StageShare {
                stage: stage.to_string(),
                total,
                share_pct: pct(total.as_secs_f64(), grand_total.as_secs_f64()),
            })
            .collect();
        let overhead_bands = BAND_LABELS
            .iter()
            .zip(bands)
            .map(|(label, queries)| OverheadBand {
                label,
                queries,
                share_pct: pct(queries as f64, overhead_n as f64),
            })
            .collect();

        // Figure 8 analog: statements and distinct fingerprints per
        // feature code.
        let mut per_fingerprint: BTreeMap<u64, QueryAggBuilder> = BTreeMap::new();
        let mut feature_statements: BTreeMap<&str, u64> = BTreeMap::new();
        let mut feature_distinct: BTreeMap<&str, std::collections::BTreeSet<u64>> =
            BTreeMap::new();
        for r in records {
            for code in &r.features {
                *feature_statements.entry(code).or_default() += 1;
                feature_distinct.entry(code).or_default().insert(r.fingerprint);
            }
            let agg = per_fingerprint.entry(r.fingerprint).or_insert_with(|| {
                QueryAggBuilder { sample: r.sql.clone(), ..QueryAggBuilder::default() }
            });
            agg.observe(r);
        }
        let distinct_fingerprints = per_fingerprint.len() as u64;
        let mut features: Vec<FeatureRow> = feature_statements
            .iter()
            .map(|(code, &count)| {
                let distinct = feature_distinct.get(code).map_or(0, |s| s.len() as u64);
                FeatureRow {
                    code: code.to_string(),
                    statements: count,
                    statement_pct: pct(count as f64, statements as f64),
                    distinct_queries: distinct,
                    distinct_pct: pct(distinct as f64, distinct_fingerprints as f64),
                }
            })
            .collect();
        features.sort_by_key(|f| feature_order(&f.code));

        // Top-N and cache efficiency over the per-fingerprint aggregates.
        let aggs: Vec<QueryAgg> =
            per_fingerprint.iter().map(|(&fp, b)| b.build(fp)).collect();
        let mut top_latency = aggs.clone();
        top_latency.sort_by(|a, b| b.total.cmp(&a.total).then(a.fingerprint.cmp(&b.fingerprint)));
        top_latency.truncate(TOP_N);
        let mut top_volume = aggs.clone();
        top_volume.sort_by(|a, b| {
            b.executions.cmp(&a.executions).then(a.fingerprint.cmp(&b.fingerprint))
        });
        top_volume.truncate(TOP_N);
        let mut top_emulation: Vec<QueryAgg> =
            aggs.iter().filter(|a| a.emulations > 0).cloned().collect();
        top_emulation.sort_by(|a, b| {
            b.emulations.cmp(&a.emulations).then(a.fingerprint.cmp(&b.fingerprint))
        });
        top_emulation.truncate(TOP_N);

        let mut cache_rows: Vec<CacheRow> = per_fingerprint
            .iter()
            .filter(|(_, b)| b.hits + b.misses + b.bypasses > 0)
            .map(|(&fp, b)| CacheRow {
                fingerprint: fp,
                sample: b.sample.clone(),
                hits: b.hits,
                misses: b.misses,
                bypasses: b.bypasses,
                hit_rate_pct: pct(b.hits as f64, (b.hits + b.misses) as f64),
            })
            .collect();
        cache_rows.sort_by(|a, b| {
            (b.hits + b.misses + b.bypasses)
                .cmp(&(a.hits + a.misses + a.bypasses))
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        cache_rows.truncate(CACHE_ROWS);
        let cache_hits = records.iter().filter(|r| r.cache == CacheOutcome::Hit).count() as u64;
        let cache_misses =
            records.iter().filter(|r| r.cache == CacheOutcome::Miss).count() as u64;
        let cache_bypasses = records
            .iter()
            .filter(|r| matches!(r.cache, CacheOutcome::Bypass(_)))
            .count() as u64;

        WorkloadReport {
            statements,
            errors,
            distinct_fingerprints,
            retries,
            recoveries,
            admission_wait,
            stage_shares,
            mean_overhead_pct: if overhead_n == 0 { 0.0 } else { overhead_sum / overhead_n as f64 },
            overhead_bands,
            features,
            top_latency,
            top_volume,
            top_emulation,
            cache_rows,
            cache_hits,
            cache_misses,
            cache_bypasses,
        }
    }

    /// Render the full report as JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"statements\":{},", self.statements));
        out.push_str(&format!("\"errors\":{},", self.errors));
        out.push_str(&format!("\"distinct_fingerprints\":{},", self.distinct_fingerprints));
        out.push_str(&format!("\"retries\":{},", self.retries));
        out.push_str(&format!("\"recoveries\":{},", self.recoveries));
        out.push_str(&format!(
            "\"admission_wait_seconds\":{},",
            self.admission_wait.as_secs_f64()
        ));
        out.push_str(&format!("\"mean_overhead_pct\":{},", self.mean_overhead_pct));
        out.push_str("\"stage_shares\":[");
        for (i, s) in self.stage_shares.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":{},\"total_seconds\":{},\"share_pct\":{}}}",
                json_str(&s.stage),
                s.total.as_secs_f64(),
                s.share_pct
            ));
        }
        out.push_str("],\"overhead_bands\":[");
        for (i, b) in self.overhead_bands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"band\":{},\"queries\":{},\"share_pct\":{}}}",
                json_str(b.label),
                b.queries,
                b.share_pct
            ));
        }
        out.push_str("],\"features\":[");
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"statements\":{},\"statement_pct\":{},\
                 \"distinct_queries\":{},\"distinct_pct\":{}}}",
                json_str(&f.code),
                f.statements,
                f.statement_pct,
                f.distinct_queries,
                f.distinct_pct
            ));
        }
        out.push_str("],");
        for (key, list) in [
            ("top_latency", &self.top_latency),
            ("top_volume", &self.top_volume),
            ("top_emulation", &self.top_emulation),
        ] {
            out.push_str(&format!("\"{key}\":["));
            for (i, q) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"fingerprint\":\"{:016x}\",\"sample\":{},\"executions\":{},\
                     \"total_seconds\":{},\"mean_seconds\":{},\"max_seconds\":{},\
                     \"rows\":{},\"emulations\":{}}}",
                    q.fingerprint,
                    json_str(&q.sample),
                    q.executions,
                    q.total.as_secs_f64(),
                    q.mean.as_secs_f64(),
                    q.max.as_secs_f64(),
                    q.rows,
                    q.emulations
                ));
            }
            out.push_str("],");
        }
        out.push_str("\"cache\":{");
        out.push_str(&format!("\"hits\":{},", self.cache_hits));
        out.push_str(&format!("\"misses\":{},", self.cache_misses));
        out.push_str(&format!("\"bypasses\":{},", self.cache_bypasses));
        out.push_str("\"by_fingerprint\":[");
        for (i, c) in self.cache_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fingerprint\":\"{:016x}\",\"sample\":{},\"hits\":{},\"misses\":{},\
                 \"bypasses\":{},\"hit_rate_pct\":{}}}",
                c.fingerprint,
                json_str(&c.sample),
                c.hits,
                c.misses,
                c.bypasses,
                c.hit_rate_pct
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Render the full report as aligned plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("workload report\n");
        out.push_str(&format!(
            "  statements {}  errors {}  distinct {}  retries {}  recoveries {}\n",
            self.statements, self.errors, self.distinct_fingerprints, self.retries,
            self.recoveries
        ));
        out.push_str(&format!(
            "  cache hits {}  misses {}  bypasses {}  admission wait {:.3?}\n\n",
            self.cache_hits, self.cache_misses, self.cache_bypasses, self.admission_wait
        ));

        out.push_str("stage shares (figure 7 analog)\n");
        out.push_str(&format!("  {:<10} {:>12} {:>8}\n", "stage", "total", "share"));
        for s in &self.stage_shares {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>7.1}%\n",
                s.stage,
                format!("{:.3?}", s.total),
                s.share_pct
            ));
        }
        out.push_str(&format!(
            "  mean per-query translation overhead: {:.2}%\n",
            self.mean_overhead_pct
        ));
        out.push_str("  overhead-ratio distribution:\n");
        for b in &self.overhead_bands {
            out.push_str(&format!(
                "    {:<8} {:>8} {:>7.1}%\n",
                b.label, b.queries, b.share_pct
            ));
        }
        out.push('\n');

        out.push_str(&self.render_feature_table());
        out.push('\n');

        for (title, list) in [
            ("top queries by latency", &self.top_latency),
            ("top queries by volume", &self.top_volume),
            ("top queries by emulation cost", &self.top_emulation),
        ] {
            out.push_str(&format!("{title}\n"));
            if list.is_empty() {
                out.push_str("  (none)\n");
            } else {
                out.push_str(&format!(
                    "  {:<16} {:>6} {:>12} {:>12} {:>6} {}\n",
                    "fingerprint", "execs", "total", "mean", "emul", "sample"
                ));
                for q in list {
                    out.push_str(&format!(
                        "  {:016x} {:>6} {:>12} {:>12} {:>6} {}\n",
                        q.fingerprint,
                        q.executions,
                        format!("{:.3?}", q.total),
                        format!("{:.3?}", q.mean),
                        q.emulations,
                        clip(&q.sample, 48)
                    ));
                }
            }
            out.push('\n');
        }

        out.push_str("cache efficiency by fingerprint\n");
        if self.cache_rows.is_empty() {
            out.push_str("  (none)\n");
        } else {
            out.push_str(&format!(
                "  {:<16} {:>6} {:>6} {:>8} {:>8} {}\n",
                "fingerprint", "hits", "miss", "bypass", "hitrate", "sample"
            ));
            for c in &self.cache_rows {
                out.push_str(&format!(
                    "  {:016x} {:>6} {:>6} {:>8} {:>7.1}% {}\n",
                    c.fingerprint,
                    c.hits,
                    c.misses,
                    c.bypasses,
                    c.hit_rate_pct,
                    clip(&c.sample, 48)
                ));
            }
        }
        out
    }

    /// Render only the Figure 8 analog feature table. Contains counts and
    /// fixed-precision shares, so the output is byte-stable for a fixed
    /// workload.
    pub fn render_feature_table(&self) -> String {
        let mut out = String::new();
        out.push_str("feature usage (figure 8 analog)\n");
        out.push_str(&format!(
            "  {:<6} {:>10} {:>8} {:>10} {:>8}\n",
            "code", "stmts", "stmt%", "distinct", "dist%"
        ));
        for f in &self.features {
            out.push_str(&format!(
                "  {:<6} {:>10} {:>7.2}% {:>10} {:>7.2}%\n",
                f.code, f.statements, f.statement_pct, f.distinct_queries, f.distinct_pct
            ));
        }
        out
    }
}

fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let clipped: String = s.chars().take(max).collect();
    format!("{clipped}…")
}

#[derive(Debug, Default)]
struct QueryAggBuilder {
    sample: String,
    executions: u64,
    total: Duration,
    max: Duration,
    rows: u64,
    emulations: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
}

impl QueryAggBuilder {
    fn observe(&mut self, r: &ProvenanceRecord) {
        self.executions += 1;
        self.total += r.total;
        self.max = self.max.max(r.total);
        self.rows += r.rows;
        self.emulations += r.emulations.iter().map(|(_, n)| n).sum::<u64>();
        match r.cache {
            CacheOutcome::Hit => self.hits += 1,
            CacheOutcome::Miss => self.misses += 1,
            CacheOutcome::Bypass(_) => self.bypasses += 1,
            CacheOutcome::Uncached => {}
        }
    }

    fn build(&self, fingerprint: u64) -> QueryAgg {
        QueryAgg {
            fingerprint,
            sample: self.sample.clone(),
            executions: self.executions,
            total: self.total,
            mean: if self.executions == 0 {
                Duration::ZERO
            } else {
                self.total / self.executions as u32
            },
            max: self.max,
            rows: self.rows,
            emulations: self.emulations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{ConvertStats, ProvenanceRecord};
    use crate::trace::TraceId;

    fn record(
        seq: u64,
        fp: u64,
        features: Vec<&'static str>,
        cache: CacheOutcome,
        translation_micros: u64,
        execute_micros: u64,
    ) -> ProvenanceRecord {
        ProvenanceRecord {
            seq,
            trace: TraceId(seq),
            fingerprint: fp,
            kind: "select",
            target: "simwh".to_string(),
            sql: format!("SELECT {fp}"),
            total: Duration::from_micros(translation_micros + execute_micros),
            stages: vec![
                ("bind", Duration::from_micros(translation_micros)),
                ("execute", Duration::from_micros(execute_micros)),
            ],
            rules: vec![("r", 1)],
            emulations: if fp == 2 { vec![("macro", 2)] } else { Vec::new() },
            features,
            cache,
            retries: 0,
            recoveries: 0,
            admission_wait: Duration::ZERO,
            analyze_mode: "log_only",
            violations: 0,
            ok: true,
            error: None,
            cancelled: None,
            replica: None,
            rows: 4,
            convert: Some(ConvertStats {
                rows: 4,
                bytes: 100,
                duration: Duration::from_micros(2),
            }),
        }
    }

    fn sample_records() -> Vec<ProvenanceRecord> {
        vec![
            record(0, 1, vec!["X1"], CacheOutcome::Miss, 10, 990),
            record(1, 1, vec!["X1"], CacheOutcome::Hit, 5, 995),
            record(2, 2, vec!["E2", "X1"], CacheOutcome::Bypass("volatile"), 500, 500),
            record(3, 3, vec![], CacheOutcome::Uncached, 1, 999),
        ]
    }

    #[test]
    fn folds_figure7_and_figure8_analogs() {
        let report = WorkloadReport::from_records(&sample_records());
        assert_eq!(report.statements, 4);
        assert_eq!(report.distinct_fingerprints, 3);
        assert_eq!(
            (report.cache_hits, report.cache_misses, report.cache_bypasses),
            (1, 1, 1)
        );
        // Feature table: X1 in 3 statements / 2 distinct; E2 in 1/1;
        // ordered T < X < E... X before E.
        let codes: Vec<&str> = report.features.iter().map(|f| f.code.as_str()).collect();
        assert_eq!(codes, vec!["X1", "E2"]);
        let x1 = &report.features[0];
        assert_eq!(x1.statements, 3);
        assert_eq!(x1.distinct_queries, 2);
        assert!((x1.statement_pct - 75.0).abs() < 1e-9);
        // Overhead bands: ratios 1%, 0.5%, 50%, 0.1% => one per band.
        let total_banded: u64 = report.overhead_bands.iter().map(|b| b.queries).sum();
        assert_eq!(total_banded, 4);
        let band = |label: &str| {
            report.overhead_bands.iter().find(|b| b.label == label).unwrap().queries
        };
        assert_eq!(band("<=0.5%"), 2);
        assert_eq!(band("0.5-1%"), 1);
        assert_eq!(band("25-50%"), 1);
        // Stage shares include the convert stage from attached stats.
        assert!(report.stage_shares.iter().any(|s| s.stage == "convert"));
    }

    #[test]
    fn top_n_and_cache_rows_are_ranked() {
        let report = WorkloadReport::from_records(&sample_records());
        assert_eq!(report.top_volume[0].fingerprint, 1);
        assert_eq!(report.top_volume[0].executions, 2);
        assert_eq!(report.top_latency[0].fingerprint, 1, "2 execs of fp 1 dominate total");
        assert_eq!(report.top_emulation.len(), 1);
        assert_eq!(report.top_emulation[0].fingerprint, 2);
        assert_eq!(report.top_emulation[0].emulations, 2);
        let fp1 = report.cache_rows.iter().find(|c| c.fingerprint == 1).unwrap();
        assert_eq!((fp1.hits, fp1.misses), (1, 1));
        assert!((fp1.hit_rate_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn renders_json_text_and_stable_feature_table() {
        let records = sample_records();
        let report = WorkloadReport::from_records(&records);
        let json = report.render_json();
        crate::json::validate(&json).expect("report JSON must parse");
        assert!(json.contains("\"features\":"));
        assert!(json.contains("\"overhead_bands\":"));
        let text = report.render_text();
        assert!(text.contains("figure 7 analog"), "{text}");
        assert!(text.contains("figure 8 analog"), "{text}");
        assert!(text.contains("cache efficiency by fingerprint"), "{text}");
        // Same records, same bytes.
        let again = WorkloadReport::from_records(&records);
        assert_eq!(report.render_feature_table(), again.render_feature_table());
        assert_eq!(text, again.render_text());
    }

    #[test]
    fn empty_records_fold_without_panicking() {
        let report = WorkloadReport::from_records(&[]);
        assert_eq!(report.statements, 0);
        assert_eq!(report.mean_overhead_pct, 0.0);
        crate::json::validate(&report.render_json()).unwrap();
        assert!(report.render_text().contains("(none)"));
    }
}
