//! Byte-counting `Read`/`Write` adapters for wire-level traffic metrics.

use std::io::{Read, Write};
use std::sync::Arc;

use crate::metrics::Counter;

/// Counts bytes successfully read from the inner reader.
pub struct CountingReader<R> {
    inner: R,
    counter: Arc<Counter>,
}

impl<R: Read> CountingReader<R> {
    pub fn new(inner: R, counter: Arc<Counter>) -> Self {
        CountingReader { inner, counter }
    }

    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }
}

/// Counts bytes successfully written to the inner writer.
pub struct CountingWriter<W> {
    inner: W,
    counter: Arc<Counter>,
}

impl<W: Write> CountingWriter<W> {
    pub fn new(inner: W, counter: Arc<Counter>) -> Self {
        CountingWriter { inner, counter }
    }

    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn counts_round_trip_bytes() {
        let counter_out = Arc::new(Counter::default());
        let counter_in = Arc::new(Counter::default());
        let mut sink = CountingWriter::new(Vec::new(), Arc::clone(&counter_out));
        sink.write_all(b"hello wire").unwrap();
        assert_eq!(counter_out.get(), 10);
        let mut src = CountingReader::new(&b"abcd"[..], Arc::clone(&counter_in));
        let mut buf = Vec::new();
        src.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abcd");
        assert_eq!(counter_in.get(), 4);
    }
}
