//! Property tests for the binary formats: TDF and the client row format
//! must round-trip arbitrary values, and decoding must never panic on
//! corrupt bytes.

use proptest::prelude::*;

use hyperq_wire::message::{decode_client_row, encode_client_row, header_columns};
use hyperq_wire::tdf;
use hyperq_xtra::datum::{Datum, Decimal, Interval};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;
use hyperq_xtra::Row;

/// Generate a (type, value) pair where the value inhabits the type.
fn datum_for(col: u8) -> impl Strategy<Value = Datum> {
    match col {
        0 => any::<bool>().prop_map(Datum::Bool).boxed(),
        1 => any::<i64>().prop_map(Datum::Int).boxed(),
        2 => (-1e12f64..1e12).prop_map(Datum::Double).boxed(),
        3 => (any::<i64>(), 0u8..10)
            .prop_map(|(m, s)| Datum::Dec(Decimal::new(m as i128, s)))
            .boxed(),
        4 => (0i32..80_000).prop_map(Datum::Date).boxed(),
        5 => (0i64..4_000_000_000_000_000i64)
            .prop_map(Datum::Timestamp)
            .boxed(),
        6 => (-1200i32..1200, -10_000i32..10_000)
            .prop_map(|(m, d)| Datum::Interval(Interval { months: m, days: d }))
            .boxed(),
        _ => "[a-zA-Z0-9 àéü'%_-]{0,40}".prop_map(Datum::str).boxed(),
    }
}

fn col_type(col: u8) -> SqlType {
    match col {
        0 => SqlType::Boolean,
        1 => SqlType::Integer,
        2 => SqlType::Double,
        3 => SqlType::Decimal { precision: 38, scale: 4 },
        4 => SqlType::Date,
        5 => SqlType::Timestamp,
        6 => SqlType::Interval,
        _ => SqlType::Varchar(None),
    }
}

fn rows_strategy() -> impl Strategy<Value = (Schema, Vec<Row>)> {
    // 1..6 columns of random types, 0..20 rows with per-cell nulls.
    proptest::collection::vec(0u8..8, 1..6).prop_flat_map(|cols| {
        let schema = Schema::new(
            cols.iter()
                .enumerate()
                .map(|(i, &c)| Field::new(None, &format!("C{i}"), col_type(c), true))
                .collect(),
        );
        let row = cols
            .iter()
            .map(|&c| {
                prop_oneof![
                    9 => datum_for(c),
                    1 => Just(Datum::Null),
                ]
            })
            .collect::<Vec<_>>();
        let rows = proptest::collection::vec(row, 0..20);
        (Just(schema), rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tdf_round_trips((schema, rows) in rows_strategy()) {
        let encoded = tdf::encode(&schema, &rows).unwrap();
        let (schema2, rows2) = tdf::decode(&encoded).unwrap();
        prop_assert_eq!(schema2.len(), schema.len());
        prop_assert_eq!(rows2.len(), rows.len());
        for (a, b) in rows.iter().zip(rows2.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    // Doubles survive bit-exactly.
                    (Datum::Double(p), Datum::Double(q)) => {
                        prop_assert_eq!(p.to_bits(), q.to_bits());
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn tdf_decode_never_panics_on_corruption(
        (schema, rows) in rows_strategy(),
        cut in 0usize..500,
        flip in 0usize..500,
    ) {
        let encoded = tdf::encode(&schema, &rows).unwrap();
        // Truncation.
        let cut = cut.min(encoded.len());
        let _ = tdf::decode(&encoded[..cut]);
        // Bit flip.
        if !encoded.is_empty() {
            let mut bad = encoded.to_vec();
            let idx = flip % bad.len();
            bad[idx] ^= 0x5A;
            let _ = tdf::decode(&bad);
        }
    }

    #[test]
    fn client_row_round_trips((schema, rows) in rows_strategy()) {
        let columns = header_columns(&schema);
        for row in &rows {
            let bytes = encode_client_row(row, &schema);
            let back = decode_client_row(&bytes, &columns).unwrap();
            for (x, y) in row.iter().zip(back.iter()) {
                match (x, y) {
                    (Datum::Double(p), Datum::Double(q)) => {
                        prop_assert_eq!(p.to_bits(), q.to_bits());
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn client_row_encoding_deterministic((schema, rows) in rows_strategy()) {
        // "Bit-identical to the original database": same value, same bytes.
        for row in &rows {
            prop_assert_eq!(
                encode_client_row(row, &schema),
                encode_client_row(row, &schema)
            );
        }
    }
}
