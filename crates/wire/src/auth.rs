//! Logon handshake (paper §4.1: "authentication handshake to establish
//! secure connection between the application and the database").
//!
//! TDWP models the structure of a salted challenge–response logon: the
//! gateway issues a random salt, the client answers with a digest of
//! `password ‖ salt`, and the gateway verifies against its credential
//! store. The digest is FNV-1a — a stand-in for the real protocol's
//! cryptography, keeping the repository dependency-free; the *shape* of
//! the exchange (no plaintext password on the wire, per-session salt) is
//! what the Protocol Handler must reproduce.

/// FNV-1a over the UTF-8 password bytes followed by the salt bytes.
pub fn digest(password: &str, salt: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in password.bytes().chain(salt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Credential store for the gateway.
#[derive(Debug, Clone, Default)]
pub struct Credentials {
    users: Vec<(String, String)>,
}

impl Credentials {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_user(mut self, user: &str, password: &str) -> Self {
        self.users.push((user.to_ascii_uppercase(), password.to_string()));
        self
    }

    /// Verify a digest for the given user and salt.
    pub fn verify(&self, user: &str, salt: u64, presented: u64) -> bool {
        self.users
            .iter()
            .find(|(u, _)| u.eq_ignore_ascii_case(user))
            .is_some_and(|(_, p)| digest(p, salt) == presented)
    }
}

/// Deterministic-enough salt source (wall clock + counter); sessions only
/// need distinct salts, not cryptographic randomness.
pub fn fresh_salt() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_depends_on_password_and_salt() {
        let a = digest("secret", 1);
        assert_ne!(a, digest("secret", 2));
        assert_ne!(a, digest("other", 1));
        assert_eq!(a, digest("secret", 1));
    }

    #[test]
    fn verify_accepts_correct_and_rejects_wrong() {
        let creds = Credentials::new().with_user("app", "secret");
        let salt = 12345;
        assert!(creds.verify("APP", salt, digest("secret", salt)));
        assert!(!creds.verify("APP", salt, digest("wrong", salt)));
        assert!(!creds.verify("NOBODY", salt, digest("secret", salt)));
        // A digest for one salt must not validate for another.
        assert!(!creds.verify("APP", salt + 1, digest("secret", salt)));
    }

    #[test]
    fn salts_are_distinct() {
        let a = fresh_salt();
        let b = fresh_salt();
        assert_ne!(a, b);
    }
}
