//! Gateway admission control: bounded FIFO queueing in front of a
//! concurrency cap.
//!
//! Cloud warehouses queue excess work into workload-management slots
//! (modeled by `hyperq-engine`'s `Slots`); the gateway mirrors that shape at
//! its own front door instead of hard-rejecting the moment a cap is hit.
//! Connections and statements beyond the cap wait in a bounded FIFO for up
//! to `admission_timeout` before being shed with a distinct wire error, so
//! a short burst rides through while sustained overload still fails fast
//! and visibly.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_obs::{Counter, Gauge, Histogram, ObsContext};
use parking_lot::{Condvar, Mutex};

/// Admission-queue tuning for the gateway.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Connections allowed to wait beyond `max_connections` before
    /// queue-full shedding. `0` restores the pre-queue hard reject.
    pub connection_queue: usize,
    /// Cap on statements executing concurrently across the whole gateway;
    /// `None` leaves statement concurrency to the backend.
    pub statement_slots: Option<usize>,
    /// Statements allowed to wait beyond `statement_slots`.
    pub statement_queue: usize,
    /// How long a queued connection or statement may wait before it is shed.
    pub admission_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            connection_queue: 64,
            statement_slots: None,
            statement_queue: 64,
            admission_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was already full on arrival.
    QueueFull,
    /// The request queued but `admission_timeout` elapsed first.
    Timeout,
}

impl ShedReason {
    /// Stable lowercase name, used as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Timeout => "timeout",
        }
    }

    /// The TDWP error code the gateway surfaces for this shed reason —
    /// distinct from the 3134 "at capacity" hard reject.
    pub fn wire_code(self) -> u16 {
        match self {
            ShedReason::QueueFull => 3136,
            ShedReason::Timeout => 3135,
        }
    }
}

struct GateState {
    in_use: usize,
    /// FIFO of waiting tickets; the front ticket owns the next free slot.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// A bounded-FIFO admission gate: up to `capacity` holders, up to
/// `max_waiting` queued, first come first served, timed out waiters shed.
pub struct AdmissionGate {
    /// Gate label in metrics: `connection` or `statement`.
    name: &'static str,
    capacity: usize,
    max_waiting: usize,
    timeout: Duration,
    state: Mutex<GateState>,
    freed: Condvar,
    depth: Arc<Gauge>,
    wait: Arc<Histogram>,
    admitted: Arc<Counter>,
    queued: Arc<Counter>,
    shed_full: Arc<Counter>,
    shed_timeout: Arc<Counter>,
}

impl AdmissionGate {
    pub fn new(
        name: &'static str,
        capacity: usize,
        max_waiting: usize,
        timeout: Duration,
        obs: &ObsContext,
    ) -> Arc<AdmissionGate> {
        let m = &obs.metrics;
        let labels = &[("gate", name)][..];
        let shed = |reason: ShedReason| {
            m.counter(
                "hyperq_admission_shed_total",
                &[("gate", name), ("reason", reason.as_str())],
            )
        };
        Arc::new(AdmissionGate {
            name,
            capacity: capacity.max(1),
            max_waiting,
            timeout,
            state: Mutex::new(GateState { in_use: 0, queue: VecDeque::new(), next_ticket: 0 }),
            freed: Condvar::new(),
            depth: m.gauge("hyperq_admission_queue_depth", labels),
            wait: m.histogram("hyperq_admission_wait_seconds", labels),
            admitted: m.counter("hyperq_admission_admitted_total", labels),
            queued: m.counter("hyperq_admission_queued_total", labels),
            shed_full: shed(ShedReason::QueueFull),
            shed_timeout: shed(ShedReason::Timeout),
        })
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire a slot, queueing (bounded, FIFO) when the gate is at
    /// capacity. Returns the permit, or the reason the request was shed.
    pub fn try_admit(self: &Arc<Self>) -> Result<AdmissionPermit, ShedReason> {
        let mut state = self.state.lock();
        if state.in_use < self.capacity && state.queue.is_empty() {
            state.in_use += 1;
            self.admitted.inc();
            self.wait.record(Duration::ZERO);
            return Ok(AdmissionPermit { gate: Arc::clone(self) });
        }
        if state.queue.len() >= self.max_waiting {
            self.shed_full.inc();
            return Err(ShedReason::QueueFull);
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        self.queued.inc();
        self.depth.add(1);
        let enqueued = Instant::now();
        // The queue wait is bounded by the *earlier* of the gate's own
        // admission timeout and the statement's governor deadline: a query
        // whose deadline expires while queued is shed immediately instead
        // of sleeping on towards a wait it can never use.
        let deadline = match hyperq_governor::deadline_instant() {
            Some(d) => d.min(enqueued + self.timeout),
            None => enqueued + self.timeout,
        };
        loop {
            if state.queue.front() == Some(&ticket) && state.in_use < self.capacity {
                state.queue.pop_front();
                state.in_use += 1;
                self.depth.sub(1);
                self.admitted.inc();
                let waited = enqueued.elapsed();
                self.wait.record(waited);
                // The statement's provenance record does not exist yet
                // (admission precedes the pipeline); park the wait on this
                // thread for the record opened next.
                hyperq_obs::provenance::pend_admission_wait(waited);
                // The next waiter may also be admittable (several slots can
                // free while the front waiter is scheduled out).
                self.freed.notify_all();
                return Ok(AdmissionPermit { gate: Arc::clone(self) });
            }
            let now = Instant::now();
            if now >= deadline {
                state.queue.retain(|t| *t != ticket);
                self.depth.sub(1);
                self.shed_timeout.inc();
                self.wait.record(enqueued.elapsed());
                // Fold an expired governor deadline into the cancel token so
                // the caller reports the cancel code, not generic shedding.
                let _ = hyperq_governor::checkpoint();
                // Removing a (possibly front) waiter can unblock the one
                // behind it.
                self.freed.notify_all();
                return Err(ShedReason::Timeout);
            }
            self.freed.wait_for(&mut state, deadline - now);
        }
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.in_use = state.in_use.saturating_sub(1);
        drop(state);
        self.freed.notify_all();
    }

    /// Current queue length (tests / diagnostics).
    pub fn queue_depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Currently admitted holders (tests / diagnostics).
    pub fn in_use(&self) -> usize {
        self.state.lock().in_use
    }
}

/// RAII admission slot: releasing wakes the next queued waiter.
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").field("gate", &self.gate.name).finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(capacity: usize, queue: usize, timeout_ms: u64) -> Arc<AdmissionGate> {
        AdmissionGate::new(
            "statement",
            capacity,
            queue,
            Duration::from_millis(timeout_ms),
            &ObsContext::new(),
        )
    }

    #[test]
    fn admits_up_to_capacity_without_queueing() {
        let g = gate(2, 4, 50);
        let a = g.try_admit().unwrap();
        let b = g.try_admit().unwrap();
        assert_eq!(g.in_use(), 2);
        drop(a);
        drop(b);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn queue_full_sheds_immediately() {
        let g = gate(1, 0, 1_000);
        let _held = g.try_admit().unwrap();
        let t0 = Instant::now();
        assert_eq!(g.try_admit().unwrap_err(), ShedReason::QueueFull);
        assert!(t0.elapsed() < Duration::from_millis(500), "no waiting on a full queue");
    }

    #[test]
    fn queued_waiter_sheds_only_after_timeout() {
        let g = gate(1, 4, 60);
        let _held = g.try_admit().unwrap();
        let t0 = Instant::now();
        assert_eq!(g.try_admit().unwrap_err(), ShedReason::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(55), "shed before admission_timeout");
        assert_eq!(g.queue_depth(), 0, "timed-out waiter leaves the queue");
    }

    #[test]
    fn released_slot_admits_queued_waiter_fifo() {
        let g = gate(1, 8, 2_000);
        let held = g.try_admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::new();
        for i in 0..3 {
            let g2 = Arc::clone(&g);
            let order2 = Arc::clone(&order);
            workers.push(std::thread::spawn(move || {
                // Stagger arrivals so the FIFO order is deterministic.
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
                let permit = g2.try_admit().unwrap();
                order2.lock().push(i);
                drop(permit);
            }));
        }
        std::thread::sleep(Duration::from_millis(120));
        drop(held);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2], "admission must be first come first served");
    }
}
