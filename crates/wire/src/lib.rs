//! # hyperq-wire — wire-protocol virtualization
//!
//! The paper's claim that makes ADV more than a transpiler: applications
//! keep their *drivers and connectors* because Hyper-Q speaks the original
//! database's wire protocol end to end (§3.1 "support for native wire
//! protocols", §4.1 Protocol Handler).
//!
//! * [`message`] — TDWP, the simulated Teradata-like protocol (WP-A):
//!   framing, logon handshake messages, record-set messages, and the
//!   client-native binary row format (dates in Teradata integer encoding),
//! * [`auth`] — the salted challenge–response logon,
//! * [`tdf`] — the Tabular Data Format, Hyper-Q's internal binary batch
//!   representation (§4.5),
//! * [`mod@convert`] — the Result Converter (§4.6): parallel TDF → client-format
//!   conversion with spill-to-disk,
//! * [`server`] — the TCP gateway: one Hyper-Q session per connection, with
//!   per-stage timing (the Figure 9 instrumentation),
//! * [`admission`] — bounded-FIFO admission queueing in front of the
//!   gateway's connection and statement caps,
//! * [`obs_http`] — a read-only HTTP observability endpoint on its own
//!   port: Prometheus metrics, per-statement provenance, live workload
//!   reports and the slow-query log, all served with plain `curl`,
//! * [`client`] — a `bteq`-style client for tests, examples and the stress
//!   benchmark.

#![forbid(unsafe_code)]

pub mod admission;
pub mod auth;
pub mod client;
pub mod convert;
pub mod message;
pub mod obs_http;
pub mod server;
pub mod tdf;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionPermit, ShedReason};
pub use obs_http::ObsHttpHandle;
pub use client::{Aborter, Client, ClientResultSet};
pub use convert::{convert, ConverterConfig};
pub use message::{Message, WireError};
pub use server::{Gateway, GatewayConfig, GatewayHandle, WireStats};
