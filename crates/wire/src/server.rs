//! The gateway: TCP front door speaking TDWP, one Hyper-Q session per
//! connection (paper Figure 1b / §4.1 Gateway Manager + Protocol Handler).
//!
//! Per request the gateway records the three stage timings of the paper's
//! Figure 9: **query translation** (parse/bind/transform/serialize),
//! **execution** (target database), and **result transformation**
//! (TDF → client binary format, including spill handling).

use std::io::BufWriter;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_core::backend::Backend;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::{HyperQ, ObsContext};
use hyperq_obs::io::{CountingReader, CountingWriter};
use hyperq_obs::Gauge;
use parking_lot::Mutex;

use crate::auth::{fresh_salt, Credentials};
use crate::convert::{convert_traced, ConverterConfig};
use crate::message::{Message, WireError};

/// Decrements a gauge when dropped — keeps `sessions_active` honest on
/// every exit path of `handle_connection`, including protocol errors.
struct GaugeGuard(Arc<Gauge>);

impl GaugeGuard {
    fn acquire(gauge: Arc<Gauge>) -> GaugeGuard {
        gauge.add(1);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Aggregated per-stage timings across all requests served (Figure 9's
/// three components).
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    pub requests: u64,
    pub translation: Duration,
    pub execution: Duration,
    pub conversion: Duration,
    pub rows_returned: u64,
    pub spilled_chunks: u64,
}

impl WireStats {
    pub fn end_to_end(&self) -> Duration {
        self.translation + self.execution + self.conversion
    }

    /// Percentage shares of total response time, as plotted in Figure 9.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.end_to_end().as_secs_f64().max(f64::MIN_POSITIVE);
        (
            100.0 * self.translation.as_secs_f64() / total,
            100.0 * self.execution.as_secs_f64() / total,
            100.0 * self.conversion.as_secs_f64() / total,
        )
    }

    pub fn merge(&mut self, other: &WireStats) {
        self.requests += other.requests;
        self.translation += other.translation;
        self.execution += other.execution;
        self.conversion += other.conversion;
        self.rows_returned += other.rows_returned;
        self.spilled_chunks += other.spilled_chunks;
    }
}

/// Gateway configuration.
pub struct GatewayConfig {
    pub credentials: Credentials,
    pub capabilities: TargetCapabilities,
    pub converter: ConverterConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            credentials: Credentials::new().with_user("APP", "secret"),
            capabilities: TargetCapabilities::simwh(),
            converter: ConverterConfig::default(),
        }
    }
}

/// A running gateway.
pub struct Gateway {
    backend: Arc<dyn Backend>,
    config: GatewayConfig,
    stats: Mutex<WireStats>,
    shutdown: AtomicBool,
    connections: AtomicU64,
}

/// Handle to a gateway serving on a background thread.
pub struct GatewayHandle {
    pub addr: std::net::SocketAddr,
    gateway: Arc<Gateway>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Gateway {
    pub fn new(backend: Arc<dyn Backend>, config: GatewayConfig) -> Arc<Self> {
        Arc::new(Gateway {
            backend,
            config,
            stats: Mutex::new(WireStats::default()),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
        })
    }

    /// Bind to an ephemeral local port and serve in the background.
    pub fn spawn(
        backend: Arc<dyn Backend>,
        config: GatewayConfig,
    ) -> std::io::Result<GatewayHandle> {
        let gateway = Gateway::new(backend, config);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let g = Arc::clone(&gateway);
        let accept_thread = std::thread::spawn(move || {
            // Connection workers are detached: a session blocked reading
            // from an idle client must not prevent gateway shutdown.
            while !g.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let g2 = Arc::clone(&g);
                        std::thread::spawn(move || {
                            g2.connections.fetch_add(1, Ordering::Relaxed);
                            let _ = g2.handle_connection(stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(GatewayHandle { addr, gateway, accept_thread: Some(accept_thread) })
    }

    /// Serve one connection: logon handshake, then request/response loop.
    fn handle_connection(&self, stream: TcpStream) -> Result<(), WireError> {
        let obs = Arc::clone(ObsContext::global());
        obs.metrics.counter("hyperq_wire_connections_total", &[]).inc();
        let _session = GaugeGuard::acquire(obs.metrics.gauge("hyperq_wire_sessions_active", &[]));
        let queries = obs.metrics.counter("hyperq_wire_requests_total", &[]);
        let errors = obs.metrics.counter("hyperq_wire_errors_total", &[]);
        let mut reader = CountingReader::new(
            stream.try_clone()?,
            obs.metrics.counter("hyperq_wire_bytes_total", &[("direction", "in")]),
        );
        let mut writer = CountingWriter::new(
            BufWriter::new(stream),
            obs.metrics.counter("hyperq_wire_bytes_total", &[("direction", "out")]),
        );
        use std::io::Write as _;

        // --- logon handshake ---------------------------------------------
        let user = match Message::read_from(&mut reader)? {
            Message::LogonRequest { user } => user,
            other => {
                return Err(WireError::Protocol(format!(
                    "expected LogonRequest, got {other:?}"
                )))
            }
        };
        let salt = fresh_salt();
        Message::AuthChallenge { salt }.write_to(&mut writer)?;
        writer.flush()?;
        let digest = match Message::read_from(&mut reader)? {
            Message::LogonDigest { digest } => digest,
            other => {
                return Err(WireError::Protocol(format!(
                    "expected LogonDigest, got {other:?}"
                )))
            }
        };
        if !self.config.credentials.verify(&user, salt, digest) {
            Message::ErrorResponse { code: 8017, message: "invalid logon".into() }
                .write_to(&mut writer)?;
            writer.flush()?;
            return Ok(());
        }

        let mut hq = HyperQ::new(Arc::clone(&self.backend), self.config.capabilities.clone());
        hq.session.user = user;
        Message::LogonOk { session_id: hq.session.session_id }.write_to(&mut writer)?;
        writer.flush()?;

        // --- request loop ---------------------------------------------------
        loop {
            match Message::read_from(&mut reader) {
                Ok(Message::SqlRequest { sql }) => {
                    queries.inc();
                    let mut request_stats = WireStats { requests: 1, ..Default::default() };
                    match hq.run_script(&sql) {
                        Ok(outcomes) => {
                            for outcome in outcomes {
                                request_stats.translation += outcome.timings.translation;
                                request_stats.execution += outcome.timings.execution;
                                let t0 = Instant::now();
                                if outcome.result.schema.is_empty() {
                                    Message::StatementOk {
                                        activity_count: outcome.result.row_count,
                                    }
                                    .write_to(&mut writer)?;
                                } else {
                                    let converted = convert_traced(
                                        &outcome.result.schema,
                                        &outcome.result.rows,
                                        &self.config.converter,
                                        &obs,
                                        outcome.trace_id,
                                    )
                                    .map_err(WireError::Protocol)?;
                                    request_stats.conversion += t0.elapsed();
                                    request_stats.rows_returned += converted.total_rows;
                                    request_stats.spilled_chunks +=
                                        converted.spilled_chunks as u64;
                                    Message::RecordSetHeader {
                                        columns: converted.header.clone(),
                                    }
                                    .write_to(&mut writer)?;
                                    let total = converted.total_rows;
                                    let t1 = Instant::now();
                                    let mut werr: Option<std::io::Error> = None;
                                    {
                                        let w = &mut writer;
                                        converted
                                            .for_each_row(|frame| {
                                                Message::Record {
                                                    row_bytes: frame.to_vec(),
                                                }
                                                .write_to(w)
                                                .map_err(|e| match e {
                                                    WireError::Io(io) => io,
                                                    WireError::Protocol(p) => {
                                                        std::io::Error::other(p)
                                                    }
                                                })
                                            })
                                            .unwrap_or_else(|e| werr = Some(e));
                                    }
                                    if let Some(e) = werr {
                                        return Err(WireError::Io(e));
                                    }
                                    request_stats.conversion += t1.elapsed();
                                    Message::StatementOk { activity_count: total }
                                        .write_to(&mut writer)?;
                                }
                            }
                            Message::EndRequest.write_to(&mut writer)?;
                        }
                        Err(e) => {
                            errors.inc();
                            Message::ErrorResponse { code: 3807, message: e.to_string() }
                                .write_to(&mut writer)?;
                            Message::EndRequest.write_to(&mut writer)?;
                        }
                    }
                    // Publish stats before the client can observe the
                    // response (tests read them right after EndRequest).
                    self.stats.lock().merge(&request_stats);
                    writer.flush()?;
                }
                Ok(Message::Logoff) | Err(WireError::Io(_)) => break,
                Ok(other) => {
                    errors.inc();
                    Message::ErrorResponse {
                        code: 3700,
                        message: format!("unexpected message {other:?}"),
                    }
                    .write_to(&mut writer)?;
                    writer.flush()?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl GatewayHandle {
    /// Snapshot of the aggregated stage timings.
    pub fn stats(&self) -> WireStats {
        *self.gateway.stats.lock()
    }

    pub fn connections_served(&self) -> u64 {
        self.gateway.connections.load(Ordering::Relaxed)
    }

    /// Stop accepting new connections. In-flight sessions end when their
    /// clients disconnect.
    pub fn shutdown(mut self) {
        self.gateway.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}
