//! The gateway: TCP front door speaking TDWP, one Hyper-Q session per
//! connection (paper Figure 1b / §4.1 Gateway Manager + Protocol Handler).
//!
//! Per request the gateway records the three stage timings of the paper's
//! Figure 9: **query translation** (parse/bind/transform/serialize),
//! **execution** (target database), and **result transformation**
//! (TDF → client binary format, including spill handling).

use std::collections::VecDeque;
use std::io::{BufWriter, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_core::backend::Backend;
use hyperq_core::targets::TargetProfile;
use hyperq_core::repair::ProberHandle;
use hyperq_core::replicate::{ReplicaConfig, ReplicatedBackend};
use hyperq_core::resilience::{ResilienceConfig, ResilientBackend};
use hyperq_core::{
    AnalyzeMode, CacheConfig, ConformanceMode, HyperQ, HyperQBuilder, HyperQError, ObsContext,
    TranslationCache,
    TXN_ABORT_MESSAGE,
};
use hyperq_governor::{CancelReason, GovernorConfig, GovernorRegistry, QueryGovernor};
use hyperq_obs::io::{CountingReader, CountingWriter};
use hyperq_obs::Gauge;
use parking_lot::Mutex;

use crate::admission::{AdmissionConfig, AdmissionGate, ShedReason};
use crate::auth::{fresh_salt, Credentials};
use crate::convert::{convert_traced, ConverterConfig};
use crate::message::{Message, WireError};

/// Decrements a gauge when dropped — keeps `sessions_active` honest on
/// every exit path of `handle_connection`, including protocol errors.
struct GaugeGuard(Arc<Gauge>);

impl GaugeGuard {
    fn acquire(gauge: Arc<Gauge>) -> GaugeGuard {
        gauge.add(1);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Aggregated per-stage timings across all requests served (Figure 9's
/// three components).
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    pub requests: u64,
    pub translation: Duration,
    pub execution: Duration,
    pub conversion: Duration,
    pub rows_returned: u64,
    pub spilled_chunks: u64,
}

impl WireStats {
    pub fn end_to_end(&self) -> Duration {
        self.translation + self.execution + self.conversion
    }

    /// Percentage shares of total response time, as plotted in Figure 9.
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.end_to_end().as_secs_f64().max(f64::MIN_POSITIVE);
        (
            100.0 * self.translation.as_secs_f64() / total,
            100.0 * self.execution.as_secs_f64() / total,
            100.0 * self.conversion.as_secs_f64() / total,
        )
    }

    pub fn merge(&mut self, other: &WireStats) {
        self.requests += other.requests;
        self.translation += other.translation;
        self.execution += other.execution;
        self.conversion += other.conversion;
        self.rows_returned += other.rows_returned;
        self.spilled_chunks += other.spilled_chunks;
    }
}

/// Gateway configuration.
pub struct GatewayConfig {
    pub credentials: Credentials,
    /// Registry name of the target profile every session translates for
    /// (`"simwh"`, `"simwh-reduced"`, `"cloud-a"`, ... — see
    /// [`hyperq_core::targets::lookup`]). An unrecognized name falls back
    /// to the default `simwh` profile at gateway construction.
    pub target: String,
    pub converter: ConverterConfig,
    /// Hard cap on concurrent sessions; connections beyond it are answered
    /// with a wire error and closed instead of queueing unboundedly.
    pub max_connections: usize,
    /// Socket read/write timeout: a client that stalls mid-protocol for
    /// longer than this has its session reaped instead of leaking the
    /// worker thread forever. `None` disables.
    pub io_timeout: Option<Duration>,
    /// How long `shutdown()` waits for in-flight sessions to finish.
    /// The default is zero — shutdown only stops the acceptor, matching
    /// callers that keep clients open across `shutdown()`.
    pub drain_timeout: Duration,
    /// Retry/breaker policy wrapped around the backend, shared by all
    /// sessions so the breaker sees the target's aggregate health.
    /// `None` executes against the backend unwrapped. On a replicated
    /// gateway (`replicas` non-empty) this same policy is applied *per
    /// replica* inside the replica set, unless `replica_config.resilience`
    /// explicitly overrides it.
    pub resilience: Option<ResilienceConfig>,
    /// Static-analysis mode for every session's pipeline. The gateway
    /// defaults to `LogOnly`: violations are counted in the metrics
    /// registry but never fail live traffic. CI and tests run `Strict`.
    pub analyze: AnalyzeMode,
    /// Capability-conformance lint mode over serialized SQL for every
    /// session's pipeline, same Off/LogOnly/Strict ladder as `analyze`.
    pub conformance: ConformanceMode,
    /// Admission queueing in front of the connection cap (and optionally a
    /// statement-concurrency cap): excess work waits in a bounded FIFO for
    /// up to `admission_timeout` before being shed with a distinct wire
    /// error. `None` (or a zero-length connection queue) hard-rejects at
    /// the cap like the pre-queue gateway.
    pub admission: Option<AdmissionConfig>,
    /// Translation-cache configuration. One cache is shared by every
    /// session the gateway serves — the cache key carries the per-session
    /// settings and catalog epochs, so sharing is safe across sessions
    /// with divergent `SET` state. `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Bind address for the read-only observability HTTP endpoint
    /// (`/metrics`, `/provenance`, `/report`, …), e.g. `"127.0.0.1:0"`
    /// for an ephemeral port. `None` (the default) serves no endpoint.
    pub obs_http: Option<String>,
    /// Per-query lifecycle governance: default deadlines, per-query and
    /// gateway-global memory budgets, watchdog sweep cadence, and whether
    /// the observability endpoint may cancel queries.
    pub governor: GovernorConfig,
    /// Additional warehouse replicas. When non-empty, the gateway serves
    /// a [`ReplicatedBackend`] over the primary (replica `r0`) plus these:
    /// reads load-balance, writes broadcast, fenced replicas self-heal via
    /// the write-repair journal and the background health prober. The
    /// `resilience` policy then applies *per replica* inside the replica
    /// set instead of as one shared wrapper, so a retry storm against a
    /// sick replica cannot trip the breaker for its healthy peers.
    pub replicas: Vec<Arc<dyn Backend>>,
    /// Journal capacity, probe cadence and per-replica retry policy for
    /// the replica set. Its `resilience: None` (the default) inherits the
    /// gateway-level `resilience` policy, so tuning that policy carries
    /// over to a replicated gateway; set it to `Some(…)` to give replicas
    /// their own policy. Ignored when `replicas` is empty.
    pub replica_config: ReplicaConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            credentials: Credentials::new().with_user("APP", "secret"),
            target: "simwh".to_string(),
            converter: ConverterConfig::default(),
            max_connections: 256,
            io_timeout: Some(Duration::from_secs(120)),
            drain_timeout: Duration::ZERO,
            resilience: Some(ResilienceConfig::default()),
            analyze: AnalyzeMode::LogOnly,
            conformance: ConformanceMode::LogOnly,
            admission: Some(AdmissionConfig::default()),
            cache: Some(CacheConfig::default()),
            obs_http: None,
            governor: GovernorConfig::default(),
            replicas: Vec::new(),
            replica_config: ReplicaConfig::default(),
        }
    }
}

/// A running gateway.
pub struct Gateway {
    backend: Arc<dyn Backend>,
    config: GatewayConfig,
    /// Target profile resolved from `config.target` at construction; every
    /// session translates for this profile.
    profile: TargetProfile,
    stats: Mutex<WireStats>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    active: AtomicUsize,
    /// Connection admission queue (capacity = `max_connections`); `None`
    /// falls back to the hard reject.
    conn_gate: Option<Arc<AdmissionGate>>,
    /// Statement admission queue across all sessions; `None` leaves
    /// statement concurrency to the backend.
    stmt_gate: Option<Arc<AdmissionGate>>,
    /// Translation cache shared by every session this gateway serves.
    cache: Option<Arc<TranslationCache>>,
    /// Per-query lifecycle governor: every statement registers here, the
    /// watchdog sweeps it, and `/queries` snapshots it.
    governor: Arc<GovernorRegistry>,
    /// The replica set behind `backend` when the gateway is replicated;
    /// `/replicas` snapshots it and the prober sweeps it.
    replication: Option<Arc<ReplicatedBackend>>,
}

/// Decrements the gateway's active-session count when a worker exits,
/// on every path (clean logoff, protocol error, panic unwind). On a
/// replicated gateway it also releases the worker thread's transaction
/// pin: a client that disconnects mid-transaction would otherwise leave
/// the replica's pinned-session count elevated forever (the pin is
/// thread-local, so this relies on the guard dropping on the session's
/// own thread).
struct ActiveGuard(Arc<Gateway>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        if let Some(rep) = &self.0.replication {
            rep.release_pin();
        }
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Handle to a gateway serving on a background thread.
pub struct GatewayHandle {
    pub addr: std::net::SocketAddr,
    gateway: Arc<Gateway>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    obs_http: Option<crate::obs_http::ObsHttpHandle>,
    /// Governor watchdog; dropping it stops and joins the sweep thread.
    watchdog: Option<hyperq_governor::WatchdogHandle>,
    /// Replica health prober; dropping it stops and joins the sweep
    /// thread. `None` when the gateway is not replicated (or the probe
    /// interval is zero).
    prober: Option<ProberHandle>,
}

/// Session reader that replays bytes handed back by an [`AbortWatcher`]
/// before resuming from the socket: a frame the watcher had only partially
/// read when its statement finished is completed by the request loop
/// instead of being lost (or treated as a protocol error).
struct SessionReader<R> {
    replay: VecDeque<u8>,
    inner: R,
}

impl<R: Read> Read for SessionReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if !self.replay.is_empty() {
            let n = buf.len().min(self.replay.len());
            for b in buf.iter_mut().take(n) {
                *b = self.replay.pop_front().unwrap_or_default();
            }
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

/// What an abort-watcher stint observed while a statement executed.
struct WatcherOutcome {
    /// Complete non-abort frames the client pipelined during execution,
    /// to be served by the request loop in arrival order.
    messages: VecDeque<Message>,
    /// Raw bytes of a frame still incomplete when the watcher stopped.
    leftover: Vec<u8>,
    /// The client vanished (EOF or hard socket error) mid-statement.
    disconnected: bool,
}

impl WatcherOutcome {
    fn empty() -> WatcherOutcome {
        WatcherOutcome { messages: VecDeque::new(), leftover: Vec::new(), disconnected: false }
    }
}

/// How often the abort watcher wakes to poll its stop flag. This is also
/// the read timeout it installs on the (shared) socket, so the session
/// restores `io_timeout` after every stint — and the bound on how long
/// `finish()` blocks the response tail, so it is kept small: every wire
/// statement pays up to one poll interval joining its watcher.
const ABORT_POLL: Duration = Duration::from_millis(5);

/// Length of the complete TDWP frame at the head of `buf`, if one is there.
fn complete_frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 5 {
        return None;
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    (buf.len() >= 5 + len).then_some(5 + len)
}

/// Watches the client socket for out-of-band frames while a statement
/// executes on the session thread — the TDWP async-abort path. An
/// [`Message::AbortRequest`] cancels the statement's governor token (the
/// next checkpoint in parser/transformer/engine/converter aborts the
/// work); any other frame is kept for the request loop. Reads poll with a
/// short timeout and accumulate bytes, so a timeout mid-frame on a
/// cancelled query resumes cleanly instead of desynchronizing the
/// protocol.
struct AbortWatcher {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<WatcherOutcome>,
}

impl AbortWatcher {
    fn spawn(stream: TcpStream, gov: Arc<QueryGovernor>) -> std::io::Result<AbortWatcher> {
        stream.set_read_timeout(Some(ABORT_POLL))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut stream = stream;
            let mut outcome = WatcherOutcome::empty();
            let mut tmp = [0u8; 4096];
            loop {
                match stream.read(&mut tmp) {
                    Ok(0) => {
                        gov.cancel(CancelReason::ClientAbort, "client disconnected mid-request");
                        outcome.disconnected = true;
                        break;
                    }
                    Ok(n) => outcome.leftover.extend_from_slice(&tmp[..n]),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if stop2.load(Ordering::Relaxed) {
                            break;
                        }
                        continue;
                    }
                    Err(_) => {
                        gov.cancel(CancelReason::ClientAbort, "client socket error mid-request");
                        outcome.disconnected = true;
                        break;
                    }
                }
                while let Some(frame_len) = complete_frame_len(&outcome.leftover) {
                    let frame: Vec<u8> = outcome.leftover.drain(..frame_len).collect();
                    let mut cursor = std::io::Cursor::new(frame);
                    match Message::read_from(&mut cursor) {
                        Ok(Message::AbortRequest) => {
                            gov.cancel(CancelReason::ClientAbort, "aborted by client request");
                        }
                        Ok(m) => outcome.messages.push_back(m),
                        // An undecodable frame is dropped here; the request
                        // loop reports subsequent desync as a protocol
                        // error on its own reads.
                        Err(_) => {}
                    }
                }
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
            }
            outcome
        });
        Ok(AbortWatcher { stop, thread })
    }

    /// Stop watching (at most one `ABORT_POLL` later) and hand back
    /// everything read from the socket.
    fn finish(self) -> WatcherOutcome {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().unwrap_or_else(|_| WatcherOutcome::empty())
    }
}

/// Record end-of-statement cancel accounting: one counter bump per
/// cancelled statement labelled by reason, plus the cancel-to-kill latency
/// (cancel request → statement actually dead).
fn note_cancel_metrics(obs: &ObsContext, gov: &QueryGovernor) {
    if let Some(reason) = gov.token().reason() {
        obs.metrics
            .counter("hyperq_governor_cancels_total", &[("reason", reason.as_str())])
            .inc();
        if let Some(latency) = gov.cancel_latency() {
            obs.metrics
                .histogram("hyperq_governor_cancel_latency_seconds", &[])
                .record(latency);
        }
    }
}

impl Gateway {
    pub fn new(backend: Arc<dyn Backend>, mut config: GatewayConfig) -> Arc<Self> {
        let obs = ObsContext::global();
        let replicas = std::mem::take(&mut config.replicas);
        // Replicated gateway: the replica set wraps each member in its own
        // resilience layer (from `replica_config`), so the shared wrapper
        // below would double-retry every statement — skip it. Single
        // backend: one resilience wrapper shared by every session, so
        // retries and deadlines apply per request while the circuit
        // breaker tracks the target's aggregate health.
        let (backend, replication): (Arc<dyn Backend>, Option<Arc<ReplicatedBackend>>) =
            if replicas.is_empty() {
                let backend = match &config.resilience {
                    Some(resilience) => {
                        ResilientBackend::wrap(backend, resilience.clone(), obs)
                    }
                    None => backend,
                };
                (backend, None)
            } else {
                let mut set: Vec<Arc<dyn Backend>> = vec![backend];
                set.extend(replicas);
                let mut replica_config = config.replica_config.clone();
                // An explicitly set per-replica policy wins; otherwise the
                // gateway-level `resilience` policy carries over, so an
                // operator's tuned retry/breaker settings are never
                // silently dropped by adding replicas.
                if replica_config.resilience.is_none() {
                    replica_config.resilience = config.resilience.clone();
                }
                match ReplicatedBackend::with_config(set, replica_config, obs) {
                    Ok(rep) => {
                        let rep = Arc::new(rep);
                        (Arc::clone(&rep) as Arc<dyn Backend>, Some(rep))
                    }
                    // `with_config` only fails on an empty set, and `set`
                    // always holds the primary.
                    Err(_) => unreachable!("replica set always contains the primary backend"),
                }
            };
        let (conn_gate, stmt_gate) = match &config.admission {
            Some(adm) => (
                (adm.connection_queue > 0).then(|| {
                    AdmissionGate::new(
                        "connection",
                        config.max_connections,
                        adm.connection_queue,
                        adm.admission_timeout,
                        obs,
                    )
                }),
                adm.statement_slots.map(|slots| {
                    AdmissionGate::new(
                        "statement",
                        slots,
                        adm.statement_queue,
                        adm.admission_timeout,
                        obs,
                    )
                }),
            ),
            None => (None, None),
        };
        // One translation cache for the whole gateway: every session's
        // compiled templates are visible to every other session, keyed by
        // (fingerprint, capability signature, session settings epoch).
        let cache = config
            .cache
            .clone()
            .map(|cfg| Arc::new(TranslationCache::new(cfg, obs)));
        let governor = GovernorRegistry::new(config.governor.clone(), obs);
        // Resolve the configured target once; a typo'd name falls back to
        // the default profile rather than refusing to serve, and the
        // counter makes the fallback visible to operators.
        let profile = hyperq_core::targets::lookup(&config.target).unwrap_or_else(|| {
            obs.metrics
                .counter("hyperq_wire_unknown_target_total", &[])
                .inc();
            hyperq_core::targets::simwh()
        });
        Arc::new(Gateway {
            backend,
            config,
            profile,
            stats: Mutex::new(WireStats::default()),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            conn_gate,
            stmt_gate,
            cache,
            governor,
            replication,
        })
    }

    /// Bind to an ephemeral local port and serve in the background.
    pub fn spawn(
        backend: Arc<dyn Backend>,
        config: GatewayConfig,
    ) -> std::io::Result<GatewayHandle> {
        let gateway = Gateway::new(backend, config);
        // The observability endpoint serves the same global context the
        // sessions record into, on its own port so scraping never contends
        // with the TDWP front door.
        let obs_http = match &gateway.config.obs_http {
            Some(bind) => Some(crate::obs_http::spawn_with_state(
                bind,
                Arc::clone(ObsContext::global()),
                Some(Arc::clone(&gateway.governor)),
                gateway.replication.clone(),
            )?),
            None => None,
        };
        // The watchdog sweeps the in-flight query table on its own thread,
        // cancelling statements that outlive their deadline even when the
        // executing thread is between checkpoints.
        let watchdog = Some(gateway.governor.spawn_watchdog());
        // Replicated gateway: the health prober sweeps fenced replicas at
        // the configured cadence (zero = manual `probe_and_repair` only).
        let prober = gateway.replication.as_ref().and_then(|rep| {
            (!gateway.config.replica_config.probe_interval.is_zero())
                .then(|| rep.spawn_prober())
        });
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let g = Arc::clone(&gateway);
        let accept_thread = std::thread::spawn(move || {
            let obs = ObsContext::global();
            let accept_errors = obs.metrics.counter("hyperq_wire_accept_errors_total", &[]);
            let rejected = obs.metrics.counter("hyperq_wire_rejected_connections_total", &[]);
            const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(5);
            const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);
            let mut backoff = ACCEPT_BACKOFF_MIN;
            // Connection workers are detached: a session blocked reading
            // from an idle client must not prevent gateway shutdown.
            while !g.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff = ACCEPT_BACKOFF_MIN;
                        stream.set_nonblocking(false).ok();
                        if let Some(gate) = &g.conn_gate {
                            // Admission may queue up to `admission_timeout`;
                            // wait on the worker thread so the acceptor
                            // never blocks behind a full gateway.
                            let gate = Arc::clone(gate);
                            let g2 = Arc::clone(&g);
                            let rejected = Arc::clone(&rejected);
                            std::thread::spawn(move || match gate.try_admit() {
                                Ok(permit) => {
                                    g2.active.fetch_add(1, Ordering::Relaxed);
                                    let _guard = ActiveGuard(Arc::clone(&g2));
                                    let _permit = permit;
                                    g2.connections.fetch_add(1, Ordering::Relaxed);
                                    let _ = g2.handle_connection(stream);
                                }
                                Err(reason) => {
                                    rejected.inc();
                                    g2.shed_connection(stream, reason);
                                }
                            });
                            continue;
                        }
                        if g.active.fetch_add(1, Ordering::Relaxed) >= g.config.max_connections {
                            g.active.fetch_sub(1, Ordering::Relaxed);
                            rejected.inc();
                            // Rejection reads the pending logon first; do it
                            // off-thread so a stalled client cannot wedge
                            // the acceptor.
                            let g2 = Arc::clone(&g);
                            std::thread::spawn(move || g2.reject_connection(stream));
                            continue;
                        }
                        let guard = ActiveGuard(Arc::clone(&g));
                        let g2 = Arc::clone(&g);
                        std::thread::spawn(move || {
                            let _guard = guard;
                            g2.connections.fetch_add(1, Ordering::Relaxed);
                            let _ = g2.handle_connection(stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_BACKOFF_MIN);
                    }
                    // Transient accept failures (EMFILE, ECONNABORTED, …):
                    // back off and keep the acceptor alive instead of
                    // silently killing the front door.
                    Err(_) => {
                        accept_errors.inc();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
        });
        Ok(GatewayHandle {
            addr,
            gateway,
            accept_thread: Some(accept_thread),
            obs_http,
            watchdog,
            prober,
        })
    }

    /// Turn away a connection over the cap: best-effort wire error so the
    /// client sees "at capacity" instead of an unexplained hangup. The
    /// pending logon request is consumed first — closing with unread bytes
    /// in the receive buffer would RST the socket and the client could
    /// lose the error message.
    fn reject_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        if let Ok(mut reader) = stream.try_clone() {
            let _ = Message::read_from(&mut reader);
        }
        let mut writer = BufWriter::new(stream);
        let _ = Message::ErrorResponse {
            code: 3134,
            message: format!(
                "gateway at capacity ({} sessions); try again later",
                self.config.max_connections
            ),
        }
        .write_to(&mut writer);
        use std::io::Write as _;
        let _ = writer.flush();
    }

    /// Turn away a connection the admission queue could not seat: same
    /// read-pending-logon-then-error shape as [`Gateway::reject_connection`],
    /// but with a per-reason wire code so clients can tell "queue overflowed
    /// instantly" from "waited `admission_timeout` and gave up".
    fn shed_connection(&self, stream: TcpStream, reason: ShedReason) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        if let Ok(mut reader) = stream.try_clone() {
            let _ = Message::read_from(&mut reader);
        }
        let mut writer = BufWriter::new(stream);
        let message = match reason {
            ShedReason::QueueFull => format!(
                "gateway at capacity ({} sessions) and admission queue full; try again later",
                self.config.max_connections
            ),
            ShedReason::Timeout => format!(
                "gateway at capacity ({} sessions); admission wait exceeded {:?}",
                self.config.max_connections,
                self.config
                    .admission
                    .as_ref()
                    .map(|a| a.admission_timeout)
                    .unwrap_or_default()
            ),
        };
        let _ = Message::ErrorResponse { code: reason.wire_code(), message }.write_to(&mut writer);
        use std::io::Write as _;
        let _ = writer.flush();
    }

    /// Serve one connection: logon handshake, then request/response loop.
    fn handle_connection(&self, stream: TcpStream) -> Result<(), WireError> {
        // A client stalled mid-read or mid-write past the budget gets its
        // session reaped; without this a dead peer leaks the thread forever.
        stream.set_read_timeout(self.config.io_timeout)?;
        stream.set_write_timeout(self.config.io_timeout)?;
        let obs = Arc::clone(ObsContext::global());
        obs.metrics.counter("hyperq_wire_connections_total", &[]).inc();
        let _session = GaugeGuard::acquire(obs.metrics.gauge("hyperq_wire_sessions_active", &[]));
        let queries = obs.metrics.counter("hyperq_wire_requests_total", &[]);
        let errors = obs.metrics.counter("hyperq_wire_errors_total", &[]);
        // Extra clone for socket-option control (read-timeout restore after
        // an abort-watcher stint) and for spawning the per-statement
        // watchers; SO_RCVTIMEO is a property of the underlying socket, so
        // any clone can set and restore it.
        let ctrl = stream.try_clone()?;
        let mut reader = SessionReader {
            replay: VecDeque::new(),
            inner: CountingReader::new(
                stream.try_clone()?,
                obs.metrics.counter("hyperq_wire_bytes_total", &[("direction", "in")]),
            ),
        };
        let mut writer = CountingWriter::new(
            BufWriter::new(stream),
            obs.metrics.counter("hyperq_wire_bytes_total", &[("direction", "out")]),
        );
        use std::io::Write as _;

        // --- logon handshake ---------------------------------------------
        let user = match Message::read_from(&mut reader)? {
            Message::LogonRequest { user } => user,
            other => {
                return Err(WireError::Protocol(format!(
                    "expected LogonRequest, got {other:?}"
                )))
            }
        };
        let salt = fresh_salt();
        Message::AuthChallenge { salt }.write_to(&mut writer)?;
        writer.flush()?;
        let digest = match Message::read_from(&mut reader)? {
            Message::LogonDigest { digest } => digest,
            other => {
                return Err(WireError::Protocol(format!(
                    "expected LogonDigest, got {other:?}"
                )))
            }
        };
        if !self.config.credentials.verify(&user, salt, digest) {
            Message::ErrorResponse { code: 8017, message: "invalid logon".into() }
                .write_to(&mut writer)?;
            writer.flush()?;
            return Ok(());
        }

        let mut builder =
            HyperQBuilder::for_target(Arc::clone(&self.backend), self.profile.clone())
                .analyze(self.config.analyze)
                .conformance(self.config.conformance);
        builder = match &self.cache {
            Some(cache) => builder.shared_cache(Arc::clone(cache)),
            None => builder.no_cache(),
        };
        let mut hq = builder.build();
        hq.session.user = user;
        Message::LogonOk { session_id: hq.session.session_id }.write_to(&mut writer)?;
        writer.flush()?;

        // --- request loop ---------------------------------------------------
        // Frames an abort watcher captured beyond its own statement are
        // served from here before the socket is read again.
        let mut pending: VecDeque<Message> = VecDeque::new();
        loop {
            let next = match pending.pop_front() {
                Some(m) => Ok(m),
                None => Message::read_from(&mut reader),
            };
            match next {
                Ok(Message::SqlRequest { sql }) => {
                    queries.inc();
                    if !self.serve_statement(
                        &mut hq, &sql, None, &ctrl, &mut reader, &mut writer, &obs, &mut pending,
                    )? {
                        break;
                    }
                }
                Ok(Message::SqlRequestTimed { timeout_ms, sql }) => {
                    queries.inc();
                    let limit = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms as u64));
                    if !self.serve_statement(
                        &mut hq, &sql, limit, &ctrl, &mut reader, &mut writer, &obs, &mut pending,
                    )? {
                        break;
                    }
                }
                Ok(Message::AbortRequest) => {
                    // Abort with nothing in flight (or whose statement
                    // finished first): nothing to cancel, and no response
                    // of its own — an abort is answered on the request it
                    // kills, so an unpaired one is silently dropped to keep
                    // the client's request/response pairing intact.
                    obs.metrics.counter("hyperq_governor_idle_aborts_total", &[]).inc();
                }
                Ok(Message::Logoff) => break,
                Err(WireError::Io(e)) => {
                    // A read timeout means an idle/stalled client, not a
                    // dead socket: tell it why before reaping the session.
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        obs.metrics.counter("hyperq_wire_idle_timeouts_total", &[]).inc();
                        let _ = Message::ErrorResponse {
                            code: 3403,
                            message: "session idle timeout; reconnect to continue".into(),
                        }
                        .write_to(&mut writer);
                        let _ = writer.flush();
                    }
                    break;
                }
                Ok(other) => {
                    errors.inc();
                    Message::ErrorResponse {
                        code: 3700,
                        message: format!("unexpected message {other:?}"),
                    }
                    .write_to(&mut writer)?;
                    writer.flush()?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Serve one SQL request under a query governor: register it (deadline
    /// from the client's limit or the gateway default, memory budget from
    /// config), watch the socket for an async abort while it runs, and map
    /// a cancelled statement onto its single well-defined wire code — 3110
    /// client abort, 3156 deadline, 2646 memory budget — leaving the
    /// session usable. Returns `Ok(false)` when the client disconnected
    /// mid-statement and the session should end.
    #[allow(clippy::too_many_arguments)]
    fn serve_statement(
        &self,
        hq: &mut HyperQ,
        sql: &str,
        client_timeout: Option<Duration>,
        ctrl: &TcpStream,
        reader: &mut SessionReader<CountingReader<TcpStream>>,
        writer: &mut CountingWriter<BufWriter<TcpStream>>,
        obs: &Arc<ObsContext>,
        pending: &mut VecDeque<Message>,
    ) -> Result<bool, WireError> {
        use std::io::Write as _;
        let errors = obs.metrics.counter("hyperq_wire_errors_total", &[]);

        // Register before admission so time spent queueing counts against
        // the statement's deadline (and an expired deadline sheds the
        // queued statement immediately — see `AdmissionGate::try_admit`).
        let registration = self.governor.begin(hq.session.session_id, client_timeout);
        let gov = Arc::clone(registration.governor());
        let _scope = hyperq_governor::install(Arc::clone(&gov));

        // Statement admission: the permit spans translation, execution and
        // conversion, so `statement_slots` caps gateway-wide statement
        // concurrency end to end.
        let stmt_permit = match &self.stmt_gate {
            Some(gate) => match gate.try_admit() {
                Ok(permit) => Some(permit),
                Err(reason) => {
                    errors.inc();
                    // A shed whose true cause is the statement's own
                    // deadline reports the cancel code, not admission noise.
                    let (code, message) = match gov.token().error() {
                        Some(c) => (c.reason.wire_code(), c.to_string()),
                        None => (
                            reason.wire_code(),
                            format!(
                                "statement shed by admission control ({}); try again later",
                                reason.as_str()
                            ),
                        ),
                    };
                    note_cancel_metrics(obs, &gov);
                    Message::ErrorResponse { code, message }.write_to(writer)?;
                    Message::EndRequest.write_to(writer)?;
                    writer.flush()?;
                    return Ok(true);
                }
            },
            None => None,
        };

        // Watch for an out-of-band AbortRequest while the statement runs.
        // If the socket cannot be cloned the statement still runs — it just
        // cannot be client-aborted (deadline and budget still apply).
        let watcher = ctrl
            .try_clone()
            .ok()
            .and_then(|s| AbortWatcher::spawn(s, Arc::clone(&gov)).ok());

        let run_result = hq.run_script(sql);

        // Stop the watcher *before* writing the response: once the client
        // sees EndRequest it may send its next request, which must be read
        // by the request loop, not swallowed here. Hand back everything the
        // watcher read and restore the session's io timeout (the watcher
        // shortened the shared socket's).
        let outcome = match watcher {
            Some(w) => w.finish(),
            None => WatcherOutcome::empty(),
        };
        let _ = ctrl.set_read_timeout(self.config.io_timeout);
        reader.replay.extend(outcome.leftover.iter().copied());
        pending.extend(outcome.messages);
        if outcome.disconnected {
            note_cancel_metrics(obs, &gov);
            return Ok(false);
        }

        let mut request_stats = WireStats { requests: 1, ..Default::default() };
        match run_result {
            Ok(outcomes) => {
                let mut failed: Option<(u16, String)> = None;
                for outcome in outcomes {
                    request_stats.translation += outcome.timings.translation;
                    request_stats.execution += outcome.timings.execution;
                    let t0 = Instant::now();
                    if outcome.result.schema.is_empty() {
                        Message::StatementOk { activity_count: outcome.result.row_count }
                            .write_to(writer)?;
                        continue;
                    }
                    hyperq_governor::note_stage(hyperq_governor::Stage::Converting);
                    let converted = match convert_traced(
                        &outcome.result.schema,
                        &outcome.result.rows,
                        &self.config.converter,
                        obs,
                        outcome.trace_id,
                    ) {
                        Ok(c) => c,
                        Err(msg) => {
                            // A conversion abandoned because the statement
                            // was cancelled is an ordinary statement error
                            // on the wire — the session survives. Only a
                            // genuinely broken conversion is a protocol
                            // failure.
                            match hyperq_governor::cancel_error() {
                                Some(c) => {
                                    failed = Some((c.reason.wire_code(), c.to_string()));
                                    break;
                                }
                                None => return Err(WireError::Protocol(msg)),
                            }
                        }
                    };
                    request_stats.conversion += t0.elapsed();
                    request_stats.rows_returned += converted.total_rows;
                    request_stats.spilled_chunks += converted.spilled_chunks as u64;
                    Message::RecordSetHeader { columns: converted.header.clone() }
                        .write_to(writer)?;
                    let total = converted.total_rows;
                    let t1 = Instant::now();
                    let mut werr: Option<std::io::Error> = None;
                    {
                        let w = &mut *writer;
                        converted
                            .for_each_row(|frame| {
                                // A statement cancelled mid-stream stops
                                // sending records; the client gets the
                                // cancel code instead of StatementOk.
                                if let Some(c) = hyperq_governor::cancel_error() {
                                    return Err(std::io::Error::other(c.to_string()));
                                }
                                Message::Record { row_bytes: frame.to_vec() }
                                    .write_to(w)
                                    .map_err(|e| match e {
                                        WireError::Io(io) => io,
                                        WireError::Protocol(p) => std::io::Error::other(p),
                                    })
                            })
                            .unwrap_or_else(|e| werr = Some(e));
                    }
                    if let Some(e) = werr {
                        match gov.token().error() {
                            Some(c) => {
                                failed = Some((c.reason.wire_code(), c.to_string()));
                                break;
                            }
                            None => return Err(WireError::Io(e)),
                        }
                    }
                    request_stats.conversion += t1.elapsed();
                    Message::StatementOk { activity_count: total }.write_to(writer)?;
                }
                if let Some((code, message)) = failed {
                    errors.inc();
                    Message::ErrorResponse { code, message }.write_to(writer)?;
                }
                Message::EndRequest.write_to(writer)?;
            }
            Err(e) => {
                errors.inc();
                let (code, message) = match &e {
                    // The one well-defined cancel path: every cancelled
                    // statement — client abort, deadline, memory budget —
                    // funnels through `HyperQError::Cancelled` and maps to
                    // its reason's wire code.
                    HyperQError::Cancelled(c) => (c.reason.wire_code(), e.to_string()),
                    _ => {
                        let message = e.to_string();
                        // A mid-transaction connection loss surfaces as its
                        // own code: the session is usable again, but the
                        // client must re-run the whole transaction.
                        let code = if message.contains(TXN_ABORT_MESSAGE) { 2631 } else { 3807 };
                        (code, message)
                    }
                };
                Message::ErrorResponse { code, message }.write_to(writer)?;
                Message::EndRequest.write_to(writer)?;
            }
        }
        note_cancel_metrics(obs, &gov);
        // Publish stats — and release the statement slot — before the flush
        // unblocks the client: a client that has seen EndRequest must never
        // find the gate still held by the statement it just finished.
        self.stats.lock().merge(&request_stats);
        drop(stmt_permit);
        writer.flush()?;
        Ok(true)
    }
}

impl GatewayHandle {
    /// Snapshot of the aggregated stage timings.
    pub fn stats(&self) -> WireStats {
        *self.gateway.stats.lock()
    }

    pub fn connections_served(&self) -> u64 {
        self.gateway.connections.load(Ordering::Relaxed)
    }

    /// Sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.gateway.active.load(Ordering::Relaxed)
    }

    /// Address of the observability HTTP endpoint, if one was configured.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_http.as_ref().map(|h| h.addr)
    }

    /// The gateway's query-governor registry (in-flight snapshots,
    /// operator cancels, pool usage).
    pub fn governor(&self) -> &Arc<GovernorRegistry> {
        &self.gateway.governor
    }

    /// The gateway's replica set, when it was configured with
    /// [`GatewayConfig::replicas`] (health snapshots, manual repair
    /// sweeps).
    pub fn replication(&self) -> Option<&Arc<ReplicatedBackend>> {
        self.gateway.replication.as_ref()
    }

    /// Stop accepting new connections, then wait up to
    /// `GatewayConfig::drain_timeout` for in-flight sessions to finish.
    /// With the default zero drain budget this only stops the acceptor;
    /// in-flight sessions end when their clients disconnect.
    pub fn shutdown(mut self) {
        self.gateway.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(obs) = self.obs_http.take() {
            obs.shutdown();
        }
        let deadline = Instant::now() + self.gateway.config.drain_timeout;
        while self.gateway.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // The drain is over: stop the health prober (in-flight statements
        // have finished, so nothing new lands in the repair journals), then
        // the watchdog last so statements still draining stayed governed.
        drop(self.prober.take());
        drop(self.watchdog.take());
    }
}
