//! TDF — the Tabular Data Format (paper §4.5).
//!
//! "Result batches are packaged according to Hyper-Q binary data
//! representation, called Tabular Data Format (TDF), which is designed to
//! be an extensible binary format that is able to handle arbitrarily large
//! nested data."
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    u32   = 0x54444631 ("TDF1")
//! ncols    u16
//! per col: tag u8, name-len u16, name bytes (UTF-8)
//! nrows    u64
//! per row: null bitmap (⌈ncols/8⌉ bytes), then non-null values in column
//!          order, each encoded per its column tag; variable-length values
//!          carry a u32 length prefix.
//! ```
//!
//! The format is self-describing: a TDF batch can be decoded without the
//! producing query's plan, which is what lets the Result Converter run in
//! parallel worker threads over raw batches.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hyperq_xtra::datum::{Datum, Decimal, Interval};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;
use hyperq_xtra::Row;

const MAGIC: u32 = 0x5444_4631;

/// Encoding error (schema/value mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdfError(pub String);

impl std::fmt::Display for TdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TDF error: {}", self.0)
    }
}

impl std::error::Error for TdfError {}

/// Column type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    Bool = 1,
    Int = 2,
    Double = 3,
    Decimal = 4,
    Date = 5,
    Timestamp = 6,
    Varchar = 7,
    Interval = 8,
}

fn tag_of(ty: &SqlType) -> Tag {
    match ty {
        SqlType::Boolean => Tag::Bool,
        SqlType::Integer => Tag::Int,
        SqlType::Double => Tag::Double,
        SqlType::Decimal { .. } => Tag::Decimal,
        SqlType::Date => Tag::Date,
        SqlType::Timestamp => Tag::Timestamp,
        SqlType::Interval => Tag::Interval,
        // Character data and everything the tag set does not distinguish
        // serializes as a string; TDF is a transport, not a type system.
        SqlType::Varchar(_) | SqlType::Char(_) | SqlType::Period(_) | SqlType::Unknown => {
            Tag::Varchar
        }
    }
}

fn tag_from(b: u8) -> Result<Tag, TdfError> {
    Ok(match b {
        1 => Tag::Bool,
        2 => Tag::Int,
        3 => Tag::Double,
        4 => Tag::Decimal,
        5 => Tag::Date,
        6 => Tag::Timestamp,
        7 => Tag::Varchar,
        8 => Tag::Interval,
        other => return Err(TdfError(format!("unknown TDF type tag {other}"))),
    })
}

/// Encode a result batch into one TDF buffer.
pub fn encode(schema: &Schema, rows: &[Row]) -> Result<Bytes, TdfError> {
    let ncols = schema.len();
    let mut buf = BytesMut::with_capacity(64 + rows.len() * ncols * 8);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(ncols as u16);
    let tags: Vec<Tag> = schema
        .fields
        .iter()
        .map(|f| {
            let t = tag_of(&f.ty);
            buf.put_u8(t as u8);
            let name = f.name.as_bytes();
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name);
            t
        })
        .collect();
    buf.put_u64_le(rows.len() as u64);
    let bitmap_len = ncols.div_ceil(8);
    for row in rows {
        if row.len() != ncols {
            return Err(TdfError(format!(
                "row width {} does not match schema width {ncols}",
                row.len()
            )));
        }
        let mut bitmap = vec![0u8; bitmap_len];
        for (i, v) in row.iter().enumerate() {
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        buf.put_slice(&bitmap);
        for (v, tag) in row.iter().zip(tags.iter()) {
            if v.is_null() {
                continue;
            }
            encode_value(&mut buf, v, *tag)?;
        }
    }
    Ok(buf.freeze())
}

fn encode_value(buf: &mut BytesMut, v: &Datum, tag: Tag) -> Result<(), TdfError> {
    match (tag, v) {
        (Tag::Bool, Datum::Bool(b)) => buf.put_u8(*b as u8),
        (Tag::Int, Datum::Int(i)) => buf.put_i64_le(*i),
        (Tag::Double, Datum::Double(d)) => buf.put_f64_le(*d),
        (Tag::Decimal, Datum::Dec(d)) => {
            buf.put_i128_le(d.mantissa);
            buf.put_u8(d.scale);
        }
        (Tag::Date, Datum::Date(d)) => buf.put_i32_le(*d),
        (Tag::Timestamp, Datum::Timestamp(t)) => buf.put_i64_le(*t),
        (Tag::Interval, Datum::Interval(iv)) => {
            buf.put_i32_le(iv.months);
            buf.put_i32_le(iv.days);
        }
        (Tag::Varchar, v) => {
            let s = v.to_sql_string();
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        // Numeric widening: the engine may produce a narrower representation
        // than the declared column type.
        (Tag::Int, other) => {
            let i = other
                .to_i64()
                .ok_or_else(|| TdfError(format!("cannot encode {other:?} as INT")))?;
            buf.put_i64_le(i);
        }
        (Tag::Double, other) => {
            let d = other
                .to_f64()
                .ok_or_else(|| TdfError(format!("cannot encode {other:?} as DOUBLE")))?;
            buf.put_f64_le(d);
        }
        (Tag::Decimal, Datum::Int(i)) => {
            buf.put_i128_le(*i as i128);
            buf.put_u8(0);
        }
        (Tag::Decimal, Datum::Double(d)) => {
            let dec = Decimal::new((d * 10_000.0).round() as i128, 4);
            buf.put_i128_le(dec.mantissa);
            buf.put_u8(dec.scale);
        }
        (tag, v) => {
            return Err(TdfError(format!(
                "value {v:?} does not match column tag {tag:?}"
            )))
        }
    }
    Ok(())
}

/// Decode a TDF buffer back into a schema and rows.
pub fn decode(data: &[u8]) -> Result<(Schema, Vec<Row>), TdfError> {
    let mut buf = data;
    if buf.remaining() < 6 {
        return Err(TdfError("truncated TDF header".into()));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(TdfError("bad TDF magic".into()));
    }
    let ncols = buf.get_u16_le() as usize;
    let mut fields = Vec::with_capacity(ncols);
    let mut tags = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        if buf.remaining() < 3 {
            return Err(TdfError("truncated TDF column header".into()));
        }
        let tag = tag_from(buf.get_u8())?;
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(TdfError("truncated TDF column name".into()));
        }
        let name = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|_| TdfError("column name is not UTF-8".into()))?;
        buf.advance(name_len);
        let ty = match tag {
            Tag::Bool => SqlType::Boolean,
            Tag::Int => SqlType::Integer,
            Tag::Double => SqlType::Double,
            Tag::Decimal => SqlType::Decimal { precision: 38, scale: 2 },
            Tag::Date => SqlType::Date,
            Tag::Timestamp => SqlType::Timestamp,
            Tag::Varchar => SqlType::Varchar(None),
            Tag::Interval => SqlType::Interval,
        };
        fields.push(Field { qualifier: None, name, ty, nullable: true });
        tags.push(tag);
    }
    if buf.remaining() < 8 {
        return Err(TdfError("truncated TDF row count".into()));
    }
    let nrows = buf.get_u64_le() as usize;
    let bitmap_len = ncols.div_ceil(8);
    // A corrupted row count must not drive a huge preallocation; the Vec
    // grows on demand past this hint.
    let mut rows = Vec::with_capacity(nrows.min(64 * 1024));
    for _ in 0..nrows {
        if buf.remaining() < bitmap_len {
            return Err(TdfError("truncated TDF null bitmap".into()));
        }
        let bitmap = buf[..bitmap_len].to_vec();
        buf.advance(bitmap_len);
        let mut row = Vec::with_capacity(ncols);
        for (i, tag) in tags.iter().enumerate() {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                row.push(Datum::Null);
                continue;
            }
            row.push(decode_value(&mut buf, *tag)?);
        }
        rows.push(row);
    }
    Ok((Schema::new(fields), rows))
}

fn decode_value(buf: &mut &[u8], tag: Tag) -> Result<Datum, TdfError> {
    let need = |buf: &&[u8], n: usize| -> Result<(), TdfError> {
        if buf.remaining() < n {
            Err(TdfError("truncated TDF value".into()))
        } else {
            Ok(())
        }
    };
    Ok(match tag {
        Tag::Bool => {
            need(buf, 1)?;
            Datum::Bool(buf.get_u8() != 0)
        }
        Tag::Int => {
            need(buf, 8)?;
            Datum::Int(buf.get_i64_le())
        }
        Tag::Double => {
            need(buf, 8)?;
            Datum::Double(buf.get_f64_le())
        }
        Tag::Decimal => {
            need(buf, 17)?;
            let mantissa = buf.get_i128_le();
            let scale = buf.get_u8();
            Datum::Dec(Decimal::new(mantissa, scale))
        }
        Tag::Date => {
            need(buf, 4)?;
            Datum::Date(buf.get_i32_le())
        }
        Tag::Timestamp => {
            need(buf, 8)?;
            Datum::Timestamp(buf.get_i64_le())
        }
        Tag::Interval => {
            need(buf, 8)?;
            let months = buf.get_i32_le();
            let days = buf.get_i32_le();
            Datum::Interval(Interval { months, days })
        }
        Tag::Varchar => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let s = String::from_utf8(buf[..len].to_vec())
                .map_err(|_| TdfError("string value is not UTF-8".into()))?;
            buf.advance(len);
            Datum::str(s)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::datum::date_from_ymd;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(None, "I", SqlType::Integer, true),
            Field::new(None, "S", SqlType::Varchar(Some(20)), true),
            Field::new(None, "D", SqlType::Decimal { precision: 10, scale: 2 }, true),
            Field::new(None, "DT", SqlType::Date, true),
            Field::new(None, "B", SqlType::Boolean, true),
        ])
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![
                Datum::Int(42),
                Datum::str("hello"),
                Datum::Dec(Decimal::parse("12.34").unwrap()),
                Datum::Date(date_from_ymd(2014, 1, 1)),
                Datum::Bool(true),
            ],
            vec![
                Datum::Null,
                Datum::str("naïve ünïcode"),
                Datum::Null,
                Datum::Null,
                Datum::Bool(false),
            ],
        ]
    }

    #[test]
    fn round_trip() {
        let (schema, rows) = (schema(), sample_rows());
        let bytes = encode(&schema, &rows).unwrap();
        let (schema2, rows2) = decode(&bytes).unwrap();
        assert_eq!(schema2.len(), schema.len());
        assert_eq!(rows2, rows);
    }

    #[test]
    fn empty_batch() {
        let s = schema();
        let bytes = encode(&s, &[]).unwrap();
        let (s2, rows) = decode(&bytes).unwrap();
        assert_eq!(s2.len(), 5);
        assert!(rows.is_empty());
    }

    #[test]
    fn zero_column_result() {
        let s = Schema::empty();
        let bytes = encode(&s, &[vec![], vec![]]).unwrap();
        let (s2, rows) = decode(&bytes).unwrap();
        assert!(s2.is_empty());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn width_mismatch_is_error() {
        let s = schema();
        assert!(encode(&s, &[vec![Datum::Int(1)]]).is_err());
    }

    #[test]
    fn corrupt_input_is_error_not_panic() {
        let s = schema();
        let bytes = encode(&s, &sample_rows()).unwrap();
        for cut in [0usize, 3, 6, 10, bytes.len() - 1] {
            let _ = decode(&bytes[..cut]); // must not panic
        }
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn char_columns_round_trip_as_strings() {
        let s = Schema::new(vec![Field::new(None, "C", SqlType::Char(4), true)]);
        let rows = vec![vec![Datum::str("ab  ")]];
        let bytes = encode(&s, &rows).unwrap();
        let (_, rows2) = decode(&bytes).unwrap();
        assert_eq!(rows2[0][0], Datum::str("ab  "));
    }
}
