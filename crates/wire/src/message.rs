//! TDWP — the simulated Teradata-like wire protocol (WP-A).
//!
//! The paper's Protocol Handler (§4.1) must emulate "authentication
//! handshake …, network message types and binary formats, as well as
//! representation of different query elements, data types and query
//! responses", producing traffic "bit-identical to the original database".
//! The real Teradata message layout is proprietary; TDWP is a faithful
//! structural stand-in: framed binary messages, a challenge–response
//! logon, a typed binary row format, and an explicit end-of-request marker.
//!
//! Frame layout: `kind: u8`, `len: u32 LE`, `payload: len bytes`.

use bytes::{Buf, BufMut, BytesMut};
use hyperq_xtra::datum::{Datum, Decimal, Interval};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;
use hyperq_xtra::Row;
use std::io::{Read, Write};

/// Protocol-level error.
#[derive(Debug)]
pub enum WireError {
    Io(std::io::Error),
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol(m) => write!(f, "wire protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// TDWP messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // --- client → gateway -------------------------------------------------
    /// Start the logon handshake.
    LogonRequest { user: String },
    /// Response to the server's challenge: FNV-1a digest of
    /// `password ‖ salt`.
    LogonDigest { digest: u64 },
    /// Execute a request (one or more statements) in the client's dialect.
    SqlRequest { sql: String },
    /// Close the session.
    Logoff,
    /// Asynchronously abort the request currently executing on this
    /// session (the Teradata `ABORT`/async-abort shape). Sent out-of-band
    /// while a `SqlRequest` is in flight; the gateway answers the aborted
    /// request with error 3110 and the session stays usable.
    AbortRequest,
    /// Execute a request under a client-supplied response-time limit
    /// (milliseconds; 0 = unlimited). Expiry cancels the request with
    /// error 3156 without tearing down the session.
    SqlRequestTimed { timeout_ms: u32, sql: String },
    // --- gateway → client -------------------------------------------------
    /// Authentication challenge with a per-session salt.
    AuthChallenge { salt: u64 },
    /// Logon accepted.
    LogonOk { session_id: u64 },
    /// Result set header: column names and type codes.
    RecordSetHeader { columns: Vec<(String, u8)> },
    /// One data row in the client's native binary format.
    Record { row_bytes: Vec<u8> },
    /// Statement completed; `activity_count` = rows returned/affected.
    StatementOk { activity_count: u64 },
    /// Request failed.
    ErrorResponse { code: u16, message: String },
    /// All statements of the request are done.
    EndRequest,
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::LogonRequest { .. } => 0x01,
            Message::LogonDigest { .. } => 0x02,
            Message::SqlRequest { .. } => 0x03,
            Message::Logoff => 0x04,
            Message::AbortRequest => 0x05,
            Message::SqlRequestTimed { .. } => 0x06,
            Message::AuthChallenge { .. } => 0x81,
            Message::LogonOk { .. } => 0x82,
            Message::RecordSetHeader { .. } => 0x83,
            Message::Record { .. } => 0x84,
            Message::StatementOk { .. } => 0x85,
            Message::ErrorResponse { .. } => 0x86,
            Message::EndRequest => 0x87,
        }
    }

    /// Serialize into a frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = BytesMut::new();
        match self {
            Message::LogonRequest { user } => put_str(&mut payload, user),
            Message::LogonDigest { digest } => payload.put_u64_le(*digest),
            Message::SqlRequest { sql } => put_str(&mut payload, sql),
            Message::Logoff | Message::AbortRequest | Message::EndRequest => {}
            Message::SqlRequestTimed { timeout_ms, sql } => {
                payload.put_u32_le(*timeout_ms);
                put_str(&mut payload, sql);
            }
            Message::AuthChallenge { salt } => payload.put_u64_le(*salt),
            Message::LogonOk { session_id } => payload.put_u64_le(*session_id),
            Message::RecordSetHeader { columns } => {
                payload.put_u16_le(columns.len() as u16);
                for (name, code) in columns {
                    payload.put_u8(*code);
                    put_str(&mut payload, name);
                }
            }
            Message::Record { row_bytes } => payload.put_slice(row_bytes),
            Message::StatementOk { activity_count } => payload.put_u64_le(*activity_count),
            Message::ErrorResponse { code, message } => {
                payload.put_u16_le(*code);
                put_str(&mut payload, message);
            }
        }
        let mut frame = Vec::with_capacity(5 + payload.len());
        frame.push(self.kind());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Read one framed message from a stream.
    pub fn read_from(stream: &mut impl Read) -> Result<Message, WireError> {
        let mut head = [0u8; 5];
        stream.read_exact(&mut head)?;
        let kind = head[0];
        let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
        if len > 256 * 1024 * 1024 {
            return Err(WireError::Protocol(format!("oversized frame ({len} bytes)")));
        }
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        let mut buf = payload.as_slice();
        Ok(match kind {
            0x01 => Message::LogonRequest { user: get_str(&mut buf)? },
            0x02 => Message::LogonDigest { digest: get_u64(&mut buf)? },
            0x03 => Message::SqlRequest { sql: get_str(&mut buf)? },
            0x04 => Message::Logoff,
            0x05 => Message::AbortRequest,
            0x06 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Protocol("truncated timed request".into()));
                }
                let timeout_ms = buf.get_u32_le();
                Message::SqlRequestTimed { timeout_ms, sql: get_str(&mut buf)? }
            }
            0x81 => Message::AuthChallenge { salt: get_u64(&mut buf)? },
            0x82 => Message::LogonOk { session_id: get_u64(&mut buf)? },
            0x83 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Protocol("truncated header".into()));
                }
                let n = buf.get_u16_le() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < 1 {
                        return Err(WireError::Protocol("truncated column".into()));
                    }
                    let code = buf.get_u8();
                    columns.push((get_str(&mut buf)?, code));
                }
                Message::RecordSetHeader { columns }
            }
            0x84 => Message::Record { row_bytes: buf.to_vec() },
            0x85 => Message::StatementOk { activity_count: get_u64(&mut buf)? },
            0x86 => {
                if buf.remaining() < 2 {
                    return Err(WireError::Protocol("truncated error".into()));
                }
                let code = buf.get_u16_le();
                Message::ErrorResponse { code, message: get_str(&mut buf)? }
            }
            0x87 => Message::EndRequest,
            other => return Err(WireError::Protocol(format!("unknown message kind {other:#x}"))),
        })
    }

    /// Write this message to a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), WireError> {
        stream.write_all(&self.to_frame())?;
        Ok(())
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Protocol("truncated string".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(WireError::Protocol("truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| WireError::Protocol("string is not UTF-8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Protocol("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

// ---------------------------------------------------------------------------
// Client-native binary row format (the "WP-A" row representation that must
// be produced bit-identically regardless of which backend executed the
// query).
// ---------------------------------------------------------------------------

/// Type codes used in [`Message::RecordSetHeader`].
pub fn type_code(ty: &SqlType) -> u8 {
    match ty {
        SqlType::Boolean => 1,
        SqlType::Integer => 2,
        SqlType::Double => 3,
        SqlType::Decimal { .. } => 4,
        SqlType::Date => 5,
        SqlType::Timestamp => 6,
        SqlType::Interval => 8,
        _ => 7, // character-ish
    }
}

/// Encode one row into the client's native binary format: per field a
/// presence byte (0 = value follows, 1 = NULL) then the value. Dates use
/// the Teradata integer encoding — the client is a Teradata application
/// and expects `(year-1900)*10000 + month*100 + day`.
pub fn encode_client_row(row: &Row, schema: &Schema) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(row.len() * 9 + 2);
    buf.put_u16_le(row.len() as u16);
    for (v, field) in row.iter().zip(schema.fields.iter()) {
        if v.is_null() {
            buf.put_u8(1);
            continue;
        }
        buf.put_u8(0);
        match (v, &field.ty) {
            (Datum::Bool(b), _) => buf.put_u8(*b as u8),
            (Datum::Int(i), _) => buf.put_i64_le(*i),
            (Datum::Double(d), _) => buf.put_f64_le(*d),
            (Datum::Dec(d), _) => {
                buf.put_i128_le(d.mantissa);
                buf.put_u8(d.scale);
            }
            (Datum::Date(days), _) => {
                buf.put_i32_le(hyperq_xtra::datum::teradata_int_from_date(*days) as i32);
            }
            (Datum::Timestamp(t), _) => buf.put_i64_le(*t),
            (Datum::Interval(iv), _) => {
                buf.put_i32_le(iv.months);
                buf.put_i32_le(iv.days);
            }
            (v, _) => {
                let s = v.to_sql_string();
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    buf.to_vec()
}

/// Decode a client-format row given the header type codes.
pub fn decode_client_row(bytes: &[u8], columns: &[(String, u8)]) -> Result<Row, WireError> {
    let mut buf = bytes;
    if buf.remaining() < 2 {
        return Err(WireError::Protocol("truncated row".into()));
    }
    let n = buf.get_u16_le() as usize;
    if n != columns.len() {
        return Err(WireError::Protocol(format!(
            "row has {n} fields, header declared {}",
            columns.len()
        )));
    }
    let mut row = Vec::with_capacity(n);
    for (_, code) in columns {
        if buf.remaining() < 1 {
            return Err(WireError::Protocol("truncated presence byte".into()));
        }
        if buf.get_u8() == 1 {
            row.push(Datum::Null);
            continue;
        }
        let need = |buf: &&[u8], n: usize| -> Result<(), WireError> {
            if buf.remaining() < n {
                Err(WireError::Protocol("truncated field".into()))
            } else {
                Ok(())
            }
        };
        row.push(match code {
            1 => {
                need(&buf, 1)?;
                Datum::Bool(buf.get_u8() != 0)
            }
            2 => {
                need(&buf, 8)?;
                Datum::Int(buf.get_i64_le())
            }
            3 => {
                need(&buf, 8)?;
                Datum::Double(buf.get_f64_le())
            }
            4 => {
                need(&buf, 17)?;
                let mantissa = buf.get_i128_le();
                let scale = buf.get_u8();
                Datum::Dec(Decimal::new(mantissa, scale))
            }
            5 => {
                need(&buf, 4)?;
                let encoded = buf.get_i32_le() as i64;
                match hyperq_xtra::datum::date_from_teradata_int(encoded) {
                    Some(days) => Datum::Date(days),
                    None => {
                        return Err(WireError::Protocol(format!(
                            "invalid Teradata date encoding {encoded}"
                        )))
                    }
                }
            }
            6 => {
                need(&buf, 8)?;
                Datum::Timestamp(buf.get_i64_le())
            }
            8 => {
                need(&buf, 8)?;
                let months = buf.get_i32_le();
                let days = buf.get_i32_le();
                Datum::Interval(Interval { months, days })
            }
            _ => {
                need(&buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(&buf, len)?;
                let s = String::from_utf8(buf[..len].to_vec())
                    .map_err(|_| WireError::Protocol("row string not UTF-8".into()))?;
                buf.advance(len);
                Datum::str(s)
            }
        });
    }
    Ok(row)
}

/// Header columns for a schema.
pub fn header_columns(schema: &Schema) -> Vec<(String, u8)> {
    schema
        .fields
        .iter()
        .map(|f| (f.name.clone(), type_code(&f.ty)))
        .collect()
}

/// Reconstruct field metadata from header columns (client side).
pub fn schema_from_header(columns: &[(String, u8)]) -> Schema {
    Schema::new(
        columns
            .iter()
            .map(|(name, code)| {
                let ty = match code {
                    1 => SqlType::Boolean,
                    2 => SqlType::Integer,
                    3 => SqlType::Double,
                    4 => SqlType::Decimal { precision: 38, scale: 2 },
                    5 => SqlType::Date,
                    6 => SqlType::Timestamp,
                    8 => SqlType::Interval,
                    _ => SqlType::Varchar(None),
                };
                Field { qualifier: None, name: name.clone(), ty, nullable: true }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::datum::date_from_ymd;

    #[test]
    fn message_frame_round_trip() {
        let messages = vec![
            Message::LogonRequest { user: "APPUSER".into() },
            Message::LogonDigest { digest: 0xDEADBEEF },
            Message::SqlRequest { sql: "SEL * FROM T".into() },
            Message::Logoff,
            Message::AbortRequest,
            Message::SqlRequestTimed { timeout_ms: 1500, sql: "SEL * FROM T".into() },
            Message::AuthChallenge { salt: 42 },
            Message::LogonOk { session_id: 7 },
            Message::RecordSetHeader {
                columns: vec![("A".into(), 2), ("B".into(), 7)],
            },
            Message::Record { row_bytes: vec![1, 2, 3] },
            Message::StatementOk { activity_count: 10 },
            Message::ErrorResponse { code: 3807, message: "table not found".into() },
            Message::EndRequest,
        ];
        for m in messages {
            let frame = m.to_frame();
            let mut cursor = std::io::Cursor::new(frame);
            let back = Message::read_from(&mut cursor).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn client_row_round_trip_with_teradata_dates() {
        let schema = Schema::new(vec![
            Field::new(None, "I", SqlType::Integer, true),
            Field::new(None, "D", SqlType::Date, true),
            Field::new(None, "S", SqlType::Varchar(None), true),
        ]);
        let row = vec![
            Datum::Int(5),
            Datum::Date(date_from_ymd(2014, 1, 1)),
            Datum::str("x"),
        ];
        let bytes = encode_client_row(&row, &schema);
        // The date must be on the wire in Teradata integer encoding:
        // presence(0) + i64 + presence(0) + 1140101 as i32 …
        let date_bytes = &bytes[2 + 1 + 8 + 1..2 + 1 + 8 + 1 + 4];
        assert_eq!(i32::from_le_bytes(date_bytes.try_into().unwrap()), 1_140_101);
        let cols = header_columns(&schema);
        let back = decode_client_row(&bytes, &cols).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn null_fields_round_trip() {
        let schema = Schema::new(vec![
            Field::new(None, "A", SqlType::Integer, true),
            Field::new(None, "B", SqlType::Varchar(None), true),
        ]);
        let row = vec![Datum::Null, Datum::Null];
        let bytes = encode_client_row(&row, &schema);
        let back = decode_client_row(&bytes, &header_columns(&schema)).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn encoding_is_deterministic() {
        // "Bit-identical" responses: same row, same bytes.
        let schema = Schema::new(vec![Field::new(None, "A", SqlType::Integer, true)]);
        let row = vec![Datum::Int(99)];
        assert_eq!(encode_client_row(&row, &schema), encode_client_row(&row, &schema));
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let frame = Message::SqlRequest { sql: "SEL 1".into() }.to_frame();
        for cut in [0, 3, 5, frame.len() - 1] {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(Message::read_from(&mut cursor).is_err());
        }
    }
}
