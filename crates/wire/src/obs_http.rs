//! The observability endpoint: a read-only HTTP/1.1 listener on its own
//! port, separate from the TDWP front door, so operators can watch a live
//! gateway with nothing but `curl`.
//!
//! Routes (GET only):
//!
//! * `/healthz` — liveness probe, `200 ok`.
//! * `/metrics` — the registry in Prometheus text exposition format.
//! * `/metrics.json` — the same registry as JSON.
//! * `/provenance?n=N` — the most recent `N` per-statement provenance
//!   records (default 100) as JSON.
//! * `/report` — workload intelligence folded from the provenance ring
//!   (stage shares, overhead-ratio bands, feature usage, top queries,
//!   cache efficiency) as JSON; `?format=text` renders the aligned
//!   plain-text report instead.
//! * `/slowlog` — captured slow statements (literal-redacted SQL unless
//!   raw capture was opted into) as JSON.
//! * `/queries` — the governor's in-flight query table (id, session,
//!   fingerprint, stage, elapsed, charged memory) as JSON, when a
//!   [`GovernorRegistry`] is attached. `?cancel=<id>` cancels that query —
//!   but only when the gateway opted in via
//!   `GovernorConfig::allow_http_cancel`; otherwise it answers 403.
//! * `/replicas` — per-replica health (healthy / fenced / needs-resync),
//!   pinned-session and repair-journal state as JSON, when the gateway is
//!   replicated; 404 otherwise.
//!
//! The server is std-only (no HTTP framework): it parses just the request
//! line, answers with `Content-Length` + `Connection: close`, and closes.
//! Every route except the gated `?cancel=` serves a read-only snapshot.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hyperq_core::replicate::{ReplicaSnapshot, ReplicatedBackend};
use hyperq_governor::{CancelReason, GovernorRegistry, QuerySnapshot};
use hyperq_obs::{provenance, slowlog, ObsContext, WorkloadReport};

/// Default cap on `/provenance` records per response.
const DEFAULT_PROVENANCE_LIMIT: usize = 100;

/// How long a connected client may dribble its request before being
/// dropped; keeps a stalled scraper from pinning the worker.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Handle to an observability listener serving on a background thread.
/// Dropping the handle stops the listener.
pub struct ObsHttpHandle {
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObsHttpHandle {
    /// Stop accepting and join the acceptor thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsHttpHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve the
/// observability routes from `obs` in the background. `/queries` answers
/// 404 — no governor registry is attached on this path.
pub fn spawn(addr: &str, obs: Arc<ObsContext>) -> std::io::Result<ObsHttpHandle> {
    spawn_with_governor(addr, obs, None)
}

/// [`spawn`] with the gateway's governor registry attached, enabling the
/// `/queries` in-flight table (and, when the registry's config allows it,
/// `?cancel=<id>`).
pub fn spawn_with_governor(
    addr: &str,
    obs: Arc<ObsContext>,
    governor: Option<Arc<GovernorRegistry>>,
) -> std::io::Result<ObsHttpHandle> {
    spawn_with_state(addr, obs, governor, None)
}

/// [`spawn_with_governor`] with the gateway's replica set also attached,
/// enabling the `/replicas` health table.
pub fn spawn_with_state(
    addr: &str,
    obs: Arc<ObsContext>,
    governor: Option<Arc<GovernorRegistry>>,
    replication: Option<Arc<ReplicatedBackend>>,
) -> std::io::Result<ObsHttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let requests = obs.metrics.counter("hyperq_obs_http_requests_total", &[]);
    let thread = std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    requests.inc();
                    // Requests are tiny and responses are snapshots;
                    // serving inline keeps the server single-threaded and
                    // the accept loop responsive enough for scrapers.
                    let _ = serve_one(stream, &obs, governor.as_deref(), replication.as_deref());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    });
    Ok(ObsHttpHandle { addr, shutdown, thread: Some(thread) })
}

fn serve_one(
    stream: TcpStream,
    obs: &ObsContext,
    governor: Option<&GovernorRegistry>,
    replication: Option<&ReplicatedBackend>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so the response is not written into a half-read
    // request (some clients treat that as a connection error).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return respond(stream, "400 Bad Request", "text/plain", "bad request\n");
    };
    if method != "GET" {
        return respond(
            stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        "/metrics" => respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &obs.metrics.render_prometheus(),
        ),
        "/metrics.json" => {
            respond(stream, "200 OK", "application/json", &obs.metrics.render_json())
        }
        "/provenance" => {
            let n = query_param(query, "n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_PROVENANCE_LIMIT);
            let body = provenance::render_json(&obs.provenance.recent(n));
            respond(stream, "200 OK", "application/json", &body)
        }
        "/report" => {
            let report = WorkloadReport::from_records(&obs.provenance.snapshot());
            match query_param(query, "format") {
                Some("text") => respond(stream, "200 OK", "text/plain", &report.render_text()),
                _ => respond(stream, "200 OK", "application/json", &report.render_json()),
            }
        }
        "/slowlog" => {
            let body = slowlog::render_json(&obs.slowlog.entries());
            respond(stream, "200 OK", "application/json", &body)
        }
        "/queries" => match governor {
            None => respond(
                stream,
                "404 Not Found",
                "text/plain",
                "no query governor attached to this endpoint\n",
            ),
            Some(reg) => {
                if let Some(raw) = query_param(query, "cancel") {
                    if !reg.config().allow_http_cancel {
                        return respond(
                            stream,
                            "403 Forbidden",
                            "text/plain",
                            "query cancellation over HTTP is disabled \
                             (GovernorConfig::allow_http_cancel)\n",
                        );
                    }
                    let Ok(id) = raw.parse::<u64>() else {
                        return respond(
                            stream,
                            "400 Bad Request",
                            "text/plain",
                            "cancel takes a numeric query id\n",
                        );
                    };
                    let hit = reg.cancel(
                        id,
                        CancelReason::ClientAbort,
                        "cancelled via observability endpoint",
                    );
                    let body = format!("{{\"query\":{id},\"cancelled\":{hit}}}\n");
                    return respond(stream, "200 OK", "application/json", &body);
                }
                respond(stream, "200 OK", "application/json", &render_queries_json(&reg.snapshot()))
            }
        },
        "/replicas" => match replication {
            None => respond(
                stream,
                "404 Not Found",
                "text/plain",
                "no replica set attached to this endpoint\n",
            ),
            Some(rep) => {
                respond(stream, "200 OK", "application/json", &render_replicas_json(&rep.snapshot()))
            }
        },
        _ => respond(stream, "404 Not Found", "text/plain", "unknown route\n"),
    }
}

/// The in-flight query table as JSON, one object per statement, sorted by
/// query id (the registry's snapshot order).
fn render_queries_json(queries: &[QuerySnapshot]) -> String {
    let mut out = String::from("[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"session\":{},\"fingerprint\":\"{:016x}\",\"stage\":\"{}\",\
             \"elapsed_ms\":{:.3},\"mem_bytes\":{},\"cancelled\":{}}}",
            q.id,
            q.session,
            q.fingerprint,
            q.stage,
            q.elapsed.as_secs_f64() * 1e3,
            q.mem_bytes,
            match q.cancelled {
                Some(reason) => format!("\"{reason}\""),
                None => "null".to_string(),
            },
        ));
    }
    out.push_str("]\n");
    out
}

/// The replica health table as JSON, one object per replica in set order
/// (`r0` is the gateway's primary backend).
fn render_replicas_json(replicas: &[ReplicaSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, r) in replicas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"health\":\"{}\",\"pinned_sessions\":{},\
             \"journal_depth\":{},\"fences\":{},\"heals\":{}}}",
            r.name,
            r.health.as_str(),
            r.pinned_sessions,
            r.journal_depth,
            r.fences,
            r.heals,
        ));
    }
    out.push_str("]\n");
    out
}

fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routes_serve_and_close() {
        let obs = ObsContext::new();
        obs.metrics.counter("demo_total", &[]).inc();
        obs.provenance.begin();
        obs.provenance.finish(hyperq_obs::provenance::FinishedStatement {
            trace: hyperq_obs::TraceId(1),
            fingerprint: 7,
            kind: "select",
            target: "simwh",
            sql: "SELECT ?",
            total: Duration::from_micros(100),
            features: vec!["T1"],
            analyze_mode: "strict",
            rows: 1,
            error: None,
        });
        let handle = spawn("127.0.0.1:0", Arc::clone(&obs)).unwrap();
        let (head, body) = get(handle.addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (_, metrics) = get(handle.addr, "/metrics");
        assert!(metrics.contains("demo_total 1"), "{metrics}");
        let (_, json) = get(handle.addr, "/metrics.json");
        hyperq_obs::json::validate(&json).unwrap();
        let (_, prov) = get(handle.addr, "/provenance?n=10");
        hyperq_obs::json::validate(&prov).unwrap();
        assert!(prov.contains("\"kind\":\"select\""), "{prov}");
        let (_, report) = get(handle.addr, "/report");
        hyperq_obs::json::validate(&report).unwrap();
        let (_, text) = get(handle.addr, "/report?format=text");
        assert!(text.contains("workload report"), "{text}");
        let (_, slow) = get(handle.addr, "/slowlog");
        hyperq_obs::json::validate(&slow).unwrap();
        let (head, _) = get(handle.addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let mut stream = TcpStream::connect(handle.addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        handle.shutdown();
    }
}
