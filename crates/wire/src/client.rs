//! A `bteq`-style client: the stand-in for the unchanged Teradata
//! application of the paper's experiments ("we used Teradata's bteq client
//! to submit queries to Hyper-Q", §7.2).
//!
//! The client speaks only WP-A (TDWP): it has no idea whether a real
//! Teradata or Hyper-Q answers — which is the entire point of ADV.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

use hyperq_xtra::schema::Schema;
use hyperq_xtra::Row;

use crate::auth::digest;
use crate::message::{decode_client_row, schema_from_header, Message, WireError};

/// One result set (or DML acknowledgement) of a request.
#[derive(Debug, Clone)]
pub struct ClientResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// Rows returned or affected.
    pub activity_count: u64,
}

/// A connected TDWP session.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    pub session_id: u64,
}

impl Client {
    /// Connect and run the logon handshake.
    pub fn connect(
        addr: impl ToSocketAddrs,
        user: &str,
        password: &str,
    ) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        let mut reader = reader;
        use std::io::Write as _;

        Message::LogonRequest { user: user.to_string() }.write_to(&mut writer)?;
        writer.flush()?;
        let salt = match Message::read_from(&mut reader)? {
            Message::AuthChallenge { salt } => salt,
            Message::ErrorResponse { code, message } => {
                return Err(WireError::Protocol(format!(
                    "logon rejected: [{code}] {message}"
                )))
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "expected AuthChallenge, got {other:?}"
                )))
            }
        };
        Message::LogonDigest { digest: digest(password, salt) }.write_to(&mut writer)?;
        writer.flush()?;
        let session_id = match Message::read_from(&mut reader)? {
            Message::LogonOk { session_id } => session_id,
            Message::ErrorResponse { code, message } => {
                return Err(WireError::Protocol(format!(
                    "logon failed: [{code}] {message}"
                )))
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "expected LogonOk, got {other:?}"
                )))
            }
        };
        Ok(Client { reader, writer, session_id })
    }

    /// Submit a request (one or more statements) and collect all result
    /// sets. Statement errors surface as `Err`.
    pub fn run(&mut self, sql: &str) -> Result<Vec<ClientResultSet>, WireError> {
        self.request(Message::SqlRequest { sql: sql.to_string() })
    }

    /// Submit a request under a client-side response-time limit: the
    /// gateway cancels the statement when the limit expires and answers
    /// with wire code 3156, leaving the session usable.
    pub fn run_timed(
        &mut self,
        sql: &str,
        timeout: std::time::Duration,
    ) -> Result<Vec<ClientResultSet>, WireError> {
        let timeout_ms = timeout.as_millis().min(u32::MAX as u128) as u32;
        self.request(Message::SqlRequestTimed { timeout_ms, sql: sql.to_string() })
    }

    /// An out-of-band abort handle for this session: call
    /// [`Aborter::abort`] from another thread while `run` blocks to cancel
    /// the statement in flight (the gateway answers it with wire code
    /// 3110).
    pub fn aborter(&self) -> Result<Aborter, WireError> {
        Ok(Aborter { stream: self.reader.try_clone()? })
    }

    fn request(&mut self, message: Message) -> Result<Vec<ClientResultSet>, WireError> {
        use std::io::Write as _;
        message.write_to(&mut self.writer)?;
        self.writer.flush()?;
        // (header columns, decoded schema, accumulated rows) of the result
        // set currently streaming in.
        type InFlight = (Vec<(String, u8)>, Schema, Vec<Row>);
        let mut results = Vec::new();
        let mut current: Option<InFlight> = None;
        let mut error: Option<String> = None;
        loop {
            match Message::read_from(&mut self.reader)? {
                Message::RecordSetHeader { columns } => {
                    let schema = schema_from_header(&columns);
                    current = Some((columns, schema, Vec::new()));
                }
                Message::Record { row_bytes } => match &mut current {
                    Some((columns, _, rows)) => {
                        rows.push(decode_client_row(&row_bytes, columns)?);
                    }
                    None => {
                        return Err(WireError::Protocol(
                            "Record before RecordSetHeader".into(),
                        ))
                    }
                },
                Message::StatementOk { activity_count } => {
                    let (schema, rows) = match current.take() {
                        Some((_, schema, rows)) => (schema, rows),
                        None => (Schema::empty(), Vec::new()),
                    };
                    results.push(ClientResultSet { schema, rows, activity_count });
                }
                Message::ErrorResponse { code, message } => {
                    // Keep the wire code visible: tests (and operators)
                    // distinguish shed (3135/3136), txn abort (2631) and
                    // plain statement failure (3807) by it.
                    error = Some(format!("[{code}] {message}"));
                }
                Message::EndRequest => break,
                other => {
                    return Err(WireError::Protocol(format!(
                        "unexpected message {other:?}"
                    )))
                }
            }
        }
        match error {
            Some(m) => Err(WireError::Protocol(m)),
            None => Ok(results),
        }
    }

    /// Close the session.
    pub fn logoff(mut self) -> Result<(), WireError> {
        use std::io::Write as _;
        Message::Logoff.write_to(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// Out-of-band cancel handle for a [`Client`] session (the `ABORT` key of
/// a `bteq` user): a clone of the session socket that can inject an
/// [`Message::AbortRequest`] while the owning thread is blocked in
/// [`Client::run`].
pub struct Aborter {
    stream: TcpStream,
}

impl Aborter {
    /// Ask the gateway to cancel the request currently in flight on this
    /// session. The blocked `run` call returns the cancel error (wire code
    /// 3110); aborting an idle session is an acknowledged no-op.
    pub fn abort(&mut self) -> Result<(), WireError> {
        Message::AbortRequest.write_to(&mut self.stream)?;
        Ok(())
    }
}
