//! The Result Converter (paper §4.6).
//!
//! "TDF packets are unwrapped by Result Converter to extract result rows
//! and convert them into the binary format of the original database. This
//! conversion operation happens in parallel by starting a number of
//! processes where each process handles the conversion of a subset of the
//! result rows. … When the result size is very large, the buffered results
//! may not fit in memory. In this case, the Result Converter spills the
//! buffered results into disk and maintains the set of generated spill
//! files until result consumption is done."

use std::fs::File;
use std::io::{Read, Write};
use std::path::PathBuf;

use hyperq_xtra::schema::Schema;
use hyperq_xtra::Row;

use crate::message::{encode_client_row, header_columns};
use crate::tdf;

/// Converter tuning.
#[derive(Debug, Clone)]
pub struct ConverterConfig {
    /// Rows per TDF batch fetched from the ODBC-server abstraction.
    pub batch_size: usize,
    /// Worker threads for parallel conversion (paper: "a number of
    /// processes where each process handles … a subset of the result
    /// rows"). 1 = sequential (the ablation baseline).
    pub parallelism: usize,
    /// Converted bytes held in memory before spilling to disk.
    pub memory_budget: usize,
    /// Directory for spill files.
    pub spill_dir: PathBuf,
}

impl Default for ConverterConfig {
    fn default() -> Self {
        ConverterConfig {
            batch_size: 1024,
            parallelism: 4,
            memory_budget: 64 * 1024 * 1024,
            spill_dir: std::env::temp_dir(),
        }
    }
}

/// RAII handle to one spill file: the file is deleted when the handle
/// drops — after streaming, on partial consumption, on an error mid-spill,
/// and when a `ConvertedResult` is abandoned without being read. No path
/// escapes this type, so no code path can forget the cleanup.
pub struct SpillFile {
    path: PathBuf,
}

impl SpillFile {
    /// Create the file and its guard together; if any later step fails, the
    /// guard's drop removes whatever was written.
    fn create(path: PathBuf) -> Result<(File, SpillFile), String> {
        let file = File::create(&path).map_err(|e| format!("spill create failed: {e}"))?;
        Ok((file, SpillFile { path }))
    }

    fn open(&self) -> std::io::Result<File> {
        File::open(&self.path)
    }

    /// Where the rows were spilled (diagnostics).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One converted chunk: client-format row frames, in memory or spilled.
pub enum Chunk {
    Mem(Vec<Vec<u8>>),
    /// Spill file guard + number of rows it holds.
    Spilled(SpillFile, usize),
}

/// The converted result, ready for the Protocol Handler to package into
/// network messages.
pub struct ConvertedResult {
    pub header: Vec<(String, u8)>,
    pub total_rows: u64,
    /// Converted client-format payload bytes (excluding frame headers).
    pub total_bytes: u64,
    chunks: Vec<Chunk>,
    pub spilled_chunks: usize,
}

impl ConvertedResult {
    /// Stream every converted row frame, reading spill files back on
    /// demand. Spill files are deleted by their [`SpillFile`] guards — as
    /// each chunk finishes streaming, and for the rest when `self` drops on
    /// an early error.
    pub fn for_each_row(
        mut self,
        mut f: impl FnMut(&[u8]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        for chunk in self.chunks.drain(..) {
            match chunk {
                Chunk::Mem(rows) => {
                    for r in rows {
                        f(&r)?;
                    }
                }
                Chunk::Spilled(spill, _) => {
                    let mut file = spill.open()?;
                    let mut data = Vec::new();
                    file.read_to_end(&mut data)?;
                    let mut cursor = &data[..];
                    while !cursor.is_empty() {
                        let len = u32::from_le_bytes([
                            cursor[0], cursor[1], cursor[2], cursor[3],
                        ]) as usize;
                        f(&cursor[4..4 + len])?;
                        cursor = &cursor[4 + len..];
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convert a backend result into client row frames: package rows into TDF
/// batches (the ODBC-server hand-off), then unwrap and convert each batch —
/// in parallel when configured — into the client's native binary format,
/// spilling past the memory budget.
pub fn convert(
    schema: &Schema,
    rows: &[Row],
    config: &ConverterConfig,
) -> Result<ConvertedResult, String> {
    // Conversion runs under the statement's governor when one is installed
    // on the session thread: workers observe its cancel token between
    // batches (the token must be passed explicitly — worker threads do not
    // inherit the thread-local), and in-memory buffering charges its
    // resource ledger so a huge result spills early under memory pressure
    // instead of blowing past the query's budget.
    let gov = hyperq_governor::current();
    if let Some(g) = &gov {
        g.checkpoint().map_err(|c| c.to_string())?;
    }
    let header = header_columns(schema);
    // Step 1: package into TDF batches (paper §4.5: results are retrieved
    // "in one or more batches depending on the result size").
    let batches: Vec<bytes::Bytes> = rows
        .chunks(config.batch_size.max(1))
        .map(|chunk| tdf::encode(schema, chunk).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // Step 2: unwrap TDF and convert to the client format, in parallel.
    let converted: Vec<Vec<Vec<u8>>> = if config.parallelism <= 1 || batches.len() <= 1 {
        batches
            .iter()
            .map(|b| {
                if let Some(g) = &gov {
                    g.checkpoint().map_err(|c| c.to_string())?;
                }
                convert_batch(b)
            })
            .collect::<Result<_, _>>()?
    } else {
        let workers = config.parallelism.min(batches.len());
        let mut results: Vec<Option<Result<Vec<Vec<u8>>, String>>> =
            (0..batches.len()).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results_mutex = parking_lot::Mutex::new(&mut results);
        let gov_ref = gov.as_deref();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= batches.len() {
                            break;
                        }
                        // A cancelled statement stops dispatching further
                        // batches; already-finished ones are discarded by
                        // the error below.
                        let r = match gov_ref.map(hyperq_governor::QueryGovernor::checkpoint) {
                            Some(Err(c)) => Err(c.to_string()),
                            _ => convert_batch(&batches[i]),
                        };
                        results_mutex.lock()[i] = Some(r);
                    });
                }
            });
        }))
        .map_err(|_| "converter worker panicked".to_string())?;
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                // A worker that exited without recording a result (e.g. its
                // thread died) is a converter error, not a session panic.
                r.unwrap_or_else(|| Err(format!("converter produced no result for batch {i}")))
            })
            .collect::<Result<_, _>>()?
    };

    // Step 3: buffer within the memory budget; spill beyond it. Under a
    // governor the in-memory bytes are also charged against the query's
    // ledger (and the gateway-global pool); a chunk the ledger refuses is
    // spilled to disk instead of killing the query — spilling *earlier*
    // under pressure is the graceful degradation, the budget kill is
    // reserved for allocations that cannot degrade (engine state).
    let mut chunks = Vec::with_capacity(converted.len());
    let mut in_memory = 0usize;
    let mut spilled_chunks = 0usize;
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for (i, chunk_rows) in converted.into_iter().enumerate() {
        if let Some(g) = &gov {
            g.checkpoint().map_err(|c| c.to_string())?;
        }
        total_rows += chunk_rows.len() as u64;
        total_bytes += chunk_rows.iter().map(|r| r.len() as u64).sum::<u64>();
        let bytes: usize = chunk_rows.iter().map(|r| r.len() + 4).sum();
        let fits_budget = in_memory + bytes <= config.memory_budget;
        let charged = fits_budget
            && match &gov {
                // `ResourceLedger::charge` (not `QueryGovernor::charge`):
                // a denial here must NOT cancel the query, just spill.
                Some(g) => g.ledger().charge(bytes as u64).is_ok(),
                None => true,
            };
        if charged {
            in_memory += bytes;
            chunks.push(Chunk::Mem(chunk_rows));
        } else {
            let path = config.spill_dir.join(format!(
                "hyperq_spill_{}_{}_{i}.tdf",
                std::process::id(),
                crate::auth::fresh_salt()
            ));
            // The guard is created with the file: if a write fails here (or
            // a later chunk fails to spill), dropping `chunks`/`guard`
            // removes every file already on disk.
            let (mut file, guard) = SpillFile::create(path)?;
            let n = chunk_rows.len();
            for r in &chunk_rows {
                file.write_all(&(r.len() as u32).to_le_bytes())
                    .and_then(|_| file.write_all(r))
                    .map_err(|e| format!("spill write failed: {e}"))?;
            }
            spilled_chunks += 1;
            chunks.push(Chunk::Spilled(guard, n));
        }
    }
    Ok(ConvertedResult { header, total_rows, total_bytes, chunks, spilled_chunks })
}

/// [`convert`] wrapped in observability: emits a `convert` span (attached to
/// `trace` when the statement's pipeline trace is known) and records the
/// duration in the shared per-stage histogram family.
pub fn convert_traced(
    schema: &Schema,
    rows: &[Row],
    config: &ConverterConfig,
    obs: &hyperq_obs::ObsContext,
    trace: Option<hyperq_obs::TraceId>,
) -> Result<ConvertedResult, String> {
    let span = match trace {
        Some(t) => obs.traces.enter_in(t, "convert"),
        None => obs.traces.enter("convert"),
    };
    let result = convert(schema, rows, config);
    let d = span.finish();
    obs.metrics
        .histogram(hyperq_core::STAGE_DURATION_METRIC, &[("stage", "convert")])
        .record(d);
    // The statement's provenance record was sealed when the pipeline
    // returned; conversion happens afterwards, so its stats are attached to
    // the existing record by trace id.
    if let (Ok(res), Some(t)) = (&result, trace) {
        obs.provenance.attach_convert(t, res.total_rows, res.total_bytes, d);
    }
    result
}

/// Unwrap one TDF batch and encode its rows in the client format.
fn convert_batch(batch: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let (schema, rows) = tdf::decode(batch).map_err(|e| e.to_string())?;
    Ok(rows
        .iter()
        .map(|r| encode_client_row(r, &schema))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::datum::Datum;
    use hyperq_xtra::schema::Field;
    use hyperq_xtra::types::SqlType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(None, "K", SqlType::Integer, true),
            Field::new(None, "V", SqlType::Varchar(None), true),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Datum::Int(i as i64), Datum::str(format!("value-{i}"))])
            .collect()
    }

    fn collect(result: ConvertedResult) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        result
            .for_each_row(|r| {
                frames.push(r.to_vec());
                Ok(())
            })
            .unwrap();
        frames
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let schema = schema();
        let data = rows(5000);
        let seq = convert(
            &schema,
            &data,
            &ConverterConfig { parallelism: 1, batch_size: 256, ..Default::default() },
        )
        .unwrap();
        let par = convert(
            &schema,
            &data,
            &ConverterConfig { parallelism: 8, batch_size: 256, ..Default::default() },
        )
        .unwrap();
        assert_eq!(seq.total_rows, 5000);
        assert_eq!(par.total_rows, 5000);
        assert_eq!(collect(seq), collect(par), "order and bytes must be identical");
    }

    #[test]
    fn spills_past_memory_budget_and_replays_identically() {
        let schema = schema();
        let data = rows(2000);
        let unspilled = convert(
            &schema,
            &data,
            &ConverterConfig { batch_size: 100, ..Default::default() },
        )
        .unwrap();
        let spilled = convert(
            &schema,
            &data,
            &ConverterConfig {
                batch_size: 100,
                memory_budget: 4096, // force spilling after a couple of chunks
                ..Default::default()
            },
        )
        .unwrap();
        assert!(spilled.spilled_chunks > 0, "budget must force spilling");
        assert_eq!(collect(unspilled), collect(spilled));
    }

    #[test]
    fn spill_files_removed_after_consumption() {
        let dir = std::env::temp_dir();
        let before: usize = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .is_ok_and(|e| e.file_name().to_string_lossy().starts_with("hyperq_spill_"))
            })
            .count();
        let result = convert(
            &schema(),
            &rows(1000),
            &ConverterConfig {
                batch_size: 50,
                memory_budget: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.spilled_chunks > 0);
        let _ = collect(result);
        let after: usize = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .is_ok_and(|e| e.file_name().to_string_lossy().starts_with("hyperq_spill_"))
            })
            .count();
        assert!(after <= before, "spill files must be cleaned up");
    }

    #[test]
    fn empty_result() {
        let r = convert(&schema(), &[], &ConverterConfig::default()).unwrap();
        assert_eq!(r.total_rows, 0);
        assert!(collect(r).is_empty());
    }

    /// A fresh directory only this test writes to, so emptiness checks are
    /// exact instead of counting against a shared temp dir.
    fn private_spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hyperq_spill_test_{tag}_{}_{}",
            std::process::id(),
            crate::auth::fresh_salt()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spilling_config(dir: &std::path::Path) -> ConverterConfig {
        ConverterConfig {
            batch_size: 50,
            memory_budget: 0, // every chunk spills
            spill_dir: dir.to_path_buf(),
            ..Default::default()
        }
    }

    #[test]
    fn spill_dir_empty_after_failed_consumption() {
        let dir = private_spill_dir("failed");
        let result = convert(&schema(), &rows(1000), &spilling_config(&dir)).unwrap();
        assert!(result.spilled_chunks > 1, "need several spill files on disk");
        // The consumer dies mid-stream: the chunk being streamed AND the
        // chunks never reached must all be cleaned up by their guards.
        let err = result
            .for_each_row(|_| Err(std::io::Error::other("client hung up")))
            .unwrap_err();
        assert_eq!(err.to_string(), "client hung up");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "failed conversion must leave the spill dir empty"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn spill_dir_empty_after_unconsumed_result_drops() {
        let dir = private_spill_dir("dropped");
        let result = convert(&schema(), &rows(1000), &spilling_config(&dir)).unwrap();
        assert!(result.spilled_chunks > 0);
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0, "files exist while live");
        drop(result);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "abandoned result must leave the spill dir empty"
        );
        let _ = std::fs::remove_dir(&dir);
    }
}
