//! End-to-end SQL tests for the engine substrate (ANSI target dialect).

use hyperq_engine::EngineDb;
use hyperq_xtra::datum::{Datum, Decimal};

fn db() -> EngineDb {
    let db = EngineDb::new();
    db.execute_sql(
        "CREATE TABLE EMP (EMPNO INTEGER NOT NULL, MGRNO INTEGER, NAME VARCHAR(30), \
         SALARY DECIMAL(10,2), HIRED DATE)",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO EMP VALUES \
         (1, 7, 'alice', 100.00, DATE '2014-01-01'), \
         (7, 8, 'bob', 200.00, DATE '2013-05-10'), \
         (8, 10, 'carol', 300.50, DATE '2012-07-20'), \
         (9, 10, 'dave', 250.25, DATE '2015-02-28'), \
         (10, 11, 'erin', 400.00, DATE '2010-12-31')",
    )
    .unwrap();
    db
}

fn ints(result: &hyperq_core::ExecResult, col: usize) -> Vec<i64> {
    result
        .rows
        .iter()
        .map(|r| r[col].to_i64().expect("integer column"))
        .collect()
}

#[test]
fn select_where_order() {
    let db = db();
    let r = db
        .execute_sql("SELECT EMPNO FROM EMP WHERE MGRNO = 10 ORDER BY EMPNO")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![8, 9]);
}

#[test]
fn select_star_preserves_all_columns() {
    let db = db();
    let r = db.execute_sql("SELECT * FROM EMP").unwrap();
    assert_eq!(r.schema.len(), 5);
    assert_eq!(r.rows.len(), 5);
}

#[test]
fn arithmetic_and_aliases() {
    let db = db();
    let r = db
        .execute_sql("SELECT EMPNO * 2 AS DOUBLED FROM EMP WHERE EMPNO = 7")
        .unwrap();
    assert_eq!(r.schema.fields[0].name, "DOUBLED");
    assert_eq!(ints(&r, 0), vec![14]);
}

#[test]
fn decimal_arithmetic_is_exact() {
    let db = db();
    let r = db
        .execute_sql("SELECT SALARY * 0.10 FROM EMP WHERE EMPNO = 8")
        .unwrap();
    match &r.rows[0][0] {
        Datum::Dec(d) => assert_eq!(*d, Decimal::parse("30.0500").unwrap()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn group_by_having() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT MGRNO, COUNT(*) AS N, SUM(SALARY) AS TOTAL FROM EMP \
             GROUP BY MGRNO HAVING COUNT(*) > 1 ORDER BY MGRNO",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Datum::Int(10));
    assert_eq!(r.rows[0][1], Datum::Int(2));
    match &r.rows[0][2] {
        Datum::Dec(d) => assert_eq!(*d, Decimal::parse("550.75").unwrap()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn global_aggregate_on_empty_input_returns_one_row() {
    let db = db();
    let r = db
        .execute_sql("SELECT COUNT(*), SUM(SALARY) FROM EMP WHERE EMPNO > 1000")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Datum::Int(0));
    assert_eq!(r.rows[0][1], Datum::Null);
}

#[test]
fn count_distinct() {
    let db = db();
    let r = db
        .execute_sql("SELECT COUNT(DISTINCT MGRNO) FROM EMP")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![4]);
}

#[test]
fn inner_join_hash_path() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT E.NAME, M.NAME FROM EMP E INNER JOIN EMP M ON E.MGRNO = M.EMPNO \
             ORDER BY E.EMPNO",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4); // erin's manager (11) is not in the table
    assert_eq!(r.rows[0][0], Datum::str("alice"));
    assert_eq!(r.rows[0][1], Datum::str("bob"));
}

#[test]
fn left_join_pads_nulls() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT E.NAME, M.NAME FROM EMP E LEFT JOIN EMP M ON E.MGRNO = M.EMPNO \
             ORDER BY E.EMPNO",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    let erin = r.rows.iter().find(|row| row[0] == Datum::str("erin")).unwrap();
    assert_eq!(erin[1], Datum::Null);
}

#[test]
fn full_outer_join() {
    let db = db();
    db.execute_sql("CREATE TABLE DEPT (DEPTNO INTEGER, HEAD INTEGER)").unwrap();
    db.execute_sql("INSERT INTO DEPT VALUES (100, 10), (200, 999)").unwrap();
    let r = db
        .execute_sql(
            "SELECT D.DEPTNO, E.NAME FROM DEPT D FULL JOIN EMP E ON D.HEAD = E.EMPNO",
        )
        .unwrap();
    // 1 matched (10→erin), 1 left-unmatched (200), 4 right-unmatched emps.
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn cross_join_counts() {
    let db = db();
    let r = db
        .execute_sql("SELECT COUNT(*) FROM EMP A CROSS JOIN EMP B")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![25]);
}

#[test]
fn theta_join_nested_loop_path() {
    let db = db();
    let r = db
        .execute_sql("SELECT COUNT(*) FROM EMP A INNER JOIN EMP B ON A.EMPNO < B.EMPNO")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![10]);
}

#[test]
fn correlated_exists_subquery() {
    let db = db();
    // Employees who manage someone.
    let r = db
        .execute_sql(
            "SELECT NAME FROM EMP M WHERE EXISTS \
             (SELECT 1 FROM EMP E WHERE E.MGRNO = M.EMPNO) ORDER BY NAME",
        )
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|r| r[0].to_sql_string()).collect();
    assert_eq!(names, vec!["bob", "carol", "erin"]);
}

#[test]
fn scalar_subquery() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT NAME FROM EMP WHERE SALARY = (SELECT MAX(SALARY) FROM EMP)",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::str("erin"));
}

#[test]
fn in_subquery_and_not_in() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT COUNT(*) FROM EMP WHERE MGRNO IN (SELECT EMPNO FROM EMP)",
        )
        .unwrap();
    assert_eq!(ints(&r, 0), vec![4]);
    let r2 = db
        .execute_sql(
            "SELECT NAME FROM EMP WHERE EMPNO NOT IN (SELECT MGRNO FROM EMP WHERE MGRNO IS NOT NULL)",
        )
        .unwrap();
    let names: Vec<String> = r2.rows.iter().map(|r| r[0].to_sql_string()).collect();
    assert_eq!(names, vec!["alice", "dave"]);
}

#[test]
fn quantified_scalar_any() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT COUNT(*) FROM EMP WHERE SALARY > ANY (SELECT SALARY FROM EMP WHERE MGRNO = 10)",
        )
        .unwrap();
    // salaries: 100,200,300.5,250.25,400 vs subquery {300.5, 250.25}
    // > ANY means > min(250.25): 300.5 and 400.
    assert_eq!(ints(&r, 0), vec![2]);
}

#[test]
fn window_rank_and_partition() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT NAME, RANK() OVER (ORDER BY SALARY DESC) AS R FROM EMP ORDER BY R, NAME",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::str("erin"));
    assert_eq!(r.rows[0][1], Datum::Int(1));
    let r2 = db
        .execute_sql(
            "SELECT NAME, ROW_NUMBER() OVER (PARTITION BY MGRNO ORDER BY NAME) AS RN \
             FROM EMP WHERE MGRNO = 10 ORDER BY RN",
        )
        .unwrap();
    assert_eq!(r2.rows.len(), 2);
    assert_eq!(r2.rows[0][1], Datum::Int(1));
    assert_eq!(r2.rows[1][1], Datum::Int(2));
}

#[test]
fn window_rank_ties() {
    let db = db();
    db.execute_sql("CREATE TABLE SCORES (ID INTEGER, S INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SCORES VALUES (1, 10), (2, 10), (3, 5)").unwrap();
    let r = db
        .execute_sql(
            "SELECT ID, RANK() OVER (ORDER BY S DESC) AS R, \
             DENSE_RANK() OVER (ORDER BY S DESC) AS D FROM SCORES ORDER BY ID",
        )
        .unwrap();
    assert_eq!(r.rows[0][1], Datum::Int(1));
    assert_eq!(r.rows[1][1], Datum::Int(1));
    assert_eq!(r.rows[2][1], Datum::Int(3));
    assert_eq!(r.rows[2][2], Datum::Int(2));
}

#[test]
fn windowed_sum_over_partition() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT NAME, SUM(SALARY) OVER (PARTITION BY MGRNO) AS TOT FROM EMP \
             WHERE MGRNO = 10 ORDER BY NAME",
        )
        .unwrap();
    for row in &r.rows {
        match &row[1] {
            Datum::Dec(d) => assert_eq!(*d, Decimal::parse("550.75").unwrap()),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn running_sum_with_order() {
    let db = db();
    db.execute_sql("CREATE TABLE SERIES (T INTEGER, V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SERIES VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    let r = db
        .execute_sql(
            "SELECT T, SUM(V) OVER (ORDER BY T) AS RUNNING FROM SERIES ORDER BY T",
        )
        .unwrap();
    assert_eq!(ints(&r, 1), vec![10, 30, 60]);
}

#[test]
fn set_operations() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT EMPNO FROM EMP WHERE EMPNO < 9 UNION ALL SELECT EMPNO FROM EMP WHERE EMPNO > 7 \
             ORDER BY 1",
        );
    // Ordinal ORDER BY over a set op works at the query level.
    let r = r.unwrap();
    assert_eq!(ints(&r, 0), vec![1, 7, 8, 8, 9, 10]);
    let r2 = db
        .execute_sql(
            "SELECT MGRNO FROM EMP INTERSECT SELECT EMPNO FROM EMP",
        )
        .unwrap();
    let mut got = ints(&r2, 0);
    got.sort();
    assert_eq!(got, vec![7, 8, 10]);
    let r3 = db
        .execute_sql("SELECT EMPNO FROM EMP EXCEPT SELECT MGRNO FROM EMP")
        .unwrap();
    let mut got = ints(&r3, 0);
    got.sort();
    assert_eq!(got, vec![1, 9]);
}

#[test]
fn distinct_and_limit() {
    let db = db();
    let r = db
        .execute_sql("SELECT DISTINCT MGRNO FROM EMP WHERE MGRNO IS NOT NULL ORDER BY MGRNO LIMIT 2")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![7, 8]);
}

#[test]
fn case_expression() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT NAME, CASE WHEN SALARY >= 300 THEN 'high' WHEN SALARY >= 200 THEN 'mid' \
             ELSE 'low' END AS BAND FROM EMP ORDER BY EMPNO",
        )
        .unwrap();
    let bands: Vec<String> = r.rows.iter().map(|r| r[1].to_sql_string()).collect();
    assert_eq!(bands, vec!["low", "mid", "high", "mid", "high"]);
}

#[test]
fn string_functions() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT UPPER(NAME), CHAR_LENGTH(NAME), SUBSTRING(NAME, 1, 2), \
             POSITION('li' IN NAME) FROM EMP WHERE EMPNO = 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::str("ALICE"));
    assert_eq!(r.rows[0][1], Datum::Int(5));
    assert_eq!(r.rows[0][2], Datum::str("al"));
    assert_eq!(r.rows[0][3], Datum::Int(2));
}

#[test]
fn like_and_between() {
    let db = db();
    let r = db
        .execute_sql("SELECT COUNT(*) FROM EMP WHERE NAME LIKE '%a%'") // alice, carol, dave
        .unwrap();
    assert_eq!(ints(&r, 0), vec![3]);
    let r2 = db
        .execute_sql("SELECT COUNT(*) FROM EMP WHERE SALARY BETWEEN 200 AND 300")
        .unwrap();
    assert_eq!(ints(&r2, 0), vec![2]);
}

#[test]
fn date_functions_and_arithmetic() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT EXTRACT(YEAR FROM HIRED), HIRED + 30, ADD_MONTHS(HIRED, 2) \
             FROM EMP WHERE EMPNO = 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(2014));
    assert_eq!(r.rows[0][1].to_sql_string(), "2014-01-31");
    assert_eq!(r.rows[0][2].to_sql_string(), "2014-03-01");
}

#[test]
fn update_and_delete() {
    let db = db();
    let r = db
        .execute_sql("UPDATE EMP SET SALARY = SALARY + 50 WHERE MGRNO = 10")
        .unwrap();
    assert_eq!(r.row_count, 2);
    let check = db
        .execute_sql("SELECT SALARY FROM EMP WHERE EMPNO = 8")
        .unwrap();
    match &check.rows[0][0] {
        Datum::Dec(d) => assert_eq!(*d, Decimal::parse("350.50").unwrap()),
        other => panic!("{other:?}"),
    }
    let d = db.execute_sql("DELETE FROM EMP WHERE EMPNO = 1").unwrap();
    assert_eq!(d.row_count, 1);
    let left = db.execute_sql("SELECT COUNT(*) FROM EMP").unwrap();
    assert_eq!(ints(&left, 0), vec![4]);
}

#[test]
fn ctas_reports_row_count() {
    let db = db();
    let r = db
        .execute_sql("CREATE TABLE RICH AS SELECT NAME FROM EMP WHERE SALARY > 250")
        .unwrap();
    assert_eq!(r.row_count, 3);
    let check = db.execute_sql("SELECT COUNT(*) FROM RICH").unwrap();
    assert_eq!(ints(&check, 0), vec![3]);
}

#[test]
fn temp_table_lifecycle() {
    let db = db();
    db.execute_sql("CREATE TEMPORARY TABLE TT (A INTEGER)").unwrap();
    db.execute_sql("INSERT INTO TT VALUES (1), (2)").unwrap();
    let r = db.execute_sql("SELECT COUNT(*) FROM TT").unwrap();
    assert_eq!(ints(&r, 0), vec![2]);
    db.execute_sql("DROP TABLE TT").unwrap();
    assert!(db.execute_sql("SELECT * FROM TT").is_err());
}

#[test]
fn derived_table_with_column_aliases() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT X FROM (SELECT EMPNO FROM EMP WHERE EMPNO < 8) AS D (X) ORDER BY X",
        )
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1, 7]);
}

#[test]
fn nulls_ordering_explicit() {
    let db = db();
    let r = db
        .execute_sql("SELECT MGRNO FROM EMP ORDER BY MGRNO ASC NULLS FIRST LIMIT 1")
        .unwrap();
    // No NULL mgrno in the fixture; add one.
    db.execute_sql("INSERT INTO EMP VALUES (99, NULL, 'zed', 1.00, NULL)").unwrap();
    let r2 = db
        .execute_sql("SELECT EMPNO FROM EMP ORDER BY MGRNO ASC NULLS FIRST LIMIT 1")
        .unwrap();
    assert_eq!(ints(&r2, 0), vec![99]);
    let r3 = db
        .execute_sql("SELECT EMPNO FROM EMP ORDER BY MGRNO ASC NULLS LAST LIMIT 1")
        .unwrap();
    assert_eq!(ints(&r3, 0), vec![1]);
    let _ = r;
}

#[test]
fn engine_default_null_order_is_nulls_high() {
    // Without explicit NULLS placement the engine sorts NULLs last on ASC —
    // different from Teradata, which is exactly the subtle defect the
    // explicit-null-ordering rewrite guards against.
    let db = db();
    db.execute_sql("INSERT INTO EMP VALUES (99, NULL, 'zed', 1.00, NULL)").unwrap();
    let r = db
        .execute_sql("SELECT EMPNO FROM EMP ORDER BY MGRNO")
        .unwrap();
    assert_eq!(r.rows.last().unwrap()[0], Datum::Int(99));
}

#[test]
fn engine_rejects_teradata_dialect() {
    let db = db();
    assert!(db.execute_sql("SEL * FROM EMP").is_err());
    assert!(db
        .execute_sql("SELECT * FROM EMP QUALIFY RANK() OVER (ORDER BY EMPNO) <= 1")
        .is_err());
    assert!(db.execute_sql("SELECT TOP 3 * FROM EMP").is_err());
    assert!(db.execute_sql("HELP SESSION").is_err());
    assert!(db
        .execute_sql("MERGE INTO EMP USING EMP ON 1=1 WHEN MATCHED THEN UPDATE SET EMPNO = 1")
        .is_err());
}

#[test]
fn engine_rejects_recursion_and_grouping_sets() {
    let db = db();
    assert!(db
        .execute_sql("WITH RECURSIVE R (N) AS (SELECT 1) SELECT * FROM R")
        .is_err());
    assert!(db
        .execute_sql("SELECT MGRNO, COUNT(*) FROM EMP GROUP BY ROLLUP(MGRNO)")
        .is_err());
}

#[test]
fn engine_rejects_vector_subquery() {
    let db = db();
    assert!(db
        .execute_sql(
            "SELECT * FROM EMP WHERE (EMPNO, MGRNO) > ANY (SELECT EMPNO, MGRNO FROM EMP)",
        )
        .is_err());
}

#[test]
fn not_null_constraint_enforced() {
    let db = db();
    assert!(db.execute_sql("INSERT INTO EMP (MGRNO) VALUES (5)").is_err());
}

#[test]
fn insert_with_column_subset_fills_nulls() {
    let db = db();
    db.execute_sql("INSERT INTO EMP (EMPNO, NAME) VALUES (50, 'pat')").unwrap();
    let r = db
        .execute_sql("SELECT MGRNO, SALARY FROM EMP WHERE EMPNO = 50")
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::Null);
    assert_eq!(r.rows[0][1], Datum::Null);
}

#[test]
fn char_type_coercion_pads() {
    let db = db();
    db.execute_sql("CREATE TABLE CODES (C CHAR(4))").unwrap();
    db.execute_sql("INSERT INTO CODES VALUES ('ab')").unwrap();
    let r = db.execute_sql("SELECT C FROM CODES WHERE C = 'ab'").unwrap();
    assert_eq!(r.rows.len(), 1, "blank-padded comparison must match");
}

#[test]
fn non_correlated_subquery_in_from() {
    let db = db();
    let r = db
        .execute_sql(
            "SELECT AVG_SAL FROM (SELECT AVG(SALARY) AS AVG_SAL FROM EMP) AS A",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn three_valued_logic_null_comparisons() {
    let db = db();
    db.execute_sql("INSERT INTO EMP VALUES (99, NULL, 'zed', NULL, NULL)").unwrap();
    // NULL = NULL is UNKNOWN, excluded by WHERE.
    let r = db
        .execute_sql("SELECT COUNT(*) FROM EMP WHERE MGRNO = MGRNO")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![5]); // the NULL-mgrno row drops out
    // IS NULL catches it.
    let r2 = db
        .execute_sql("SELECT COUNT(*) FROM EMP WHERE MGRNO IS NULL")
        .unwrap();
    assert_eq!(ints(&r2, 0), vec![1]);
}
