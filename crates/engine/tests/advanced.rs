//! Engine edge cases: joins with residuals, window peers, set-operation
//! semantics, DML with subqueries, admission control, concurrency.

use std::sync::Arc;

use hyperq_engine::EngineDb;
use hyperq_xtra::datum::Datum;

fn ints(r: &hyperq_core::ExecResult, col: usize) -> Vec<i64> {
    r.rows.iter().map(|row| row[col].to_i64().unwrap()).collect()
}

#[test]
fn left_join_with_non_equi_residual() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE L (K INTEGER, V INTEGER)").unwrap();
    db.execute_sql("CREATE TABLE R (K INTEGER, W INTEGER)").unwrap();
    db.execute_sql("INSERT INTO L VALUES (1, 10), (2, 20)").unwrap();
    db.execute_sql("INSERT INTO R VALUES (1, 5), (1, 15), (2, 100)").unwrap();
    // Residual W < V on top of the equi key: row (1,10) matches only (1,5);
    // (2,20) matches nothing → padded.
    let r = db
        .execute_sql(
            "SELECT L.K, R.W FROM L LEFT JOIN R ON L.K = R.K AND R.W < L.V ORDER BY L.K",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Datum::Int(5));
    assert_eq!(r.rows[1][1], Datum::Null);
}

#[test]
fn join_on_null_keys_never_matches() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE A (K INTEGER)").unwrap();
    db.execute_sql("CREATE TABLE B (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO A VALUES (NULL), (1)").unwrap();
    db.execute_sql("INSERT INTO B VALUES (NULL), (1)").unwrap();
    let inner = db
        .execute_sql("SELECT COUNT(*) FROM A INNER JOIN B ON A.K = B.K")
        .unwrap();
    assert_eq!(ints(&inner, 0), vec![1]);
    let left = db
        .execute_sql("SELECT COUNT(*) FROM A LEFT JOIN B ON A.K = B.K")
        .unwrap();
    assert_eq!(ints(&left, 0), vec![2]); // NULL row padded, not matched
}

#[test]
fn window_running_sum_counts_peers_together() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE S (G INTEGER, V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO S VALUES (1, 10), (1, 10), (2, 5)").unwrap();
    // Default frame is RANGE: peers (equal order keys) share the running
    // value.
    let r = db
        .execute_sql("SELECT G, SUM(V) OVER (ORDER BY G) AS RS FROM S ORDER BY G")
        .unwrap();
    assert_eq!(ints(&r, 1), vec![20, 20, 25]);
}

#[test]
fn window_count_star_over_partition() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE S (G INTEGER)").unwrap();
    db.execute_sql("INSERT INTO S VALUES (1), (1), (2)").unwrap();
    let r = db
        .execute_sql("SELECT G, COUNT(*) OVER (PARTITION BY G) AS N FROM S ORDER BY G")
        .unwrap();
    assert_eq!(ints(&r, 1), vec![2, 2, 1]);
}

#[test]
fn intersect_and_except_all_multiset_semantics() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE A (K INTEGER)").unwrap();
    db.execute_sql("CREATE TABLE B (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO A VALUES (1), (1), (1), (2)").unwrap();
    db.execute_sql("INSERT INTO B VALUES (1), (1), (3)").unwrap();
    let i = db
        .execute_sql("SELECT K FROM A INTERSECT ALL SELECT K FROM B")
        .unwrap();
    assert_eq!(i.rows.len(), 2, "1 appears min(3,2)=2 times");
    let e = db
        .execute_sql("SELECT K FROM A EXCEPT ALL SELECT K FROM B ORDER BY 1")
        .unwrap();
    assert_eq!(ints(&e, 0), vec![1, 2], "3-2 copies of 1 remain, plus the 2");
}

#[test]
fn union_distinct_dedups_across_inputs() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE A (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO A VALUES (1), (2), (2)").unwrap();
    let r = db
        .execute_sql("SELECT K FROM A UNION SELECT K FROM A ORDER BY 1")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1, 2]);
}

#[test]
fn update_with_correlated_subquery_sees_pre_update_state() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER, V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    // Every row set to the pre-update maximum: all must become 30, not a
    // cascading value.
    db.execute_sql("UPDATE T SET V = (SELECT MAX(V) FROM T)").unwrap();
    let r = db.execute_sql("SELECT DISTINCT V FROM T").unwrap();
    assert_eq!(ints(&r, 0), vec![30]);
}

#[test]
fn delete_with_subquery_predicate() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    db.execute_sql("CREATE TABLE KILL (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (1), (2), (3)").unwrap();
    db.execute_sql("INSERT INTO KILL VALUES (2)").unwrap();
    let d = db
        .execute_sql("DELETE FROM T WHERE K IN (SELECT K FROM KILL)")
        .unwrap();
    assert_eq!(d.row_count, 1);
    let r = db.execute_sql("SELECT K FROM T ORDER BY K").unwrap();
    assert_eq!(ints(&r, 0), vec![1, 3]);
}

#[test]
fn duplicate_table_creation_rejected() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    assert!(db.execute_sql("CREATE TABLE T (K INTEGER)").is_err());
}

#[test]
fn drop_if_exists_is_idempotent() {
    let db = EngineDb::new();
    assert!(db.execute_sql("DROP TABLE NOPE").is_err());
    db.execute_sql("DROP TABLE IF EXISTS NOPE").unwrap();
}

#[test]
fn division_by_zero_surfaces_as_error() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (0)").unwrap();
    let err = db.execute_sql("SELECT 1 / K FROM T").unwrap_err();
    assert!(err.to_string().contains("zero"), "{err}");
}

#[test]
fn admission_control_queues_but_completes() {
    let db = Arc::new(EngineDb::with_concurrency_limit(1));
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (1), (2), (3)").unwrap();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let r = db.execute_sql("SELECT COUNT(*) FROM T").unwrap();
                    assert_eq!(r.rows[0][0], Datum::Int(3));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn concurrent_readers_and_writer() {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for i in 0..200 {
                db.execute_sql(&format!("INSERT INTO T VALUES ({i})")).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut last = 0i64;
                for _ in 0..50 {
                    let n = db.execute_sql("SELECT COUNT(*) FROM T").unwrap().rows[0][0]
                        .to_i64()
                        .unwrap();
                    // Counts are monotone under copy-on-write snapshots.
                    assert!(n >= last);
                    last = n;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let n = db.execute_sql("SELECT COUNT(*) FROM T").unwrap().rows[0][0]
        .to_i64()
        .unwrap();
    assert_eq!(n, 200);
}

#[test]
fn order_by_is_stable_for_equal_keys() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER, SEQ INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (1, 1), (1, 2), (1, 3), (0, 4)").unwrap();
    let r = db.execute_sql("SELECT SEQ FROM T ORDER BY K").unwrap();
    // Rows with K=1 keep insertion order after the K=0 row.
    assert_eq!(ints(&r, 0), vec![4, 1, 2, 3]);
}

#[test]
fn case_insensitive_table_lookup() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE MiXeD (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO mixed VALUES (1)").unwrap();
    let r = db.execute_sql("SELECT COUNT(*) FROM MIXED").unwrap();
    assert_eq!(ints(&r, 0), vec![1]);
}

#[test]
fn coalesce_and_case_null_paths() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (NULL), (5)").unwrap();
    let r = db
        .execute_sql(
            "SELECT COALESCE(K, -1), CASE WHEN K IS NULL THEN 'none' ELSE 'some' END \
             FROM T ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(-1));
    assert_eq!(r.rows[0][1], Datum::str("none"));
    assert_eq!(r.rows[1][1], Datum::str("some"));
}

#[test]
fn scalar_subquery_multiple_rows_is_error() {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE T (K INTEGER)").unwrap();
    db.execute_sql("INSERT INTO T VALUES (1), (2)").unwrap();
    let err = db
        .execute_sql("SELECT (SELECT K FROM T) FROM T")
        .unwrap_err();
    assert!(err.to_string().contains("rows"), "{err}");
}
