//! # hyperq-engine — the simulated cloud data warehouse
//!
//! The substrate standing in for the paper's target database (DB-B): an
//! in-memory analytical SQL engine that parses the **ANSI target dialect**
//! (what Hyper-Q's serializer emits), binds it with the shared binder, and
//! executes the resulting XTRA plan.
//!
//! Fidelity rules:
//!
//! * the engine accepts *only* the ANSI dialect — Teradata-isms are syntax
//!   errors, so a serializer leak fails loudly;
//! * the engine's feature surface matches
//!   [`hyperq_core::capability::TargetCapabilities::simwh`] exactly: no
//!   `QUALIFY`, no vector subquery comparison, no recursion, no `MERGE`,
//!   no grouping sets — requests using them are rejected, which is what
//!   forces Hyper-Q's rewrites and emulations to actually run;
//! * execution is correct rather than clever: hash joins and hash
//!   aggregation where possible, nested loops otherwise, naive (re-executed)
//!   correlated subqueries.
//!
//! Concurrency: the catalog is guarded by an `RwLock` and table contents
//! are copy-on-write (`Arc<Vec<Row>>`), so concurrent analytical readers —
//! the paper's stress-test scenario (§7.3) — proceed without blocking each
//! other.

#![forbid(unsafe_code)]

mod db;
mod eval;
mod exec;
mod optimize;

pub use db::EngineDb;
