//! The engine's catalog, storage and statement execution, including the
//! [`Backend`] implementation Hyper-Q talks to.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use hyperq_core::backend::{Backend, BackendError, ExecResult};
use hyperq_core::binder::Binder;
use hyperq_parser::{parse_statements, Dialect};
use hyperq_xtra::catalog::{ColumnDef, MetadataProvider, TableDef, ViewDef};
use hyperq_xtra::datum::Datum;
use hyperq_xtra::rel::Plan;
use hyperq_xtra::Row;

use crate::eval::{eval, eval_truth, EvalContext, EvalError};
use crate::exec::execute_rel;

/// One stored table: definition plus copy-on-write contents.
#[derive(Clone)]
struct TableData {
    def: TableDef,
    rows: Arc<Vec<Row>>,
}

/// Admission control: cloud warehouses queue queries into a bounded number
/// of execution slots (workload-management queues). Modeling this is what
/// makes the paper's stress-test observation reproducible: under
/// concurrency, *execution* time (including queueing at the warehouse)
/// grows while Hyper-Q's per-query translation cost stays constant.
struct Slots {
    max: usize,
    in_use: parking_lot::Mutex<usize>,
    available: parking_lot::Condvar,
}

impl Slots {
    /// How long one slot wait sleeps before re-checking the governor; a
    /// cancelled or past-deadline statement leaves the queue within this
    /// bound even if no slot ever frees.
    const POLL: std::time::Duration = std::time::Duration::from_millis(20);

    fn acquire(&self) -> Result<(), EvalError> {
        let mut in_use = self.in_use.lock();
        while *in_use >= self.max {
            hyperq_governor::checkpoint().map_err(|c| c.to_string())?;
            let wait = hyperq_governor::deadline_remaining()
                .map_or(Self::POLL, |rem| rem.min(Self::POLL));
            if wait.is_zero() {
                // Deadline just expired: loop straight into the checkpoint.
                continue;
            }
            self.available.wait_for(&mut in_use, wait);
        }
        *in_use += 1;
        Ok(())
    }

    fn release(&self) {
        let mut in_use = self.in_use.lock();
        *in_use -= 1;
        self.available.notify_one();
    }
}

/// The in-memory warehouse.
pub struct EngineDb {
    tables: RwLock<HashMap<String, TableData>>,
    slots: Option<Slots>,
    /// Session-scoped parameters applied via `SET name = value`. SimWH
    /// models a warehouse whose settings live with the *instance* session;
    /// Hyper-Q journals and replays the `SET`s after a reconnect.
    session_params: RwLock<HashMap<String, String>>,
    /// Statements executed, reported into the process-wide metrics.
    statements: Arc<hyperq_obs::Counter>,
    /// Statements currently holding an execution slot (or running, when no
    /// admission control is configured).
    inflight: Arc<hyperq_obs::Gauge>,
}

impl Default for EngineDb {
    fn default() -> Self {
        let metrics = &hyperq_obs::ObsContext::global().metrics;
        EngineDb {
            tables: RwLock::new(HashMap::new()),
            slots: None,
            session_params: RwLock::new(HashMap::new()),
            statements: metrics
                .counter("hyperq_engine_statements_total", &[("engine", "SimWH")]),
            inflight: metrics
                .gauge("hyperq_engine_statements_inflight", &[("engine", "SimWH")]),
        }
    }
}

impl EngineDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// A warehouse with a bounded number of concurrent query slots
    /// (admission control); additional requests queue.
    pub fn with_concurrency_limit(max_concurrent: usize) -> Self {
        EngineDb {
            slots: Some(Slots {
                max: max_concurrent.max(1),
                in_use: parking_lot::Mutex::new(0),
                available: parking_lot::Condvar::new(),
            }),
            ..Default::default()
        }
    }

    /// Create a table; errors if it already exists.
    pub fn create_table(&self, def: TableDef) -> Result<(), EvalError> {
        let key = def.name.to_ascii_uppercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(format!("table {key} already exists"));
        }
        tables.insert(key, TableData { def, rows: Arc::new(Vec::new()) });
        Ok(())
    }

    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<(), EvalError> {
        let key = name.to_ascii_uppercase();
        let removed = self.tables.write().remove(&key).is_some();
        if !removed && !if_exists {
            return Err(format!("table {key} does not exist"));
        }
        Ok(())
    }

    /// Snapshot a table's rows (copy-on-write: cheap Arc clone).
    pub fn scan(&self, name: &str) -> Result<Arc<Vec<Row>>, EvalError> {
        let key = name.to_ascii_uppercase();
        self.tables
            .read()
            .get(&key)
            .map(|t| Arc::clone(&t.rows))
            .ok_or_else(|| format!("table {key} does not exist"))
    }

    pub fn table_def(&self, name: &str) -> Option<TableDef> {
        self.tables
            .read()
            .get(&name.to_ascii_uppercase())
            .map(|t| t.def.clone())
    }

    /// Bulk-load rows, coercing each value to the column type. Used by the
    /// workload generators.
    pub fn load_rows(&self, name: &str, rows: Vec<Row>) -> Result<u64, EvalError> {
        let key = name.to_ascii_uppercase();
        let def = self
            .table_def(&key)
            .ok_or_else(|| format!("table {key} does not exist"))?;
        let coerced: Result<Vec<Row>, EvalError> = rows
            .into_iter()
            .map(|row| coerce_row(&def, row))
            .collect();
        let coerced = coerced?;
        let n = coerced.len() as u64;
        let mut tables = self.tables.write();
        let t = tables.get_mut(&key).ok_or_else(|| format!("table {key} dropped"))?;
        Arc::make_mut(&mut t.rows).extend(coerced);
        Ok(n)
    }

    /// Execute one or more ANSI-dialect statements; returns the last
    /// statement's result. Waits for an execution slot when admission
    /// control is configured.
    pub fn execute_sql(&self, sql: &str) -> Result<ExecResult, BackendError> {
        if let Some(slots) = &self.slots {
            slots.acquire().map_err(BackendError::timeout)?;
        }
        self.statements.inc();
        self.inflight.add(1);
        let result = self.execute_sql_inner(sql);
        self.inflight.sub(1);
        if let Some(slots) = &self.slots {
            slots.release();
        }
        result
    }

    fn execute_sql_inner(&self, sql: &str) -> Result<ExecResult, BackendError> {
        // `SET name = value` is session-parameter syntax, not ANSI DML —
        // handled textually like a warehouse's session layer would.
        if let Some(rest) = strip_keyword(sql, "SET") {
            let (name, value) = rest
                .split_once('=')
                .ok_or_else(|| BackendError::fatal(format!("malformed SET statement: {sql}")))?;
            self.session_params
                .write()
                .insert(name.trim().to_ascii_uppercase(), value.trim().to_string());
            return Ok(ExecResult::ack());
        }
        let stmts =
            parse_statements(sql, Dialect::Ansi).map_err(|e| BackendError::fatal(e.to_string()))?;
        let mut last = ExecResult::ack();
        for ps in stmts {
            last = self.execute_stmt(&ps.stmt)?;
        }
        Ok(last)
    }

    fn execute_stmt(
        &self,
        stmt: &hyperq_parser::ast::Statement,
    ) -> Result<ExecResult, BackendError> {
        let catalog = EngineCatalog(self);
        let mut binder = Binder::new(&catalog);
        let plan = binder
            .bind_statement(stmt)
            .map_err(|e| BackendError::fatal(e.to_string()))?;
        // Evaluator errors are free-form strings (e.g. admission-control
        // rejections); classify them so the resilience layer can tell
        // retryable overload apart from genuine statement failures.
        self.execute_plan(&plan).map_err(BackendError::classify)
    }

    fn execute_plan(&self, plan: &Plan) -> Result<ExecResult, EvalError> {
        match plan {
            Plan::Query(rel) => {
                let optimized = crate::optimize::optimize(rel.clone());
                let rows = execute_rel(&optimized, self, &[])?;
                Ok(ExecResult::rows(rel.schema(), rows))
            }
            Plan::Insert { table, columns, source } => {
                let source = crate::optimize::optimize(source.clone());
                let rows = execute_rel(&source, self, &[])?;
                let n = self.insert_rows(table, columns, rows)?;
                Ok(ExecResult::affected(n))
            }
            Plan::Update { table, alias, assignments, predicate } => {
                self.update_rows(table, alias.as_deref(), assignments, predicate.as_ref())
                    .map(ExecResult::affected)
            }
            Plan::Delete { table, alias, predicate } => self
                .delete_rows(table, alias.as_deref(), predicate.as_ref())
                .map(ExecResult::affected),
            Plan::CreateTable { def, source } => {
                self.create_table(def.clone())?;
                match source {
                    Some(src) => {
                        let src = crate::optimize::optimize(src.clone());
                        let rows = execute_rel(&src, self, &[])?;
                        let columns: Vec<String> =
                            def.columns.iter().map(|c| c.name.clone()).collect();
                        let n = self.insert_rows(&def.name, &columns, rows)?;
                        Ok(ExecResult::affected(n))
                    }
                    None => Ok(ExecResult::ack()),
                }
            }
            Plan::DropTable { name, if_exists } => {
                self.drop_table(name, *if_exists)?;
                Ok(ExecResult::ack())
            }
            Plan::CreateView { .. } | Plan::DropView { .. } => {
                // Faithful to the SimWH capability profile: views never
                // reach the target (Hyper-Q keeps them in the DTM catalog).
                Err("views are not supported by this warehouse".to_string())
            }
        }
    }

    fn insert_rows(
        &self,
        table: &str,
        columns: &[String],
        rows: Vec<Row>,
    ) -> Result<u64, EvalError> {
        let key = table.to_ascii_uppercase();
        let def = self
            .table_def(&key)
            .ok_or_else(|| format!("table {key} does not exist"))?;
        // Map provided columns to table positions.
        let positions: Vec<usize> = if columns.is_empty() {
            (0..def.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    def.columns
                        .iter()
                        .position(|d| d.name.eq_ignore_ascii_case(c))
                        .ok_or_else(|| format!("column {c} not found in {key}"))
                })
                .collect::<Result<_, _>>()?
        };
        let mut full_rows: Vec<Row> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return Err(format!(
                    "INSERT provides {} values for {} columns",
                    row.len(),
                    positions.len()
                ));
            }
            let mut full: Row = vec![Datum::Null; def.columns.len()];
            for (value, &pos) in row.into_iter().zip(positions.iter()) {
                full[pos] = value;
            }
            // Defaults for unprovided columns.
            for (i, col) in def.columns.iter().enumerate() {
                if !positions.contains(&i) {
                    if let Some(d) = &col.default {
                        let mut ctx = EvalContext::new(self);
                        full[i] = eval(d, &mut ctx)?;
                    }
                }
            }
            full_rows.push(coerce_row(&def, full)?);
        }
        let n = full_rows.len() as u64;
        let mut tables = self.tables.write();
        let t = tables.get_mut(&key).ok_or_else(|| format!("table {key} dropped"))?;
        Arc::make_mut(&mut t.rows).extend(full_rows);
        Ok(n)
    }

    fn update_rows(
        &self,
        table: &str,
        alias: Option<&str>,
        assignments: &[hyperq_xtra::rel::Assignment],
        predicate: Option<&hyperq_xtra::expr::ScalarExpr>,
    ) -> Result<u64, EvalError> {
        let key = table.to_ascii_uppercase();
        let (def, snapshot) = {
            let tables = self.tables.read();
            let t = tables
                .get(&key)
                .ok_or_else(|| format!("table {key} does not exist"))?;
            (t.def.clone(), Arc::clone(&t.rows))
        };
        let schema = def.schema(alias);
        let targets: Vec<usize> = assignments
            .iter()
            .map(|a| {
                def.columns
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(&a.column))
                    .ok_or_else(|| format!("column {} not found in {key}", a.column))
            })
            .collect::<Result<_, _>>()?;
        let mut updated = 0u64;
        let mut new_rows: Vec<Row> = Vec::with_capacity(snapshot.len());
        for row in snapshot.iter() {
            let matches = match predicate {
                None => true,
                Some(p) => {
                    let mut ctx = EvalContext { db: self, scopes: vec![(&schema, row)] };
                    eval_truth(p, &mut ctx)? == Some(true)
                }
            };
            if matches {
                let mut new_row = row.clone();
                for (a, &pos) in assignments.iter().zip(targets.iter()) {
                    let mut ctx = EvalContext { db: self, scopes: vec![(&schema, row)] };
                    let v = eval(&a.value, &mut ctx)?;
                    new_row[pos] = coerce_value(&def.columns[pos], v)?;
                }
                updated += 1;
                new_rows.push(new_row);
            } else {
                new_rows.push(row.clone());
            }
        }
        let mut tables = self.tables.write();
        let t = tables.get_mut(&key).ok_or_else(|| format!("table {key} dropped"))?;
        t.rows = Arc::new(new_rows);
        Ok(updated)
    }

    fn delete_rows(
        &self,
        table: &str,
        alias: Option<&str>,
        predicate: Option<&hyperq_xtra::expr::ScalarExpr>,
    ) -> Result<u64, EvalError> {
        let key = table.to_ascii_uppercase();
        let (def, snapshot) = {
            let tables = self.tables.read();
            let t = tables
                .get(&key)
                .ok_or_else(|| format!("table {key} does not exist"))?;
            (t.def.clone(), Arc::clone(&t.rows))
        };
        let schema = def.schema(alias);
        let mut kept: Vec<Row> = Vec::with_capacity(snapshot.len());
        let mut deleted = 0u64;
        for row in snapshot.iter() {
            let matches = match predicate {
                None => true,
                Some(p) => {
                    let mut ctx = EvalContext { db: self, scopes: vec![(&schema, row)] };
                    eval_truth(p, &mut ctx)? == Some(true)
                }
            };
            if matches {
                deleted += 1;
            } else {
                kept.push(row.clone());
            }
        }
        let mut tables = self.tables.write();
        let t = tables.get_mut(&key).ok_or_else(|| format!("table {key} dropped"))?;
        t.rows = Arc::new(kept);
        Ok(deleted)
    }

    /// Names of all tables (diagnostics / tests).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A session parameter applied via `SET name = value` (diagnostics /
    /// tests).
    pub fn session_param(&self, name: &str) -> Option<String> {
        self.session_params.read().get(&name.to_ascii_uppercase()).cloned()
    }

    /// All session parameters, sorted by name (diagnostics / tests).
    pub fn session_params(&self) -> Vec<(String, String)> {
        let mut params: Vec<(String, String)> = self
            .session_params
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        params.sort();
        params
    }
}

/// If `sql` starts with `keyword` (case-insensitive, followed by
/// whitespace), return the remainder.
fn strip_keyword<'a>(sql: &'a str, keyword: &str) -> Option<&'a str> {
    let trimmed = sql.trim_start();
    let head = trimmed.get(..keyword.len())?;
    let rest = &trimmed[keyword.len()..];
    (head.eq_ignore_ascii_case(keyword) && rest.starts_with(char::is_whitespace))
        .then_some(rest)
}

/// Coerce a full-width row to the table's column types; enforces NOT NULL.
fn coerce_row(def: &TableDef, row: Row) -> Result<Row, EvalError> {
    if row.len() != def.columns.len() {
        return Err(format!(
            "row width {} does not match table {} width {}",
            row.len(),
            def.name,
            def.columns.len()
        ));
    }
    row.into_iter()
        .zip(def.columns.iter())
        .map(|(v, c)| coerce_value(c, v))
        .collect()
}

fn coerce_value(col: &ColumnDef, v: Datum) -> Result<Datum, EvalError> {
    if v.is_null() {
        if !col.nullable {
            return Err(format!("NULL value in NOT NULL column {}", col.name));
        }
        return Ok(Datum::Null);
    }
    v.cast_to(&col.ty).map_err(|e| {
        format!("column {}: {}", col.name, e.0)
    })
}

/// The engine's catalog viewed through the binder's interface.
struct EngineCatalog<'a>(&'a EngineDb);

impl<'a> MetadataProvider for EngineCatalog<'a> {
    fn table(&self, name: &str) -> Option<TableDef> {
        self.0.table_def(name).or_else(|| {
            // Allow unqualified lookup of qualified names.
            let tables = self.0.tables.read();
            tables
                .values()
                .find(|t| t.def.base_name().eq_ignore_ascii_case(name))
                .map(|t| t.def.clone())
        })
    }

    fn view(&self, _name: &str) -> Option<ViewDef> {
        None
    }
}

impl Backend for EngineDb {
    fn name(&self) -> &str {
        "SimWH"
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.execute_sql(sql)
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        EngineCatalog(self).table(name)
    }
}


