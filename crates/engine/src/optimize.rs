//! A minimal heuristic optimizer: predicate pushdown into (cross) joins.
//!
//! The engine is a substrate, not the paper's contribution, so there is no
//! cost-based optimization — but *one* rewrite is indispensable for
//! realistic analytical SQL: turning `σ[p](A × B)` into a hash-joinable
//! `A ⋈ B`, since warehouse workloads (and Teradata applications in
//! particular, via implicit joins) routinely spell joins as cross products
//! filtered by `WHERE`.

use hyperq_xtra::expr::{BoolOp, ScalarExpr};
use hyperq_xtra::rel::{JoinKind, RelExpr};
use hyperq_xtra::schema::Schema;

/// Push filter conjuncts down into join inputs/conditions and decorrelate
/// top-level [NOT] EXISTS conjuncts into semi/anti joins, until fixed
/// point.
pub fn optimize(mut rel: RelExpr) -> RelExpr {
    for _ in 0..10 {
        let changed = std::cell::Cell::new(false);
        rel = rel.rewrite(
            &mut |node| match node {
                RelExpr::Select { input, predicate } => {
                    // Pushdown first: it moves non-pushable conjuncts (like
                    // EXISTS) into a residual Select above the join, which a
                    // later pass then decorrelates — never the other way
                    // around, or a cross product gets trapped under the
                    // semi join.
                    let (input, predicate) = match *input {
                        RelExpr::Join {
                            kind: kind @ (JoinKind::Cross | JoinKind::Inner),
                            left,
                            right,
                            condition,
                        } => {
                            let (pushed, did) =
                                push_into_join(kind, left, right, condition, predicate);
                            if did {
                                changed.set(true);
                                return pushed;
                            }
                            match pushed {
                                RelExpr::Select { input, predicate } => (*input, predicate),
                                other => return other,
                            }
                        }
                        other => (other, predicate),
                    };
                    match decorrelate_exists(input, predicate) {
                        Ok(rewritten) => {
                            changed.set(true);
                            rewritten
                        }
                        Err((input, predicate)) => {
                            RelExpr::Select { input: Box::new(input), predicate }
                        }
                    }
                }
                other => other,
            },
            &mut |e| e,
        );
        if !changed.get() {
            break;
        }
    }
    rel
}

/// Try to rewrite `σ[… ∧ [NOT] EXISTS(S) ∧ …](R)` into semi/anti hash
/// joins. Returns `Err` with the inputs unchanged when nothing applies.
#[allow(clippy::result_large_err)] // Err carries the inputs back, by design.
fn decorrelate_exists(
    input: RelExpr,
    predicate: ScalarExpr,
) -> Result<RelExpr, (RelExpr, ScalarExpr)> {
    let mut conjuncts = Vec::new();
    flatten_and(predicate.clone(), &mut conjuncts);
    let input_schema = input.schema();

    // Find the first decorrelatable [NOT] EXISTS or [NOT] IN conjunct.
    let pos = conjuncts.iter().position(|c| match c {
        ScalarExpr::Exists { subquery, .. } => exists_plan(subquery, &input_schema).is_some(),
        ScalarExpr::InSubquery { exprs, subquery, negated } => {
            in_subquery_decorrelatable(exprs, subquery, *negated, &input_schema)
        }
        _ => false,
    });
    let Some(pos) = pos else {
        return Err((input, predicate));
    };
    let (negated, inner, condition) = match conjuncts.remove(pos) {
        ScalarExpr::Exists { negated, subquery } => {
            let (inner, keys, residual) =
                exists_plan(&subquery, &input_schema).expect("checked by position");
            let mut cond = keys;
            cond.extend(residual);
            (negated, inner, cond)
        }
        ScalarExpr::InSubquery { exprs, subquery, negated } => {
            let inner_schema = subquery.schema();
            let keys: Vec<ScalarExpr> = exprs
                .iter()
                .zip(inner_schema.fields.iter())
                .map(|(e, f)| {
                    ScalarExpr::cmp(
                        hyperq_xtra::expr::CmpOp::Eq,
                        e.clone(),
                        ScalarExpr::Column {
                            qualifier: f.qualifier.clone(),
                            name: f.name.clone(),
                            ty: f.ty.clone(),
                        },
                    )
                })
                .collect();
            (negated, *subquery, keys)
        }
        _ => unreachable!("position matched above"),
    };

    let kind = if negated { JoinKind::Anti } else { JoinKind::Semi };
    if condition.is_empty() {
        return Err((input, predicate));
    }
    let join = RelExpr::Join {
        kind,
        left: Box::new(input),
        right: Box::new(inner),
        condition: Some(ScalarExpr::and(condition)),
    };
    Ok(if conjuncts.is_empty() {
        join
    } else {
        RelExpr::Select { input: Box::new(join), predicate: ScalarExpr::and(conjuncts) }
    })
}

/// Analyze an EXISTS subquery for decorrelation against `outer`. Returns
/// the stripped inner relation, the correlated equi conjuncts, and the
/// remaining correlated conjuncts (residual, evaluated per candidate
/// pair) — or `None` when the shape is not safely decorrelatable.
fn exists_plan(
    subquery: &RelExpr,
    outer: &Schema,
) -> Option<(RelExpr, Vec<ScalarExpr>, Vec<ScalarExpr>)> {
    // Strip constant projections (the binder's `SELECT 1` / the vector
    // rewrite's remapped const) and aliases off the top.
    let mut cur = subquery;
    while let RelExpr::Project { input, .. } | RelExpr::Alias { input, .. } = cur {
        cur = input;
    }
    let (inner, pred) = match cur {
        RelExpr::Select { input, predicate } => ((**input).clone(), predicate.clone()),
        _ => return None,
    };
    // The inner source must be self-contained: no nested subqueries and
    // every column resolvable against its own schema (otherwise the hash
    // build would capture correlation).
    if has_subquery_rel(&inner) || !rel_self_contained(&inner) {
        return None;
    }
    let inner_schema = inner.schema();
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let mut keys = Vec::new();
    let mut inner_local = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        if refs_resolve_in(&c, &inner_schema) {
            inner_local.push(c);
            continue;
        }
        if let ScalarExpr::Cmp { op: hyperq_xtra::expr::CmpOp::Eq, left, right } = &c {
            let l_inner = refs_resolve_in(left, &inner_schema);
            let r_inner = refs_resolve_in(right, &inner_schema);
            let l_outer = refs_resolve_in(left, outer);
            let r_outer = refs_resolve_in(right, outer);
            if l_outer && r_inner && !l_inner {
                keys.push(c.clone());
                continue;
            }
            if r_outer && l_inner && !r_inner {
                keys.push(c.clone());
                continue;
            }
        }
        // Correlated non-equi (or mixed): only safe as a join residual if
        // it resolves against the combined scope.
        let combined = outer.join(&inner_schema);
        if refs_resolve_in_allow_sub(&c, &combined) {
            residual.push(c);
        } else {
            return None;
        }
    }
    if keys.is_empty() {
        // Without an equi key the semi join degenerates to a nested loop
        // over the full inner — no better than naive evaluation.
        return None;
    }
    let inner = if inner_local.is_empty() {
        inner
    } else {
        RelExpr::Select { input: Box::new(inner), predicate: ScalarExpr::and(inner_local) }
    };
    Some((inner, keys, residual))
}

/// Is `exprs [NOT] IN (subquery)` rewritable into a semi/anti join?
///
/// `IN` is always safe as a semi join in filter position. `NOT IN` is only
/// equivalent to an anti join when no key on either side can be NULL
/// (otherwise SQL's three-valued `NOT IN` yields UNKNOWN, not TRUE, for
/// unmatched rows).
fn in_subquery_decorrelatable(
    exprs: &[ScalarExpr],
    subquery: &RelExpr,
    negated: bool,
    outer: &Schema,
) -> bool {
    if has_subquery_rel(subquery) || !rel_self_contained(subquery) {
        return false;
    }
    if !exprs.iter().all(|e| refs_resolve_in(e, outer)) {
        return false;
    }
    if negated {
        let inner_nullable = subquery.schema().fields.iter().any(|f| f.nullable);
        let outer_nullable = exprs.iter().any(|e| match e {
            ScalarExpr::Column { qualifier, name, .. } => outer
                .try_resolve(qualifier.as_deref(), name)
                .ok()
                .flatten()
                .is_none_or(|i| outer.fields[i].nullable),
            ScalarExpr::Literal(d, _) => d.is_null(),
            _ => true,
        });
        if inner_nullable || outer_nullable {
            return false;
        }
    }
    true
}

fn has_subquery_rel(rel: &RelExpr) -> bool {
    let mut found = false;
    rel.visit(
        &mut |e| {
            if matches!(
                e,
                ScalarExpr::ScalarSubquery(_)
                    | ScalarExpr::Exists { .. }
                    | ScalarExpr::InSubquery { .. }
                    | ScalarExpr::QuantifiedCmp { .. }
            ) {
                found = true;
            }
        },
        &mut |_| {},
    );
    found
}

/// Every operator's expressions resolve against that operator's own
/// input schema(s): the relation carries no correlated (outer) references
/// and can safely serve as the build side of a hash semi/anti join.
fn rel_self_contained(rel: &RelExpr) -> bool {
    match rel {
        RelExpr::Get { .. } => true,
        RelExpr::Values { rows, .. } => rows
            .iter()
            .flatten()
            .all(|e| refs_resolve_in_or_no_columns(e, &Schema::empty())),
        RelExpr::Select { input, predicate } => {
            rel_self_contained(input)
                && refs_resolve_in_or_no_columns(predicate, &input.schema())
        }
        RelExpr::Project { input, exprs } => {
            let schema = input.schema();
            rel_self_contained(input)
                && exprs.iter().all(|(e, _)| refs_resolve_in_or_no_columns(e, &schema))
        }
        RelExpr::Window { input, exprs } => {
            let schema = input.schema();
            rel_self_contained(input)
                && exprs.iter().all(|w| {
                    w.arg
                        .as_ref()
                        .is_none_or(|a| refs_resolve_in_or_no_columns(a, &schema))
                        && w.partition_by
                            .iter()
                            .all(|p| refs_resolve_in_or_no_columns(p, &schema))
                        && w.order_by
                            .iter()
                            .all(|k| refs_resolve_in_or_no_columns(&k.expr, &schema))
                })
        }
        RelExpr::Join { left, right, condition, .. } => {
            let combined = left.schema().join(&right.schema());
            rel_self_contained(left)
                && rel_self_contained(right)
                && condition
                    .as_ref()
                    .is_none_or(|c| refs_resolve_in_or_no_columns(c, &combined))
        }
        RelExpr::Aggregate { input, group_by, aggs, .. } => {
            let schema = input.schema();
            rel_self_contained(input)
                && group_by
                    .iter()
                    .chain(aggs.iter())
                    .all(|(e, _)| refs_resolve_in_or_no_columns(e, &schema))
        }
        RelExpr::Sort { input, keys } => {
            let schema = input.schema();
            rel_self_contained(input)
                && keys
                    .iter()
                    .all(|k| refs_resolve_in_or_no_columns(&k.expr, &schema))
        }
        RelExpr::Distinct { input }
        | RelExpr::Limit { input, .. }
        | RelExpr::Alias { input, .. } => rel_self_contained(input),
        RelExpr::SetOp { left, right, .. } => {
            rel_self_contained(left) && rel_self_contained(right)
        }
    }
}

/// Every column in `e` resolves in `schema` (expressions without columns
/// trivially pass); subqueries have already been excluded by the caller.
fn refs_resolve_in_or_no_columns(e: &ScalarExpr, schema: &Schema) -> bool {
    let mut ok = true;
    e.visit(
        &mut |x| {
            if let ScalarExpr::Column { qualifier, name, .. } = x {
                if !matches!(schema.try_resolve(qualifier.as_deref(), name), Ok(Some(_))) {
                    ok = false;
                }
            }
        },
        &mut |_| {},
    );
    ok
}

/// Like [`refs_resolve_in`] but tolerant of subqueries (not used for hash
/// keys, only for residual classification where per-pair evaluation is
/// fine).
fn refs_resolve_in_allow_sub(e: &ScalarExpr, schema: &Schema) -> bool {
    let mut ok = true;
    e.visit(
        &mut |x| {
            if let ScalarExpr::Column { qualifier, name, .. } = x {
                if !matches!(schema.try_resolve(qualifier.as_deref(), name), Ok(Some(_))) {
                    ok = false;
                }
            }
        },
        &mut |_| {},
    );
    ok
}

/// Returns the rewritten tree and whether anything actually moved.
fn push_into_join(
    _kind: JoinKind,
    left: Box<RelExpr>,
    right: Box<RelExpr>,
    condition: Option<ScalarExpr>,
    predicate: ScalarExpr,
) -> (RelExpr, bool) {
    let lschema = left.schema();
    let rschema = right.schema();
    let combined = lschema.join(&rschema);

    let mut pred_conjuncts = Vec::new();
    flatten_and(predicate, &mut pred_conjuncts);
    let n_pred = pred_conjuncts.len();
    let mut cond_conjuncts = Vec::new();
    if let Some(c) = condition {
        flatten_and(c, &mut cond_conjuncts);
    }

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut join_preds = Vec::new();
    let mut residual = Vec::new();
    let mut moved = false;
    for (i, c) in pred_conjuncts
        .into_iter()
        .chain(cond_conjuncts)
        .enumerate()
    {
        let from_predicate = i < n_pred;
        if refs_resolve_in(&c, &lschema) {
            moved = true;
            left_preds.push(c);
        } else if refs_resolve_in(&c, &rschema) {
            moved = true;
            right_preds.push(c);
        } else if refs_resolve_in(&c, &combined) {
            if from_predicate {
                moved = true;
            }
            join_preds.push(c);
        } else {
            // Correlated or subquery-bearing: evaluate above the join.
            residual.push(c);
        }
    }

    let wrap = |rel: Box<RelExpr>, preds: Vec<ScalarExpr>| -> Box<RelExpr> {
        if preds.is_empty() {
            rel
        } else {
            Box::new(RelExpr::Select { input: rel, predicate: ScalarExpr::and(preds) })
        }
    };
    let join = RelExpr::Join {
        kind: if join_preds.is_empty() { JoinKind::Cross } else { JoinKind::Inner },
        left: wrap(left, left_preds),
        right: wrap(right, right_preds),
        condition: if join_preds.is_empty() {
            None
        } else {
            Some(ScalarExpr::and(join_preds))
        },
    };
    let out = if residual.is_empty() {
        join
    } else {
        RelExpr::Select { input: Box::new(join), predicate: ScalarExpr::and(residual) }
    };
    (out, moved)
}

fn flatten_and(e: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::BoolExpr { op: BoolOp::And, args } => {
            for a in args {
                flatten_and(a, out);
            }
        }
        other => out.push(other),
    }
}

/// True when the conjunct can be evaluated given only `schema`: every
/// column resolves there and there are no subqueries (whose correlation we
/// cannot cheaply analyze).
fn refs_resolve_in(e: &ScalarExpr, schema: &Schema) -> bool {
    let mut ok = true;
    e.visit(
        &mut |x| match x {
            ScalarExpr::Column { qualifier, name, .. }
                if !matches!(schema.try_resolve(qualifier.as_deref(), name), Ok(Some(_))) => {
                    ok = false;
                }
            ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::QuantifiedCmp { .. } => ok = false,
            _ => {}
        },
        &mut |_| {},
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::expr::CmpOp;
    use hyperq_xtra::schema::Field;
    use hyperq_xtra::types::SqlType;

    fn get(name: &str, col: &str) -> RelExpr {
        RelExpr::Get {
            table: name.to_string(),
            alias: Some(name.to_string()),
            schema: Schema::new(vec![Field::new(Some(name), col, SqlType::Integer, true)]),
        }
    }

    #[test]
    fn cross_join_with_equi_filter_becomes_inner_join() {
        let sel = RelExpr::Select {
            input: Box::new(RelExpr::Join {
                kind: JoinKind::Cross,
                left: Box::new(get("A", "X")),
                right: Box::new(get("B", "Y")),
                condition: None,
            }),
            predicate: ScalarExpr::and(vec![
                ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::column(Some("A"), "X", SqlType::Integer),
                    ScalarExpr::column(Some("B"), "Y", SqlType::Integer),
                ),
                ScalarExpr::cmp(
                    CmpOp::Gt,
                    ScalarExpr::column(Some("A"), "X", SqlType::Integer),
                    ScalarExpr::int(5),
                ),
            ]),
        };
        let opt = optimize(sel);
        match opt {
            RelExpr::Join { kind: JoinKind::Inner, left, condition: Some(_), .. } => {
                assert!(
                    matches!(*left, RelExpr::Select { .. }),
                    "single-side filter pushed below the join"
                );
            }
            other => panic!("expected inner join, got {other:?}"),
        }
    }

    #[test]
    fn correlated_conjunct_stays_above() {
        let sub = RelExpr::Values { rows: vec![], schema: Schema::empty() };
        let sel = RelExpr::Select {
            input: Box::new(RelExpr::Join {
                kind: JoinKind::Cross,
                left: Box::new(get("A", "X")),
                right: Box::new(get("B", "Y")),
                condition: None,
            }),
            predicate: ScalarExpr::Exists { subquery: Box::new(sub), negated: false },
        };
        match optimize(sel) {
            RelExpr::Select { input, .. } => {
                assert!(matches!(*input, RelExpr::Join { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_comma_joins_fully_pushed() {
        // σ[a=b ∧ b=c](A × B × C) — both equi conjuncts become join
        // conditions after the fixed-point loop.
        let abc = RelExpr::Join {
            kind: JoinKind::Cross,
            left: Box::new(RelExpr::Join {
                kind: JoinKind::Cross,
                left: Box::new(get("A", "X")),
                right: Box::new(get("B", "Y")),
                condition: None,
            }),
            right: Box::new(get("C", "Z")),
            condition: None,
        };
        let sel = RelExpr::Select {
            input: Box::new(abc),
            predicate: ScalarExpr::and(vec![
                ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::column(Some("A"), "X", SqlType::Integer),
                    ScalarExpr::column(Some("B"), "Y", SqlType::Integer),
                ),
                ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::column(Some("B"), "Y", SqlType::Integer),
                    ScalarExpr::column(Some("C"), "Z", SqlType::Integer),
                ),
            ]),
        };
        let opt = optimize(sel);
        // No Select directly above a cross join may remain.
        let mut bad = false;
        opt.visit(&mut |_| {}, &mut |r| {
            if let RelExpr::Select { input, .. } = r {
                if matches!(**input, RelExpr::Join { kind: JoinKind::Cross, .. }) {
                    bad = true;
                }
            }
        });
        assert!(!bad, "{opt:?}");
    }
}
