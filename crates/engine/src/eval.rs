//! Scalar expression evaluation with SQL three-valued logic.

use hyperq_xtra::datum::{add_months, ymd_from_date, Datum, Decimal};
use hyperq_xtra::expr::{
    AggFunc, ArithOp, BoolOp, CmpOp, DateField, Quantifier, ScalarExpr, ScalarFunc,
};
use hyperq_xtra::schema::Schema;
use hyperq_xtra::types::SqlType;
use hyperq_xtra::Row;

use crate::db::EngineDb;
use crate::exec::execute_rel;

/// Evaluation error.
pub type EvalError = String;
pub type EvalResult = Result<Datum, EvalError>;

/// A stack of (schema, row) scopes, innermost last: the evaluator resolves
/// column references innermost-first, which is what makes correlated
/// subqueries work.
pub struct EvalContext<'a> {
    pub db: &'a EngineDb,
    pub scopes: Vec<(&'a Schema, &'a Row)>,
}

impl<'a> EvalContext<'a> {
    pub fn new(db: &'a EngineDb) -> Self {
        EvalContext { db, scopes: Vec::new() }
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> EvalResult {
        for (schema, row) in self.scopes.iter().rev() {
            if let Ok(Some(i)) = schema.try_resolve(qualifier, name) {
                return Ok(row[i].clone());
            }
        }
        Err(format!(
            "column {}{name} not found at execution time",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default()
        ))
    }
}

/// Evaluate an expression to a datum.
pub fn eval(e: &ScalarExpr, ctx: &mut EvalContext<'_>) -> EvalResult {
    match e {
        ScalarExpr::Column { qualifier, name, .. } => {
            ctx.resolve(qualifier.as_deref(), name)
        }
        ScalarExpr::Literal(d, _) => Ok(d.clone()),
        ScalarExpr::Arith { op, left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            match op {
                ArithOp::Add => l.add(&r),
                ArithOp::Sub => l.sub(&r),
                ArithOp::Mul => l.mul(&r),
                ArithOp::Div => l.div(&r),
                ArithOp::Mod => l.rem(&r),
                ArithOp::Pow => l.pow(&r),
            }
            .map_err(|e| e.0)
        }
        ScalarExpr::Neg(inner) => eval(inner, ctx)?.neg().map_err(|e| e.0),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            Ok(truth(cmp_datums(*op, &l, &r)))
        }
        ScalarExpr::BoolExpr { op, args } => {
            let mut saw_null = false;
            for a in args {
                match eval_truth(a, ctx)? {
                    Some(true) if *op == BoolOp::Or => return Ok(Datum::Bool(true)),
                    Some(false) if *op == BoolOp::And => return Ok(Datum::Bool(false)),
                    None => saw_null = true,
                    _ => {}
                }
            }
            Ok(if saw_null {
                Datum::Null
            } else {
                Datum::Bool(*op == BoolOp::And)
            })
        }
        ScalarExpr::Not(inner) => Ok(truth(eval_truth(inner, ctx)?.map(|b| !b))),
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
        ScalarExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            match (v, p) {
                (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                (Datum::Str(s), Datum::Str(pat)) => {
                    Ok(Datum::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(format!(
                    "LIKE requires strings, got {} and {}",
                    a.sql_type(),
                    b.sql_type()
                )),
            }
        }
        ScalarExpr::InList { expr, list, negated } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            for item in list {
                let i = eval(item, ctx)?;
                if i.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&i) {
                    return Ok(Datum::Bool(!*negated));
                }
            }
            Ok(if saw_null { Datum::Null } else { Datum::Bool(*negated) })
        }
        ScalarExpr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            let ge = cmp_datums(CmpOp::Ge, &v, &lo);
            let le = cmp_datums(CmpOp::Le, &v, &hi);
            let r = match (ge, le) {
                (Some(a), Some(b)) => Some(a && b),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            };
            Ok(truth(r.map(|b| b != *negated)))
        }
        ScalarExpr::Case { operand, branches, else_expr } => {
            let op_val = operand.as_ref().map(|o| eval(o, ctx)).transpose()?;
            for (cond, result) in branches {
                let matched = match &op_val {
                    Some(v) => {
                        let c = eval(cond, ctx)?;
                        !v.is_null() && v.sql_eq(&c)
                    }
                    None => eval_truth(cond, ctx)? == Some(true),
                };
                if matched {
                    return eval(result, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, ctx),
                None => Ok(Datum::Null),
            }
        }
        ScalarExpr::Cast { expr, ty } => {
            eval(expr, ctx)?.cast_to(ty).map_err(|e| e.0)
        }
        ScalarExpr::Extract { field, expr } => {
            let v = eval(expr, ctx)?;
            extract_field(*field, &v)
        }
        ScalarExpr::Func { func, args } => eval_func(func, args, ctx),
        ScalarExpr::Agg { .. } => Err(
            "aggregate reference escaped the Aggregate operator (binder bug)".to_string(),
        ),
        ScalarExpr::ScalarSubquery(rel) => {
            let rows = execute_subquery(rel, ctx)?;
            match rows.len() {
                0 => Ok(Datum::Null),
                1 => Ok(rows[0][0].clone()),
                n => Err(format!("scalar subquery returned {n} rows")),
            }
        }
        ScalarExpr::Exists { subquery, negated } => {
            let rows = execute_subquery(subquery, ctx)?;
            Ok(Datum::Bool(rows.is_empty() == *negated))
        }
        ScalarExpr::InSubquery { exprs, subquery, negated } => {
            let left: Vec<Datum> = exprs
                .iter()
                .map(|e| eval(e, ctx))
                .collect::<Result<_, _>>()?;
            let rows = execute_subquery(subquery, ctx)?;
            let mut saw_null = false;
            for row in &rows {
                match rows_equal(&left, row) {
                    Some(true) => return Ok(Datum::Bool(!*negated)),
                    None => saw_null = true,
                    Some(false) => {}
                }
            }
            Ok(if saw_null { Datum::Null } else { Datum::Bool(*negated) })
        }
        ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } => {
            let l: Vec<Datum> = left
                .iter()
                .map(|e| eval(e, ctx))
                .collect::<Result<_, _>>()?;
            let rows = execute_subquery(subquery, ctx)?;
            let mut saw_null = false;
            match quantifier {
                Quantifier::Any => {
                    for row in &rows {
                        match rows_cmp(*op, &l, row) {
                            Some(true) => return Ok(Datum::Bool(true)),
                            None => saw_null = true,
                            Some(false) => {}
                        }
                    }
                    Ok(if saw_null { Datum::Null } else { Datum::Bool(false) })
                }
                Quantifier::All => {
                    for row in &rows {
                        match rows_cmp(*op, &l, row) {
                            Some(false) => return Ok(Datum::Bool(false)),
                            None => saw_null = true,
                            Some(true) => {}
                        }
                    }
                    Ok(if saw_null { Datum::Null } else { Datum::Bool(true) })
                }
            }
        }
    }
}

fn execute_subquery(rel: &hyperq_xtra::rel::RelExpr, ctx: &mut EvalContext<'_>) -> Result<Vec<Row>, EvalError> {
    execute_rel(rel, ctx.db, &ctx.scopes)
}

/// Evaluate a predicate to SQL truth: `Some(bool)` or `None` for UNKNOWN.
pub fn eval_truth(e: &ScalarExpr, ctx: &mut EvalContext<'_>) -> Result<Option<bool>, EvalError> {
    match eval(e, ctx)? {
        Datum::Null => Ok(None),
        Datum::Bool(b) => Ok(Some(b)),
        other => Err(format!(
            "predicate evaluated to non-boolean {}",
            other.sql_type()
        )),
    }
}

fn truth(v: Option<bool>) -> Datum {
    match v {
        Some(b) => Datum::Bool(b),
        None => Datum::Null,
    }
}

/// Three-valued comparison of two datums.
pub fn cmp_datums(op: CmpOp, l: &Datum, r: &Datum) -> Option<bool> {
    let ord = l.sql_cmp(r)?;
    Some(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// Row equality under 3VL.
fn rows_equal(l: &[Datum], r: &[Datum]) -> Option<bool> {
    let mut saw_null = false;
    for (a, b) in l.iter().zip(r.iter()) {
        match cmp_datums(CmpOp::Eq, a, b) {
            Some(false) => return Some(false),
            None => saw_null = true,
            Some(true) => {}
        }
    }
    if saw_null {
        None
    } else {
        Some(true)
    }
}

/// Lexicographic row comparison under 3VL (vector subquery semantics).
fn rows_cmp(op: CmpOp, l: &[Datum], r: &[Datum]) -> Option<bool> {
    match op {
        CmpOp::Eq => rows_equal(l, r),
        CmpOp::Ne => rows_equal(l, r).map(|b| !b),
        _ => {
            // Lexicographic: find the first differing component.
            for (a, b) in l.iter().zip(r.iter()) {
                let ord = a.sql_cmp(b)?;
                if ord != std::cmp::Ordering::Equal {
                    return Some(match op {
                        CmpOp::Lt | CmpOp::Le => ord == std::cmp::Ordering::Less,
                        CmpOp::Gt | CmpOp::Ge => ord == std::cmp::Ordering::Greater,
                        _ => unreachable!("eq/ne handled above"),
                    });
                }
            }
            Some(matches!(op, CmpOp::Le | CmpOp::Ge))
        }
    }
}

fn extract_field(field: DateField, v: &Datum) -> EvalResult {
    if v.is_null() {
        return Ok(Datum::Null);
    }
    let (days, time_micros) = match v {
        Datum::Date(d) => (*d, 0i64),
        Datum::Timestamp(t) => (
            t.div_euclid(86_400_000_000) as i32,
            t.rem_euclid(86_400_000_000),
        ),
        other => {
            return Err(format!(
                "EXTRACT requires a date/timestamp, got {}",
                other.sql_type()
            ))
        }
    };
    let (y, m, d) = ymd_from_date(days);
    Ok(Datum::Int(match field {
        DateField::Year => y as i64,
        DateField::Month => m as i64,
        DateField::Day => d as i64,
        DateField::Hour => time_micros / 3_600_000_000,
        DateField::Minute => (time_micros / 60_000_000) % 60,
        DateField::Second => (time_micros / 1_000_000) % 60,
    }))
}

/// SQL LIKE matching (`%` any sequence, `_` any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Consume runs of %.
                let rest = &p[1..];
                (0..=s.len()).any(|k| rec(&s[k..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

fn eval_func(func: &ScalarFunc, args: &[ScalarExpr], ctx: &mut EvalContext<'_>) -> EvalResult {
    let vals: Vec<Datum> = args
        .iter()
        .map(|a| eval(a, ctx))
        .collect::<Result<_, _>>()?;
    // COALESCE is the only function that tolerates leading NULLs.
    if matches!(func, ScalarFunc::Coalesce) {
        for v in &vals {
            if !v.is_null() {
                return Ok(v.clone());
            }
        }
        return Ok(Datum::Null);
    }
    if matches!(func, ScalarFunc::Concat) {
        if vals.iter().any(hyperq_xtra::Datum::is_null) {
            return Ok(Datum::Null);
        }
        let mut out = String::new();
        for v in &vals {
            out.push_str(&v.to_sql_string());
        }
        return Ok(Datum::str(out));
    }
    // NULL propagation for everything else.
    if vals.iter().any(hyperq_xtra::Datum::is_null)
        && !matches!(func, ScalarFunc::CurrentDate | ScalarFunc::CurrentTimestamp)
    {
        return Ok(Datum::Null);
    }
    let str_arg = |i: usize| -> Result<&str, EvalError> {
        match &vals[i] {
            Datum::Str(s) => Ok(s),
            other => Err(format!(
                "{} requires a string argument, got {}",
                func.name(),
                other.sql_type()
            )),
        }
    };
    let int_arg = |i: usize| -> Result<i64, EvalError> {
        vals[i]
            .to_i64()
            .ok_or_else(|| format!("{} requires an integer argument", func.name()))
    };
    let f64_arg = |i: usize| -> Result<f64, EvalError> {
        vals[i]
            .to_f64()
            .ok_or_else(|| format!("{} requires a numeric argument", func.name()))
    };
    Ok(match func {
        ScalarFunc::Upper => Datum::str(str_arg(0)?.to_uppercase()),
        ScalarFunc::Lower => Datum::str(str_arg(0)?.to_lowercase()),
        ScalarFunc::Trim => Datum::str(str_arg(0)?.trim()),
        ScalarFunc::Ltrim => Datum::str(str_arg(0)?.trim_start()),
        ScalarFunc::Rtrim => Datum::str(str_arg(0)?.trim_end()),
        ScalarFunc::Substring => {
            let s = str_arg(0)?;
            let chars: Vec<char> = s.chars().collect();
            let start = int_arg(1)?.max(1) as usize - 1;
            let len = if vals.len() > 2 {
                int_arg(2)?.max(0) as usize
            } else {
                chars.len().saturating_sub(start)
            };
            Datum::str(
                chars
                    .iter()
                    .skip(start)
                    .take(len)
                    .collect::<String>(),
            )
        }
        ScalarFunc::CharLength => {
            Datum::Int(str_arg(0)?.chars().count() as i64)
        }
        ScalarFunc::Position => {
            let sub = str_arg(0)?;
            let s = str_arg(1)?;
            Datum::Int(match s.find(sub) {
                Some(byte_pos) => (s[..byte_pos].chars().count() + 1) as i64,
                None => 0,
            })
        }
        ScalarFunc::Coalesce | ScalarFunc::Concat => unreachable!("handled above"),
        ScalarFunc::NullIf => {
            if vals[0].sql_eq(&vals[1]) {
                Datum::Null
            } else {
                vals[0].clone()
            }
        }
        ScalarFunc::Abs => match &vals[0] {
            Datum::Int(v) => Datum::Int(v.abs()),
            Datum::Double(v) => Datum::Double(v.abs()),
            Datum::Dec(d) => Datum::Dec(Decimal::new(d.mantissa.abs(), d.scale)),
            other => return Err(format!("ABS of {}", other.sql_type())),
        },
        ScalarFunc::Round => {
            let scale = if vals.len() > 1 { int_arg(1)? } else { 0 };
            match &vals[0] {
                Datum::Int(v) => Datum::Int(*v),
                Datum::Dec(d) => Datum::Dec(d.rescale(scale.clamp(0, 30) as u8)),
                Datum::Double(v) => {
                    let f = 10f64.powi(scale as i32);
                    Datum::Double((v * f).round() / f)
                }
                other => return Err(format!("ROUND of {}", other.sql_type())),
            }
        }
        ScalarFunc::Floor => Datum::Double(f64_arg(0)?.floor()),
        ScalarFunc::Ceil => Datum::Double(f64_arg(0)?.ceil()),
        ScalarFunc::Sqrt => Datum::Double(f64_arg(0)?.sqrt()),
        ScalarFunc::Exp => Datum::Double(f64_arg(0)?.exp()),
        ScalarFunc::Ln => {
            let v = f64_arg(0)?;
            if v <= 0.0 {
                return Err("LN of non-positive value".to_string());
            }
            Datum::Double(v.ln())
        }
        ScalarFunc::Power => Datum::Double(f64_arg(0)?.powf(f64_arg(1)?)),
        ScalarFunc::Mod => {
            let (a, b) = (int_arg(0)?, int_arg(1)?);
            if b == 0 {
                return Err("MOD by zero".to_string());
            }
            Datum::Int(a % b)
        }
        ScalarFunc::AddMonths => match &vals[0] {
            Datum::Date(d) => Datum::Date(add_months(*d, int_arg(1)? as i32)),
            other => return Err(format!("ADD_MONTHS of {}", other.sql_type())),
        },
        ScalarFunc::DateAddDays => match &vals[0] {
            Datum::Date(d) => Datum::Date(d + int_arg(1)? as i32),
            other => return Err(format!("date add of {}", other.sql_type())),
        },
        ScalarFunc::CurrentDate => {
            Datum::Date((now_micros() / 86_400_000_000) as i32)
        }
        ScalarFunc::CurrentTimestamp => Datum::Timestamp(now_micros()),
        ScalarFunc::Other(name) => {
            return Err(format!("unknown function {name} at execution time"))
        }
    })
}

fn now_micros() -> i64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as i64)
}

/// Accumulator for one aggregate function.
pub enum AggState {
    Count(i64),
    CountDistinct(std::collections::HashSet<Datum>),
    Sum(Option<Datum>),
    SumDistinct(std::collections::HashSet<Datum>),
    Min(Option<Datum>),
    Max(Option<Datum>),
    Avg { sum: Option<Datum>, n: i64, result_ty: SqlType },
    AvgDistinct { set: std::collections::HashSet<Datum>, result_ty: SqlType },
}

impl AggState {
    pub fn new(func: AggFunc, distinct: bool, result_ty: SqlType) -> AggState {
        match (func, distinct) {
            (AggFunc::Count | AggFunc::CountStar, false) => AggState::Count(0),
            (AggFunc::Count | AggFunc::CountStar, true) => {
                AggState::CountDistinct(Default::default())
            }
            (AggFunc::Sum, false) => AggState::Sum(None),
            (AggFunc::Sum, true) => AggState::SumDistinct(Default::default()),
            (AggFunc::Min, _) => AggState::Min(None),
            (AggFunc::Max, _) => AggState::Max(None),
            (AggFunc::Avg, false) => AggState::Avg { sum: None, n: 0, result_ty },
            (AggFunc::Avg, true) => {
                AggState::AvgDistinct { set: Default::default(), result_ty }
            }
        }
    }

    /// Feed one input value (`None` for `COUNT(*)`).
    pub fn update(&mut self, v: Option<&Datum>) -> Result<(), EvalError> {
        match self {
            AggState::Count(n) => match v {
                None => *n += 1,
                Some(d) if !d.is_null() => *n += 1,
                _ => {}
            },
            AggState::CountDistinct(set) => {
                if let Some(d) = v {
                    if !d.is_null() {
                        set.insert(d.clone());
                    }
                }
            }
            AggState::Sum(acc) => {
                if let Some(d) = v {
                    if !d.is_null() {
                        *acc = Some(match acc.take() {
                            Some(prev) => prev.add(d).map_err(|e| e.0)?,
                            None => d.clone(),
                        });
                    }
                }
            }
            AggState::SumDistinct(set) | AggState::AvgDistinct { set, .. } => {
                if let Some(d) = v {
                    if !d.is_null() {
                        set.insert(d.clone());
                    }
                }
            }
            AggState::Min(acc) => {
                if let Some(d) = v {
                    if !d.is_null() {
                        let replace = match acc {
                            Some(prev) => d.sql_cmp(prev) == Some(std::cmp::Ordering::Less),
                            None => true,
                        };
                        if replace {
                            *acc = Some(d.clone());
                        }
                    }
                }
            }
            AggState::Max(acc) => {
                if let Some(d) = v {
                    if !d.is_null() {
                        let replace = match acc {
                            Some(prev) => d.sql_cmp(prev) == Some(std::cmp::Ordering::Greater),
                            None => true,
                        };
                        if replace {
                            *acc = Some(d.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, n, .. } => {
                if let Some(d) = v {
                    if !d.is_null() {
                        *sum = Some(match sum.take() {
                            Some(prev) => prev.add(d).map_err(|e| e.0)?,
                            None => d.clone(),
                        });
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(self) -> Result<Datum, EvalError> {
        Ok(match self {
            AggState::Count(n) => Datum::Int(n),
            AggState::CountDistinct(set) => Datum::Int(set.len() as i64),
            AggState::Sum(acc) => acc.unwrap_or(Datum::Null),
            AggState::SumDistinct(set) => {
                let mut acc: Option<Datum> = None;
                for d in set {
                    acc = Some(match acc.take() {
                        Some(prev) => prev.add(&d).map_err(|e| e.0)?,
                        None => d,
                    });
                }
                acc.unwrap_or(Datum::Null)
            }
            AggState::Min(acc) | AggState::Max(acc) => acc.unwrap_or(Datum::Null),
            AggState::Avg { sum, n, result_ty } => {
                avg_result(sum, n, &result_ty)?
            }
            AggState::AvgDistinct { set, result_ty } => {
                let n = set.len() as i64;
                let mut acc: Option<Datum> = None;
                for d in set {
                    acc = Some(match acc.take() {
                        Some(prev) => prev.add(&d).map_err(|e| e.0)?,
                        None => d,
                    });
                }
                avg_result(acc, n, &result_ty)?
            }
        })
    }
}

fn avg_result(sum: Option<Datum>, n: i64, result_ty: &SqlType) -> Result<Datum, EvalError> {
    match (sum, n) {
        (None, _) | (_, 0) => Ok(Datum::Null),
        (Some(s), n) => {
            let q = match &s {
                Datum::Dec(_) => s.div(&Datum::Dec(Decimal::from_int(n))).map_err(|e| e.0)?,
                _ => Datum::Double(
                    s.to_f64().ok_or("AVG of non-numeric values")? / n as f64,
                ),
            };
            q.cast_to(result_ty).or(Ok(q)).map_err(|e: hyperq_xtra::ValueError| e.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("special offer", "%special%"));
    }

    #[test]
    fn agg_sum_ignores_nulls() {
        let mut s = AggState::new(AggFunc::Sum, false, SqlType::Integer);
        s.update(Some(&Datum::Int(1))).unwrap();
        s.update(Some(&Datum::Null)).unwrap();
        s.update(Some(&Datum::Int(4))).unwrap();
        assert_eq!(s.finish().unwrap(), Datum::Int(5));
    }

    #[test]
    fn agg_sum_of_all_nulls_is_null() {
        let mut s = AggState::new(AggFunc::Sum, false, SqlType::Integer);
        s.update(Some(&Datum::Null)).unwrap();
        assert_eq!(s.finish().unwrap(), Datum::Null);
    }

    #[test]
    fn agg_count_star_vs_count_col() {
        let mut star = AggState::new(AggFunc::CountStar, false, SqlType::Integer);
        star.update(None).unwrap();
        star.update(None).unwrap();
        assert_eq!(star.finish().unwrap(), Datum::Int(2));
        let mut col = AggState::new(AggFunc::Count, false, SqlType::Integer);
        col.update(Some(&Datum::Int(1))).unwrap();
        col.update(Some(&Datum::Null)).unwrap();
        assert_eq!(col.finish().unwrap(), Datum::Int(1));
    }

    #[test]
    fn agg_count_distinct() {
        let mut s = AggState::new(AggFunc::Count, true, SqlType::Integer);
        for v in [1, 2, 2, 3, 3, 3] {
            s.update(Some(&Datum::Int(v))).unwrap();
        }
        assert_eq!(s.finish().unwrap(), Datum::Int(3));
    }

    #[test]
    fn agg_avg_decimal_exact() {
        let mut s = AggState::new(
            AggFunc::Avg,
            false,
            SqlType::Decimal { precision: 38, scale: 8 },
        );
        s.update(Some(&Datum::Dec(Decimal::parse("1.00").unwrap())))
            .unwrap();
        s.update(Some(&Datum::Dec(Decimal::parse("2.00").unwrap())))
            .unwrap();
        match s.finish().unwrap() {
            Datum::Dec(d) => assert_eq!(d.to_f64(), 1.5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rows_cmp_lexicographic() {
        let l = vec![Datum::Int(5), Datum::Int(1)];
        assert_eq!(rows_cmp(CmpOp::Gt, &l, &[Datum::Int(4), Datum::Int(9)]), Some(true));
        assert_eq!(rows_cmp(CmpOp::Gt, &l, &[Datum::Int(5), Datum::Int(0)]), Some(true));
        assert_eq!(rows_cmp(CmpOp::Gt, &l, &[Datum::Int(5), Datum::Int(1)]), Some(false));
        assert_eq!(rows_cmp(CmpOp::Ge, &l, &[Datum::Int(5), Datum::Int(1)]), Some(true));
        assert_eq!(
            rows_cmp(CmpOp::Gt, &l, &[Datum::Int(5), Datum::Null]),
            None
        );
    }
}
