//! Relational operator execution.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use hyperq_xtra::datum::Datum;
use hyperq_xtra::expr::{CmpOp, ScalarExpr, SortExpr, WindowFuncKind};
use hyperq_xtra::rel::{Grouping, JoinKind, RelExpr, SetOpKind};
use hyperq_xtra::schema::Schema;
use hyperq_xtra::Row;

use crate::db::EngineDb;
use crate::eval::{eval, eval_truth, AggState, EvalContext, EvalError};

type Scopes<'a> = [(&'a Schema, &'a Row)];

/// Rough heap footprint of one materialized row of `width` columns: the
/// `Vec<Datum>` header plus a per-datum estimate. Deliberately coarse —
/// the governor ledger wants an early, cheap bound, not an allocator.
fn row_bytes(width: usize) -> u64 {
    48 + 24 * width as u64
}

/// Charge an operator's materialized output to the statement's resource
/// ledger (no-op without an installed governor). A denied charge cancels
/// the statement, surfacing the budget error instead of an engine OOM.
fn charge_rows(rows: &[Row]) -> Result<(), EvalError> {
    if rows.is_empty() {
        return Ok(());
    }
    let width = rows[0].len();
    hyperq_governor::charge(rows.len() as u64 * row_bytes(width)).map_err(|c| c.to_string())
}

/// Incremental governor accounting inside a single operator's row loop:
/// charges and checkpoints every `BATCH` produced rows, so a huge cross
/// join is cancelled (or budget-killed) *mid-materialization* instead of
/// after it has already allocated everything.
struct ChargeTicker {
    pending: u64,
    row_bytes: u64,
}

impl ChargeTicker {
    const BATCH: u64 = 1024;

    fn new(width: usize) -> ChargeTicker {
        ChargeTicker { pending: 0, row_bytes: row_bytes(width) }
    }

    fn produced(&mut self) -> Result<(), EvalError> {
        self.pending += 1;
        if self.pending >= Self::BATCH {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), EvalError> {
        if self.pending > 0 {
            hyperq_governor::charge(self.pending * self.row_bytes)
                .map_err(|c| c.to_string())?;
            self.pending = 0;
        }
        hyperq_governor::checkpoint().map_err(|c| c.to_string())
    }
}

/// Execute a relational tree, with `outer` scopes available for correlated
/// column references.
pub fn execute_rel(
    rel: &RelExpr,
    db: &EngineDb,
    outer: &Scopes<'_>,
) -> Result<Vec<Row>, EvalError> {
    // Cooperative cancellation at every operator boundary; joins and
    // aggregates additionally tick inside their row loops.
    hyperq_governor::checkpoint().map_err(|c| c.to_string())?;
    let out = match rel {
        RelExpr::Get { table, .. } => {
            let data = db.scan(table)?;
            Ok(data.iter().cloned().collect())
        }
        RelExpr::Values { rows, .. } => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut ctx = EvalContext { db, scopes: outer.to_vec() };
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(eval(e, &mut ctx)?);
                }
                out.push(vals);
            }
            Ok(out)
        }
        RelExpr::Select { input, predicate } => {
            let schema = input.schema();
            let rows = execute_rel(input, db, outer)?;
            let mut out = Vec::new();
            for row in rows {
                let mut scopes = outer.to_vec();
                scopes.push((&schema, &row));
                let mut ctx = EvalContext { db, scopes };
                if eval_truth(predicate, &mut ctx)? == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        RelExpr::Project { input, exprs } => {
            let schema = input.schema();
            let rows = execute_rel(input, db, outer)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut scopes = outer.to_vec();
                scopes.push((&schema, &row));
                let mut ctx = EvalContext { db, scopes };
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(eval(e, &mut ctx)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        RelExpr::Window { input, exprs } => {
            execute_window(input, exprs, db, outer)
        }
        RelExpr::Join { kind, left, right, condition } => {
            execute_join(*kind, left, right, condition.as_ref(), db, outer)
        }
        RelExpr::Aggregate { input, group_by, grouping, aggs } => {
            if matches!(grouping, Grouping::Sets(_)) {
                // SimWH truthfully lacks OLAP grouping extensions; Hyper-Q's
                // expansion rule must fire before SQL reaches the engine.
                return Err("GROUPING SETS are not supported by this warehouse".to_string());
            }
            execute_aggregate(input, group_by, aggs, db, outer)
        }
        RelExpr::Distinct { input } => {
            let rows = execute_rel(input, db, outer)?;
            let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
            Ok(rows.into_iter().filter(|r| seen.insert(r.clone())).collect())
        }
        RelExpr::Sort { input, keys } => {
            let schema = input.schema();
            let rows = execute_rel(input, db, outer)?;
            sort_rows(rows, &schema, keys, db, outer)
        }
        RelExpr::Limit { input, limit, offset, with_ties } => {
            if *with_ties {
                return Err("FETCH ... WITH TIES is not supported by this warehouse".to_string());
            }
            let mut rows = execute_rel(input, db, outer)?;
            let start = (*offset as usize).min(rows.len());
            rows.drain(..start);
            if let Some(n) = limit {
                rows.truncate(*n as usize);
            }
            Ok(rows)
        }
        RelExpr::SetOp { kind, all, left, right } => {
            let l = execute_rel(left, db, outer)?;
            let r = execute_rel(right, db, outer)?;
            Ok(execute_setop(*kind, *all, l, r))
        }
        RelExpr::Alias { input, .. } => execute_rel(input, db, outer),
    }?;
    // Joins charge incrementally while producing (see ChargeTicker);
    // every other operator charges its materialized output here, once.
    if !matches!(rel, RelExpr::Join { .. }) {
        charge_rows(&out)?;
    }
    Ok(out)
}

/// Sort rows by the given keys. NULL placement defaults to "NULLs high"
/// (last ascending, first descending) — deliberately *different* from
/// Teradata, so the explicit-NULL-ordering rewrite is observable.
pub fn sort_rows(
    rows: Vec<Row>,
    schema: &Schema,
    keys: &[SortExpr],
    db: &EngineDb,
    outer: &Scopes<'_>,
) -> Result<Vec<Row>, EvalError> {
    let mut keyed: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut scopes = outer.to_vec();
        scopes.push((schema, &row));
        let mut ctx = EvalContext { db, scopes };
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(eval(&k.expr, &mut ctx)?);
        }
        keyed.push((kv, row));
    }
    keyed.sort_by(|(a, _), (b, _)| compare_key_rows(a, b, keys));
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Compare two pre-computed key vectors.
pub fn compare_key_rows(a: &[Datum], b: &[Datum], keys: &[SortExpr]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let nulls_first = k.nulls_first.unwrap_or(k.desc);
        let ord = match (a[i].is_null(), b[i].is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = a[i].sql_cmp(&b[i]).unwrap_or(Ordering::Equal);
                if k.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

// ---------------------------------------------------------------------------
// Window functions
// ---------------------------------------------------------------------------

fn execute_window(
    input: &RelExpr,
    exprs: &[hyperq_xtra::expr::WindowExpr],
    db: &EngineDb,
    outer: &Scopes<'_>,
) -> Result<Vec<Row>, EvalError> {
    let schema = input.schema();
    let rows = execute_rel(input, db, outer)?;
    let n = rows.len();
    // Each window function appends one column; computed independently.
    let mut appended: Vec<Vec<Datum>> = vec![Vec::with_capacity(exprs.len()); n];

    for w in exprs {
        // Evaluate partition and order keys per row.
        let mut part_keys: Vec<Vec<Datum>> = Vec::with_capacity(n);
        let mut order_keys: Vec<Vec<Datum>> = Vec::with_capacity(n);
        let mut args: Vec<Option<Datum>> = Vec::with_capacity(n);
        for row in &rows {
            let mut scopes = outer.to_vec();
            scopes.push((&schema, row));
            let mut ctx = EvalContext { db, scopes };
            let mut pk = Vec::with_capacity(w.partition_by.len());
            for p in &w.partition_by {
                pk.push(eval(p, &mut ctx)?);
            }
            part_keys.push(pk);
            let mut ok = Vec::with_capacity(w.order_by.len());
            for k in &w.order_by {
                ok.push(eval(&k.expr, &mut ctx)?);
            }
            order_keys.push(ok);
            args.push(match &w.arg {
                Some(a) => Some(eval(a, &mut ctx)?),
                None => None,
            });
        }

        // Group row indices by partition.
        let mut partitions: HashMap<Vec<Datum>, Vec<usize>> = HashMap::new();
        for (i, key) in part_keys.iter().enumerate() {
            partitions.entry(key.clone()).or_default().push(i);
        }

        let mut results: Vec<Datum> = vec![Datum::Null; n];
        for (_, mut indices) in partitions {
            indices.sort_by(|&a, &b| {
                compare_key_rows(&order_keys[a], &order_keys[b], &w.order_by)
            });
            match &w.func {
                WindowFuncKind::RowNumber => {
                    for (pos, &i) in indices.iter().enumerate() {
                        results[i] = Datum::Int(pos as i64 + 1);
                    }
                }
                WindowFuncKind::Rank | WindowFuncKind::DenseRank => {
                    let dense = matches!(w.func, WindowFuncKind::DenseRank);
                    let mut rank = 0i64;
                    let mut dense_rank = 0i64;
                    let mut prev: Option<&Vec<Datum>> = None;
                    for (pos, &i) in indices.iter().enumerate() {
                        let tie = prev
                            .is_some_and(|p| {
                                compare_key_rows(p, &order_keys[i], &w.order_by)
                                    == Ordering::Equal
                            });
                        if !tie {
                            rank = pos as i64 + 1;
                            dense_rank += 1;
                        }
                        results[i] = Datum::Int(if dense { dense_rank } else { rank });
                        prev = Some(&order_keys[i]);
                    }
                }
                WindowFuncKind::Agg(agg) => {
                    if w.order_by.is_empty() {
                        // Whole-partition aggregate broadcast.
                        let mut state = AggState::new(*agg, false, w.ty());
                        for &i in &indices {
                            state.update(match agg {
                                hyperq_xtra::expr::AggFunc::CountStar => None,
                                _ => args[i].as_ref(),
                            })?;
                        }
                        let v = state.finish()?;
                        for &i in &indices {
                            results[i] = v.clone();
                        }
                    } else {
                        // Default frame: RANGE UNBOUNDED PRECEDING — running
                        // aggregate including peers.
                        let mut pos = 0usize;
                        let mut state = AggState::new(*agg, false, w.ty());
                        let mut finished: Vec<(usize, Datum)> = Vec::new();
                        while pos < indices.len() {
                            // Find the peer group [pos, end).
                            let mut end = pos + 1;
                            while end < indices.len()
                                && compare_key_rows(
                                    &order_keys[indices[pos]],
                                    &order_keys[indices[end]],
                                    &w.order_by,
                                ) == Ordering::Equal
                            {
                                end += 1;
                            }
                            for &i in &indices[pos..end] {
                                state.update(match agg {
                                    hyperq_xtra::expr::AggFunc::CountStar => None,
                                    _ => args[i].as_ref(),
                                })?;
                            }
                            // Snapshot requires finishing; AggState is not
                            // cloneable, so recompute via a fresh pass.
                            let mut snapshot =
                                AggState::new(*agg, false, w.ty());
                            for &i in &indices[..end] {
                                snapshot.update(match agg {
                                    hyperq_xtra::expr::AggFunc::CountStar => None,
                                    _ => args[i].as_ref(),
                                })?;
                            }
                            let v = snapshot.finish()?;
                            for &i in &indices[pos..end] {
                                finished.push((i, v.clone()));
                            }
                            pos = end;
                        }
                        for (i, v) in finished {
                            results[i] = v;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            appended[i].push(results[i].clone());
        }
    }

    Ok(rows
        .into_iter()
        .zip(appended)
        .map(|(mut row, extra)| {
            row.extend(extra);
            row
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

fn execute_aggregate(
    input: &RelExpr,
    group_by: &[(ScalarExpr, String)],
    aggs: &[(ScalarExpr, String)],
    db: &EngineDb,
    outer: &Scopes<'_>,
) -> Result<Vec<Row>, EvalError> {
    let schema = input.schema();
    let rows = execute_rel(input, db, outer)?;

    struct AggSpec<'e> {
        func: hyperq_xtra::expr::AggFunc,
        distinct: bool,
        arg: Option<&'e ScalarExpr>,
        ty: hyperq_xtra::types::SqlType,
    }
    let specs: Vec<AggSpec> = aggs
        .iter()
        .map(|(a, _)| match a {
            ScalarExpr::Agg { func, distinct, arg } => Ok(AggSpec {
                func: *func,
                distinct: *distinct,
                arg: arg.as_deref(),
                ty: a.ty(),
            }),
            other => Err(format!("aggregate list contains non-aggregate {other}")),
        })
        .collect::<Result<_, _>>()?;

    // Group — preserving first-seen order for determinism.
    let mut groups: HashMap<Vec<Datum>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Datum>> = Vec::new();
    // Each distinct group holds a key vector plus aggregate states; the
    // ticker charges that hash-table growth and checkpoints the loop.
    let mut ticker = ChargeTicker::new(group_by.len() + aggs.len());
    let mut rows_seen = 0u64;
    for row in &rows {
        rows_seen += 1;
        if rows_seen.is_multiple_of(ChargeTicker::BATCH) {
            hyperq_governor::checkpoint().map_err(|c| c.to_string())?;
        }
        let mut scopes = outer.to_vec();
        scopes.push((&schema, row));
        let mut ctx = EvalContext { db, scopes };
        let mut key = Vec::with_capacity(group_by.len());
        for (g, _) in group_by {
            key.push(eval(g, &mut ctx)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                ticker.produced()?;
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(|| {
                    specs
                        .iter()
                        .map(|s| AggState::new(s.func, s.distinct, s.ty.clone()))
                        .collect()
                })
            }
        };
        for (state, spec) in states.iter_mut().zip(specs.iter()) {
            match spec.arg {
                Some(a) => {
                    let mut scopes = outer.to_vec();
                    scopes.push((&schema, row));
                    let mut actx = EvalContext { db, scopes };
                    let v = eval(a, &mut actx)?;
                    state.update(Some(&v))?;
                }
                None => state.update(None)?,
            }
        }
    }
    ticker.flush()?;

    // Global aggregate over empty input still produces one row.
    if groups.is_empty() && group_by.is_empty() {
        let states: Vec<AggState> = specs
            .iter()
            .map(|s| AggState::new(s.func, s.distinct, s.ty.clone()))
            .collect();
        let mut row = Vec::with_capacity(specs.len());
        for s in states {
            row.push(s.finish()?);
        }
        return Ok(vec![row]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let states = groups.remove(&key).expect("key recorded on insert");
        let mut row = key;
        for s in states {
            row.push(s.finish()?);
        }
        out.push(row);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

fn execute_join(
    kind: JoinKind,
    left: &RelExpr,
    right: &RelExpr,
    condition: Option<&ScalarExpr>,
    db: &EngineDb,
    outer: &Scopes<'_>,
) -> Result<Vec<Row>, EvalError> {
    let lschema = left.schema();
    let rschema = right.schema();
    // Residual predicates always see the concatenated row, regardless of
    // the join's output schema (semi/anti joins output only the left side).
    let combined_schema = lschema.join(&rschema);
    let lrows = execute_rel(left, db, outer)?;
    let rrows = execute_rel(right, db, outer)?;
    let lwidth = lschema.len();
    let rwidth = rschema.len();

    // Try to extract hash keys from the condition.
    let (lkeys, rkeys, residual) = match condition {
        Some(c) if kind != JoinKind::Cross => split_equi_condition(c, &lschema, &rschema),
        _ => (Vec::new(), Vec::new(), condition.cloned()),
    };

    let eval_keys = |exprs: &[ScalarExpr],
                     schema: &Schema,
                     row: &Row|
     -> Result<Option<Vec<Datum>>, EvalError> {
        let mut scopes = outer.to_vec();
        scopes.push((schema, row));
        let mut ctx = EvalContext { db, scopes };
        let mut key = Vec::with_capacity(exprs.len());
        for e in exprs {
            let v = eval(e, &mut ctx)?;
            if v.is_null() {
                return Ok(None); // NULL keys never join.
            }
            key.push(v);
        }
        Ok(Some(key))
    };

    let residual_ok = |combined: &Row| -> Result<bool, EvalError> {
        match &residual {
            None => Ok(true),
            Some(p) => {
                let mut scopes = outer.to_vec();
                scopes.push((&combined_schema, combined));
                let mut ctx = EvalContext { db, scopes };
                Ok(eval_truth(p, &mut ctx)? == Some(true))
            }
        }
    };

    let mut out: Vec<Row> = Vec::new();
    let mut right_matched = vec![false; rrows.len()];
    // Semi/anti joins output left-width rows; everything else the
    // concatenated width. The ticker charges the join's output
    // incrementally so a runaway cross join dies mid-build.
    let semi_anti = matches!(kind, JoinKind::Semi | JoinKind::Anti);
    let out_width = if semi_anti { lwidth } else { lwidth + rwidth };
    let mut ticker = ChargeTicker::new(out_width);

    if !lkeys.is_empty() {
        // Hash join: build on the right.
        let mut table: HashMap<Vec<Datum>, Vec<usize>> = HashMap::new();
        for (i, row) in rrows.iter().enumerate() {
            if let Some(key) = eval_keys(&rkeys, &rschema, row)? {
                table.entry(key).or_default().push(i);
            }
        }
        // The build side holds one key vector per right row on top of the
        // already-charged input; account for it up front.
        hyperq_governor::charge(rrows.len() as u64 * row_bytes(rkeys.len()))
            .map_err(|c| c.to_string())?;
        for lrow in &lrows {
            let mut matched = false;
            if let Some(key) = eval_keys(&lkeys, &lschema, lrow)? {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        let mut combined = lrow.clone();
                        combined.extend(rrows[ri].iter().cloned());
                        if residual_ok(&combined)? {
                            matched = true;
                            right_matched[ri] = true;
                            if !semi_anti {
                                out.push(combined);
                                ticker.produced()?;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            match kind {
                JoinKind::Semi if matched => out.push(lrow.clone()),
                JoinKind::Anti if !matched => out.push(lrow.clone()),
                JoinKind::Left | JoinKind::Full if !matched => {
                    let mut padded = lrow.clone();
                    padded.extend(std::iter::repeat_n(Datum::Null, rwidth));
                    out.push(padded);
                }
                _ => {}
            }
            ticker.produced()?;
        }
    } else {
        // Nested-loop join.
        for lrow in &lrows {
            let mut matched = false;
            for (ri, rrow) in rrows.iter().enumerate() {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let ok = match (&residual, kind) {
                    (None, _) => true,
                    (Some(_), _) => residual_ok(&combined)?,
                };
                if ok {
                    matched = true;
                    right_matched[ri] = true;
                    if !semi_anti {
                        out.push(combined);
                        ticker.produced()?;
                    } else {
                        break;
                    }
                }
            }
            match kind {
                JoinKind::Semi if matched => out.push(lrow.clone()),
                JoinKind::Anti if !matched => out.push(lrow.clone()),
                JoinKind::Left | JoinKind::Full if !matched => {
                    let mut padded = lrow.clone();
                    padded.extend(std::iter::repeat_n(Datum::Null, rwidth));
                    out.push(padded);
                }
                _ => {}
            }
            ticker.produced()?;
        }
    }

    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                let mut padded: Row = std::iter::repeat_n(Datum::Null, lwidth).collect();
                padded.extend(rrows[ri].iter().cloned());
                out.push(padded);
                ticker.produced()?;
            }
        }
    }
    ticker.flush()?;
    Ok(out)
}

/// Split an AND-tree into hash-joinable equi-pairs plus a residual.
fn split_equi_condition(
    c: &ScalarExpr,
    lschema: &Schema,
    rschema: &Schema,
) -> (Vec<ScalarExpr>, Vec<ScalarExpr>, Option<ScalarExpr>) {
    let mut conjuncts: Vec<ScalarExpr> = Vec::new();
    flatten_and(c, &mut conjuncts);
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut residual = Vec::new();
    for conj in conjuncts {
        if let ScalarExpr::Cmp { op: CmpOp::Eq, left, right } = &conj {
            let l_in_l = resolves_in(left, lschema);
            let r_in_r = resolves_in(right, rschema);
            if l_in_l && r_in_r {
                lkeys.push((**left).clone());
                rkeys.push((**right).clone());
                continue;
            }
            let l_in_r = resolves_in(left, rschema);
            let r_in_l = resolves_in(right, lschema);
            if l_in_r && r_in_l {
                lkeys.push((**right).clone());
                rkeys.push((**left).clone());
                continue;
            }
        }
        residual.push(conj);
    }
    let residual = if residual.is_empty() {
        None
    } else {
        Some(ScalarExpr::and(residual))
    };
    (lkeys, rkeys, residual)
}

fn flatten_and(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::BoolExpr { op: hyperq_xtra::expr::BoolOp::And, args } => {
            for a in args {
                flatten_and(a, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Does every column reference in `e` resolve in `schema`, with at least
/// one column and no subqueries?
fn resolves_in(e: &ScalarExpr, schema: &Schema) -> bool {
    let mut has_column = false;
    let mut all_resolve = true;
    let mut has_subquery = false;
    e.visit(
        &mut |x| match x {
            ScalarExpr::Column { qualifier, name, .. } => {
                has_column = true;
                if !matches!(schema.try_resolve(qualifier.as_deref(), name), Ok(Some(_))) {
                    all_resolve = false;
                }
            }
            ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::QuantifiedCmp { .. } => has_subquery = true,
            _ => {}
        },
        &mut |_| {},
    );
    has_column && all_resolve && !has_subquery
}

// ---------------------------------------------------------------------------
// Set operations
// ---------------------------------------------------------------------------

fn execute_setop(kind: SetOpKind, all: bool, l: Vec<Row>, r: Vec<Row>) -> Vec<Row> {
    match (kind, all) {
        (SetOpKind::Union, true) => {
            let mut out = l;
            out.extend(r);
            out
        }
        (SetOpKind::Union, false) => {
            let mut seen: HashSet<Row> = HashSet::new();
            let mut out = Vec::new();
            for row in l.into_iter().chain(r) {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            out
        }
        (SetOpKind::Intersect, false) => {
            let rset: HashSet<Row> = r.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            l.into_iter()
                .filter(|row| rset.contains(row) && seen.insert(row.clone()))
                .collect()
        }
        (SetOpKind::Intersect, true) => {
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for row in r {
                *counts.entry(row).or_insert(0) += 1;
            }
            l.into_iter()
                .filter(|row| {
                    if let Some(c) = counts.get_mut(row) {
                        if *c > 0 {
                            *c -= 1;
                            return true;
                        }
                    }
                    false
                })
                .collect()
        }
        (SetOpKind::Except, false) => {
            let rset: HashSet<Row> = r.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            l.into_iter()
                .filter(|row| !rset.contains(row) && seen.insert(row.clone()))
                .collect()
        }
        (SetOpKind::Except, true) => {
            let mut counts: HashMap<Row, usize> = HashMap::new();
            for row in r {
                *counts.entry(row).or_insert(0) += 1;
            }
            l.into_iter()
                .filter(|row| {
                    if let Some(c) = counts.get_mut(row) {
                        if *c > 0 {
                            *c -= 1;
                            return false;
                        }
                    }
                    true
                })
                .collect()
        }
    }
}
