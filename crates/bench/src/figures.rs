//! Per-table/figure reproduction (paper §7 and Figure 2 / Tables 1–2).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_core::backend::Backend;
use hyperq_core::capability::{figure2_rows, TargetCapabilities};
use hyperq_core::tracker::{table2, WorkloadTracker};
use hyperq_core::HyperQBuilder;
use hyperq_engine::EngineDb;
use hyperq_wire::{Client, Gateway, GatewayConfig, WireStats};
use hyperq_workload::customer::{health, telco, CustomerWorkload};
use hyperq_workload::tpch;
use hyperq_xtra::feature::FeatureClass;

use crate::harness::{bar, load_tpch};

// ---------------------------------------------------------------------------
// Table 1 — customer/workload overview
// ---------------------------------------------------------------------------

/// Regenerate Table 1: overview of customers and workloads. `scale` scales
/// the corpus (1.0 = published size).
pub fn table1(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Overview of customers and workloads");
    let _ = writeln!(out, "{:-<66}", "");
    let _ = writeln!(
        out,
        "{:<10} {:<8} {:>22} {:>12}",
        "Customer", "Sector", "Total (Distinct)", "[paper]"
    );
    for (n, w) in [health(scale), telco(scale)].iter().enumerate() {
        let distinct: std::collections::HashSet<&String> = w.distinct.iter().collect();
        let paper = if n == 0 { "39731 (3778)" } else { "192753 (10446)" };
        let _ = writeln!(
            out,
            "{:<10} {:<8} {:>22} {:>14}",
            n + 1,
            w.profile.sector,
            format!("{} ({})", w.sequence.len(), distinct.len()),
            format!("[{paper}]"),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 2 — feature support across cloud databases
// ---------------------------------------------------------------------------

/// Regenerate Figure 2: % of surveyed cloud targets supporting each
/// selected Teradata feature, computed from the capability profiles that
/// also drive the serializer.
pub fn figure2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: Support for select Teradata features across major cloud databases"
    );
    let _ = writeln!(out, "{:-<78}", "");
    let mut rows = figure2_rows();
    rows.sort_by(|a, b| {
        b.percent_supported
            .partial_cmp(&a.percent_supported)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.feature.code().cmp(b.feature.code()))
    });
    for row in rows {
        let _ = writeln!(
            out,
            "{:<38} {} {:>5.1}%  ({})",
            row.feature.title(),
            bar(row.percent_supported, 20),
            row.percent_supported,
            if row.supporting.is_empty() {
                "none".to_string()
            } else {
                row.supporting.join(", ")
            }
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 8 — customer workload characteristics
// ---------------------------------------------------------------------------

/// Measured class statistics for one workload: runs every query of the
/// replay sequence through the instrumented pipeline against an
/// empty-content replica of the customer schema (feature measurement does
/// not depend on data volume).
pub fn measure_workload(w: &CustomerWorkload) -> WorkloadTracker {
    let db = Arc::new(EngineDb::new());
    for ddl in &w.target_ddl {
        db.execute_sql(ddl).expect("workload DDL");
    }
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh()).no_cache().build();
    for setup in &w.hyperq_setup {
        hq.run_one(setup).expect("workload setup through Hyper-Q");
    }
    let mut tracker = WorkloadTracker::new();
    // Feature sets are per distinct text; measure each distinct query once
    // through the pipeline, then account repeats from the replay sequence.
    let mut per_distinct = Vec::with_capacity(w.distinct.len());
    for text in &w.distinct {
        let outcome = hq
            .run_one(text)
            .unwrap_or_else(|e| panic!("workload query failed: {text}: {e}"));
        per_distinct.push(outcome.features);
    }
    for &idx in &w.sequence {
        tracker.observe(&w.distinct[idx as usize], &per_distinct[idx as usize]);
    }
    tracker
}

/// Regenerate Figures 8a and 8b.
pub fn figure8(scale: f64) -> String {
    let mut out = String::new();
    let workloads = [health(scale), telco(scale)];
    let paper_8a = [[55.6, 77.8, 33.3], [22.2, 66.7, 33.3]];
    let paper_8b = [[1.4, 33.6, 0.2], [0.2, 4.0, 79.1]];
    let trackers: Vec<WorkloadTracker> = workloads.iter().map(measure_workload).collect();

    let _ = writeln!(
        out,
        "Figure 8 (a): Percentage of tracked features contained in each workload"
    );
    let _ = writeln!(out, "{:-<72}", "");
    for (wi, tracker) in trackers.iter().enumerate() {
        let _ = writeln!(out, "{}:", workloads[wi].profile.name);
        for (ci, class) in FeatureClass::ALL.iter().enumerate() {
            let s = tracker
                .class_stats()
                .into_iter()
                .find(|s| s.class == *class)
                .expect("class present");
            let _ = writeln!(
                out,
                "  {:<16} {} {:>5.1}%   [paper: {:.1}%]",
                class.name(),
                bar(s.feature_coverage_pct, 20),
                s.feature_coverage_pct,
                paper_8a[wi][ci]
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Figure 8 (b): Percentage of distinct queries affected by each feature class"
    );
    let _ = writeln!(out, "{:-<72}", "");
    for (wi, tracker) in trackers.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} ({} total, {} distinct):",
            workloads[wi].profile.name,
            tracker.total_queries,
            tracker.distinct_queries()
        );
        for (ci, class) in FeatureClass::ALL.iter().enumerate() {
            let s = tracker
                .class_stats()
                .into_iter()
                .find(|s| s.class == *class)
                .expect("class present");
            let _ = writeln!(
                out,
                "  {:<16} {} {:>5.1}%   [paper: {:.1}%]",
                class.name(),
                bar(s.queries_affected_pct, 20),
                s.queries_affected_pct,
                paper_8b[wi][ci]
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Drill-down: distinct queries per tracked feature (beyond the paper's charts)"
    );
    let _ = writeln!(out, "{:-<72}", "");
    for (wi, tracker) in trackers.iter().enumerate() {
        let _ = writeln!(out, "{}:", workloads[wi].profile.name);
        for (feature, count) in tracker.feature_counts() {
            if count > 0 {
                let _ = writeln!(out, "  {:<42} {:>6}", feature.to_string(), count);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9 — Hyper-Q overhead
// ---------------------------------------------------------------------------

fn render_figure9(title: &str, stats: &WireStats, paper_note: &str) -> String {
    let mut out = String::new();
    let (t, e, c) = stats.shares();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:-<72}", "");
    let _ = writeln!(
        out,
        "  requests: {}   rows returned: {}   end-to-end: {:.3}s",
        stats.requests,
        stats.rows_returned,
        stats.end_to_end().as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  Execution            {} {:>6.2}%  ({:.3}s)",
        bar(e, 30),
        e,
        stats.execution.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  QueryTranslation     {} {:>6.2}%  ({:.4}s)",
        bar(t, 30),
        t,
        stats.translation.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  ResultTransformation {} {:>6.2}%  ({:.4}s)",
        bar(c, 30),
        c,
        stats.conversion.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  Hyper-Q overhead: {:.2}%   {paper_note}",
        t + c
    );
    out
}

/// Figure 9a: single sequential run of the 22 TPC-H queries through the
/// full wire path (client → gateway → Hyper-Q → warehouse).
pub fn figure9a(scale: f64) -> String {
    let db = load_tpch(scale, None);
    let handle = Gateway::spawn(db as Arc<dyn Backend>, GatewayConfig::default())
        .expect("gateway");
    let mut client = Client::connect(handle.addr, "APP", "secret").expect("connect");
    for (n, sql) in tpch::queries() {
        client.run(sql).unwrap_or_else(|e| panic!("Q{n}: {e}"));
    }
    let stats = handle.stats();
    handle.shutdown();
    render_figure9(
        &format!(
            "Figure 9 (a): Aggregated elapsed time, single sequential TPC-H run (SF {scale})"
        ),
        &stats,
        "[paper: <2% total — ~0.5% translation, ~1% result transformation]",
    )
}

/// Figure 9b: stress test — `sessions` concurrent clients replay TPC-H
/// queries against a slot-limited warehouse for `duration`.
pub fn figure9b(scale: f64, sessions: usize, duration: Duration) -> String {
    // The provisioned cluster of §7.2/7.3 is modeled as a warehouse with a
    // bounded number of concurrent execution slots; queueing under
    // concurrency is what grows execution time while Hyper-Q's per-query
    // translation stays constant.
    let db = load_tpch(scale, Some(2));
    let handle =
        Gateway::spawn(db as Arc<dyn Backend>, GatewayConfig::default()).expect("gateway");
    let addr = handle.addr;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut threads = Vec::new();
    for s in 0..sessions {
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, "APP", "secret").expect("connect");
            // Rotate through the faster queries to maximize request count.
            let rotation = [1usize, 3, 4, 5, 6, 10, 12, 13, 14, 19];
            let mut i = s; // desynchronize sessions
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let q = rotation[i % rotation.len()];
                let _ = client.run(tpch::query(q));
                i += 1;
            }
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    let stats = handle.stats();
    handle.shutdown();
    render_figure9(
        &format!(
            "Figure 9 (b): Aggregated elapsed time, stress test \
             ({sessions} concurrent sessions, SF {scale}, {}s)",
            duration.as_secs()
        ),
        &stats,
        "[paper: 0.1%–0.2% total overhead]",
    )
}

// ---------------------------------------------------------------------------
// Table 2 — feature implementation index
// ---------------------------------------------------------------------------

/// Regenerate Table 2 from the live feature registry.
pub fn table2_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Implementation details for the tracked features in Hyper-Q"
    );
    let _ = writeln!(out, "{:-<110}", "");
    let _ = writeln!(
        out,
        "{:<4} {:<34} {:<15} {:<20} Rewrite",
        "Id", "Feature", "Category", "Component"
    );
    let _ = writeln!(out, "{:-<110}", "");
    for (feature, class, synopsis, component) in table2() {
        let _ = writeln!(
            out,
            "{:<4} {:<34} {:<15} {:<20} {}",
            feature.code(),
            feature.title(),
            class.name(),
            component,
            synopsis
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9 timing helper exposed for tests
// ---------------------------------------------------------------------------

/// Run the 22 queries once in-process (no wire) and return translation vs
/// execution time; used by tests to check the overhead shape cheaply.
pub fn tpch_overhead_inprocess(scale: f64) -> (Duration, Duration) {
    let db = load_tpch(scale, None);
    let mut hq = HyperQBuilder::for_target(db as Arc<dyn Backend>, hyperq_core::targets::simwh()).no_cache().build();
    let mut translation = Duration::ZERO;
    let mut execution = Duration::ZERO;
    for (n, sql) in tpch::queries() {
        let t0 = Instant::now();
        let o = hq.run_one(sql).unwrap_or_else(|e| panic!("Q{n}: {e}"));
        let _ = t0.elapsed();
        translation += o.timings.translation;
        execution += o.timings.execution;
    }
    (translation, execution)
}

// ---------------------------------------------------------------------------
// Use case B.4 — side-by-side evaluation of candidate targets
// ---------------------------------------------------------------------------

/// For each candidate target profile, translate the whole workload and
/// report coverage: how many statements translate cleanly, and how many
/// rewrites of each class fire. "Customers can compare side-by-side how
/// their workloads perform on a variety of potential target databases,
/// which can be used to guide their decision of where to migrate to"
/// (§B.4).
pub fn compare_targets(statements: &[&str]) -> String {
    use hyperq_core::binder::Binder;
    use hyperq_core::serialize::Serializer;
    use hyperq_core::session::{SessionState, ShadowCatalog};
    use hyperq_core::transform::Transformer;
    use hyperq_parser::{parse_one, Dialect};
    use hyperq_xtra::feature::FeatureSet;

    let db = load_tpch(0.0001, None);
    let backend: Arc<dyn Backend> = db;
    let session = SessionState::new(1, "EVAL");
    let transformer = Transformer::standard();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Candidate-target evaluation (§B.4): {} statements",
        statements.len()
    );
    let _ = writeln!(out, "{:-<76}", "");
    let _ = writeln!(
        out,
        "{:<12} {:>11} {:>13} {:>16} {:>10} {:>16}",
        "Target", "translated", "translation", "transformation", "emulation", "target-rewrites"
    );
    let mut targets = vec![TargetCapabilities::simwh()];
    targets.extend(TargetCapabilities::surveyed());
    for caps in targets {
        let mut ok = 0usize;
        let mut class_counts = [0usize; 3];
        let mut target_rewrites = 0usize;
        for sql in statements {
            let Ok(parsed) = parse_one(sql, Dialect::Teradata) else {
                continue;
            };
            let catalog = ShadowCatalog::new(&*backend, &session);
            let mut binder = Binder::new(&catalog);
            let Ok(plan) = binder.bind_statement(&parsed.stmt) else {
                continue;
            };
            let mut fired = FeatureSet::new();
            fired.union(&parsed.features);
            fired.union(&binder.features);
            // Count the *target-specific* (serialization-phase) rewrites
            // separately: this column is what actually differs between
            // candidate targets.
            let mut phase_fired = FeatureSet::new();
            let Ok(plan) = transformer.run(
                plan,
                hyperq_core::transform::Phase::Binding,
                &caps,
                &mut fired,
            ) else {
                continue;
            };
            let Ok(plan) = transformer.run(
                plan,
                hyperq_core::transform::Phase::Serialization,
                &caps,
                &mut phase_fired,
            ) else {
                continue;
            };
            if Serializer::new(&caps).serialize_plan(&plan).is_ok() {
                ok += 1;
                target_rewrites += phase_fired.len();
                fired.union(&phase_fired);
                for f in fired.iter() {
                    class_counts[match f.class() {
                        FeatureClass::Translation => 0,
                        FeatureClass::Transformation => 1,
                        FeatureClass::Emulation => 2,
                    }] += 1;
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<12} {:>8}/{:<2} {:>13} {:>16} {:>10} {:>16}",
            caps.name,
            ok,
            statements.len(),
            class_counts[0],
            class_counts[1],
            class_counts[2],
            target_rewrites
        );
    }
    out
}
