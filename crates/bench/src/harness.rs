//! Shared experiment setup.

use std::sync::Arc;

use hyperq_engine::EngineDb;
use hyperq_workload::tpch;

/// TPC-H scale factor, overridable with `HYPERQ_SF`.
pub fn scale_from_env() -> f64 {
    std::env::var("HYPERQ_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01)
}

/// Stress-test duration in seconds, overridable with `HYPERQ_STRESS_SECS`.
pub fn stress_secs_from_env() -> u64 {
    std::env::var("HYPERQ_STRESS_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Create and load a TPC-H warehouse. `concurrency_limit` models the
/// paper's provisioned cluster: a bounded number of execution slots.
pub fn load_tpch(scale: f64, concurrency_limit: Option<usize>) -> Arc<EngineDb> {
    let db = Arc::new(match concurrency_limit {
        Some(n) => EngineDb::with_concurrency_limit(n),
        None => EngineDb::new(),
    });
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).expect("TPC-H DDL");
    }
    for (table, rows) in tpch::generate(scale, 7_777).tables() {
        db.load_rows(table, rows).expect("TPC-H load");
    }
    db
}

/// Render a horizontal percentage bar.
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round() as usize;
    let filled = filled.min(width);
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}
