//! Translation-cache benchmark: cold vs warm per-statement translation
//! latency over the TPC-H corpus, plus the aggregate hit rate of a
//! TPC-H×10 replay through one cache-enabled session. Writes
//! `BENCH_cache.json` at the repo root (override dir with `BENCH_OUT`).

use std::sync::Arc;
use std::time::Duration;

use hyperq_bench::harness::{load_tpch, scale_from_env};
use hyperq_core::{Backend, HyperQBuilder, ObsContext};
use hyperq_workload::tpch;

const WARM_REPEATS: usize = 5;
const REPLAY_ROUNDS: usize = 10;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let scale = scale_from_env();
    let db = load_tpch(scale, None);

    // Per-query cold (cache-off pipeline, min of repeats) vs warm (cache
    // hit, min of repeats after the populating run) translation latency.
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (n, sql) in tpch::queries() {
        let mut cold_hq =
            HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh())
                .no_cache()
                .build();
        let mut cold = f64::MAX;
        for _ in 0..WARM_REPEATS {
            let o = cold_hq.run_one(sql).expect("cold run");
            cold = cold.min(micros(o.timings.translation));
        }

        let mut warm_hq =
            HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh())
                .build();
        warm_hq.run_one(sql).expect("populating run");
        let mut warm = f64::MAX;
        for _ in 0..WARM_REPEATS {
            let o = warm_hq.run_one(sql).expect("warm run");
            warm = warm.min(micros(o.timings.translation));
        }
        let speedup = cold / warm.max(0.001);
        speedups.push(speedup);
        rows.push(format!(
            "    {{\"query\": \"Q{n}\", \"cold_translate_us\": {cold:.1}, \
             \"warm_translate_us\": {warm:.1}, \"speedup\": {speedup:.1}}}"
        ));
    }
    speedups.sort_by(f64::total_cmp);
    let median_speedup = speedups[speedups.len() / 2];

    // TPC-H×10 replay through one cache-enabled session: round 1 populates,
    // rounds 2..10 replay warm.
    let obs = ObsContext::new();
    let mut hq =
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh())
            .obs(Arc::clone(&obs))
            .build();
    for _ in 0..REPLAY_ROUNDS {
        for (_, sql) in tpch::queries() {
            hq.run_one(sql).expect("replay run");
        }
    }
    let hits = obs.metrics.counter_value("hyperq_cache_hits_total", &[]);
    let misses = obs.metrics.counter_value("hyperq_cache_misses_total", &[]);
    let bypass = obs.metrics.counter_value("hyperq_cache_bypass_total", &[]);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let json = format!(
        "{{\n  \"scale_factor\": {scale},\n  \"warm_repeats\": {WARM_REPEATS},\n  \
         \"median_warm_speedup\": {median_speedup:.1},\n  \"replay\": {{\n    \
         \"rounds\": {REPLAY_ROUNDS},\n    \"hits\": {hits},\n    \"misses\": {misses},\n    \
         \"bypass\": {bypass},\n    \"hit_rate\": {hit_rate:.3}\n  }},\n  \"queries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    let out_dir = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{out_dir}/BENCH_cache.json");
    std::fs::write(&path, &json).expect("write BENCH_cache.json");
    eprintln!("wrote {path}");
    print!("{json}");
}
