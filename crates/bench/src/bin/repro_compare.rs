//! Side-by-side candidate-target evaluation (paper §B.4) over the TPC-H
//! workload in the Teradata dialect.
fn main() {
    let queries: Vec<&str> = hyperq_workload::tpch::queries()
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    print!("{}", hyperq_bench::figures::compare_targets(&queries));
}
