//! Regenerate Figure 2 (feature support across cloud databases).
fn main() {
    print!("{}", hyperq_bench::figures::figure2());
}
