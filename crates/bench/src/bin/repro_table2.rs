//! Regenerate Table 2 (feature → category → rewrite → component).
fn main() {
    print!("{}", hyperq_bench::figures::table2_report());
}
