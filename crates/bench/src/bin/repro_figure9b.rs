//! Regenerate Figure 9b (Hyper-Q overhead under a concurrent stress test).
fn main() {
    let scale = hyperq_bench::harness::scale_from_env();
    let secs = hyperq_bench::harness::stress_secs_from_env();
    print!(
        "{}",
        hyperq_bench::figures::figure9b(scale, 10, std::time::Duration::from_secs(secs))
    );
}
