//! Regenerate Figures 8a/8b (customer workload characteristics) by running
//! both synthetic workloads through the instrumented pipeline.
fn main() {
    let scale = std::env::var("HYPERQ_WL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    print!("{}", hyperq_bench::figures::figure8(scale));
}
