//! Query-governor benchmark: (1) the end-to-end overhead of deadline +
//! resource-ledger tracking on the TPC-H corpus — a governed run (bounds
//! set far above any trip point) against the ungoverned pipeline — and
//! (2) cancel-to-kill latency: how long after `CancelToken::cancel` the
//! executing statement actually dies at a checkpoint. Writes
//! `BENCH_governor.json` at the repo root (override dir with `BENCH_OUT`).
//!
//! The acceptance bar from the governance PR: median overhead < 2%.

use std::sync::Arc;
use std::time::Duration;

use hyperq_bench::harness::{load_tpch, scale_from_env};
use hyperq_core::{Backend, HyperQBuilder, Request};
use hyperq_engine::EngineDb;
use hyperq_governor::{CancelReason, QueryGovernor};
use hyperq_workload::tpch;

const REPEATS: usize = 7;
const CANCEL_ITERATIONS: usize = 60;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let scale = scale_from_env();
    let db = load_tpch(scale, None);

    // ---- overhead: governed (never-tripping bounds) vs ungoverned ----
    // `run_one` installs no governor at all, so every checkpoint/charge
    // free-function call is a thread-local miss; the governed request pays
    // the full machinery: token loads, deadline arithmetic, ledger CAS.
    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for (n, sql) in tpch::queries() {
        let mut hq =
            HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh())
                .build();
        hq.run_one(sql).expect("warmup");

        let mut base = f64::MAX;
        for _ in 0..REPEATS {
            let t = std::time::Instant::now();
            hq.run_one(sql).expect("base run");
            base = base.min(micros(t.elapsed()));
        }
        let mut governed = f64::MAX;
        for _ in 0..REPEATS {
            let t = std::time::Instant::now();
            hq.run(Request::script(sql)
                .timeout(Duration::from_secs(3600))
                .memory_budget(u64::MAX / 2))
                .expect("governed run");
            governed = governed.min(micros(t.elapsed()));
        }
        let overhead_pct = (governed - base) / base * 100.0;
        overheads.push(overhead_pct);
        rows.push(format!(
            "    {{\"query\": \"Q{n}\", \"base_us\": {base:.1}, \
             \"governed_us\": {governed:.1}, \"overhead_pct\": {overhead_pct:.2}}}"
        ));
    }
    overheads.sort_by(f64::total_cmp);
    let median_overhead = overheads[overheads.len() / 2];
    let max_overhead = overheads[overheads.len() - 1];

    // ---- cancel-to-kill latency ----
    // A cross join materializing ~160k rows; the engine checkpoints every
    // 1024 charged rows, so the kill should land within a batch of the
    // cancel request. Cancelled from a second thread mid-execution;
    // `cancel_latency` measures cancel-request → checkpoint-kill.
    let kill_db = Arc::new(EngineDb::new());
    kill_db.execute_sql("CREATE TABLE K (N INTEGER)").expect("ddl");
    let vals: Vec<String> = (0..400).map(|i| format!("({i})")).collect();
    kill_db.execute_sql(&format!("INSERT INTO K VALUES {}", vals.join(", "))).expect("load");
    let mut hq = HyperQBuilder::for_target(
        Arc::clone(&kill_db) as Arc<dyn Backend>,
        hyperq_core::targets::simwh(),
    )
    .no_cache()
    .build();

    let mut latencies_us = Vec::new();
    for _ in 0..CANCEL_ITERATIONS {
        let gov = QueryGovernor::standalone(None, u64::MAX / 2);
        let killer = {
            let gov = Arc::clone(&gov);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                gov.cancel(CancelReason::ClientAbort, "bench kill");
            })
        };
        let scope = hyperq_governor::install(Arc::clone(&gov));
        let result = hq.run_one("SEL A.N FROM K A, K B WHERE A.N >= 0 ORDER BY A.N");
        drop(scope);
        killer.join().unwrap();
        match result {
            Err(_) => {
                // Snapshot immediately: `cancel_latency` keeps growing.
                let lat = gov.cancel_latency().expect("cancelled run records latency");
                latencies_us.push(micros(lat));
            }
            Ok(_) => { /* statement beat the 2ms fuse — skip the sample */ }
        }
    }
    latencies_us.sort_by(f64::total_cmp);
    let (p50, p99, samples) = if latencies_us.is_empty() {
        (0.0, 0.0, 0)
    } else {
        (
            latencies_us[latencies_us.len() / 2],
            latencies_us[(latencies_us.len() * 99 / 100).min(latencies_us.len() - 1)],
            latencies_us.len(),
        )
    };

    let json = format!(
        "{{\n  \"scale_factor\": {scale},\n  \"repeats\": {REPEATS},\n  \
         \"overhead\": {{\n    \"median_pct\": {median_overhead:.2},\n    \
         \"max_pct\": {max_overhead:.2},\n    \"budget_pct\": 2.0\n  }},\n  \
         \"cancel_to_kill_us\": {{\n    \"samples\": {samples},\n    \
         \"p50\": {p50:.1},\n    \"p99\": {p99:.1}\n  }},\n  \"queries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    let out_dir = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{out_dir}/BENCH_governor.json");
    std::fs::write(&path, &json).expect("write BENCH_governor.json");
    eprintln!("wrote {path}");
    print!("{json}");
}
