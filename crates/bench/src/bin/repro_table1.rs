//! Regenerate Table 1 (customer/workload overview).
fn main() {
    let scale = std::env::var("HYPERQ_WL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    print!("{}", hyperq_bench::figures::table1(scale));
}
