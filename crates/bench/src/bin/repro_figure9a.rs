//! Regenerate Figure 9a (Hyper-Q overhead, single sequential TPC-H run).
fn main() {
    let scale = hyperq_bench::harness::scale_from_env();
    print!("{}", hyperq_bench::figures::figure9a(scale));
}
