//! Provenance-capture overhead: per-statement pipeline latency with the
//! forensic recorder on vs off over a TPC-H replay. The capture path is a
//! thread-local builder plus one ring append per statement, so the budget
//! is tight: the report flags anything above a 2% translation-time
//! overhead. Writes `BENCH_provenance.json` at the repo root (override
//! dir with `BENCH_OUT`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_bench::harness::{load_tpch, scale_from_env};
use hyperq_core::{Backend, HyperQBuilder, ObsContext, ProvenanceConfig};
use hyperq_obs::WorkloadReport;
use hyperq_workload::tpch;

const ROUNDS: usize = 7;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// One full TPC-H replay round; returns summed translation time.
fn replay_round(hq: &mut hyperq_core::HyperQ) -> Duration {
    let mut total = Duration::ZERO;
    for (_, sql) in tpch::queries() {
        let o = hq.run_one(sql).expect("replay run");
        total += o.timings.translation;
    }
    total
}

/// Min-of-rounds translation time for a session with the given provenance
/// setting. A fresh context per mode keeps ring growth and metrics
/// identical across arms.
fn measure(db: &Arc<dyn Backend>, enabled: bool) -> f64 {
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(db), hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .provenance(ProvenanceConfig { enabled, ..ProvenanceConfig::default() })
        .no_cache()
        .build();
    replay_round(&mut hq); // warm-up round, not measured
    let mut best = f64::MAX;
    for _ in 0..ROUNDS {
        best = best.min(micros(replay_round(&mut hq)));
    }
    best
}

fn main() {
    let scale = scale_from_env();
    let db = load_tpch(scale, None);
    let db: Arc<dyn Backend> = db;

    let off = measure(&db, false);
    let on = measure(&db, true);
    let overhead_pct = (on - off) / off.max(0.001) * 100.0;

    // Report-fold cost for the records the instrumented replay left
    // behind (the /report endpoint's work, measured off the hot path).
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db), hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();
    replay_round(&mut hq);
    let records = obs.provenance.snapshot();
    let t0 = Instant::now();
    let report = WorkloadReport::from_records(&records);
    let fold_us = micros(t0.elapsed());

    let json = format!(
        "{{\n  \"scale_factor\": {scale},\n  \"rounds\": {ROUNDS},\n  \
         \"translation_us_per_replay_off\": {off:.1},\n  \
         \"translation_us_per_replay_on\": {on:.1},\n  \
         \"capture_overhead_pct\": {overhead_pct:.2},\n  \
         \"within_2pct_budget\": {},\n  \
         \"records_folded\": {},\n  \"report_fold_us\": {fold_us:.1},\n  \
         \"report_statements\": {}\n}}\n",
        overhead_pct < 2.0,
        records.len(),
        report.statements
    );

    let out_dir = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../..", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{out_dir}/BENCH_provenance.json");
    std::fs::write(&path, &json).expect("write BENCH_provenance.json");
    eprintln!("wrote {path}");
    print!("{json}");
}
