//! Regenerate every table and figure of the paper's evaluation in order.
fn main() {
    let scale = hyperq_bench::harness::scale_from_env();
    let wl_scale = std::env::var("HYPERQ_WL_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let secs = hyperq_bench::harness::stress_secs_from_env();
    println!("{}", hyperq_bench::figures::table1(wl_scale));
    println!("{}", hyperq_bench::figures::figure2());
    println!("{}", hyperq_bench::figures::figure8(wl_scale));
    println!("{}", hyperq_bench::figures::figure9a(scale));
    println!(
        "{}",
        hyperq_bench::figures::figure9b(scale, 10, std::time::Duration::from_secs(secs))
    );
    println!("{}", hyperq_bench::figures::table2_report());
}
