//! # hyperq-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7) from
//! the real pipeline. Each `figures::*` function returns the rendered
//! report text; the `repro_*` binaries print them, and `EXPERIMENTS.md`
//! records paper-vs-measured.

#![forbid(unsafe_code)]

pub mod figures;
pub mod harness;
