//! Smoke tests for the experiment harness at tiny scales: every repro
//! function must produce a structurally complete report quickly.

use std::time::Duration;

use hyperq_bench::figures;

#[test]
fn table1_report_structure() {
    let out = figures::table1(0.01);
    assert!(out.contains("Table 1"));
    assert!(out.contains("Health"));
    assert!(out.contains("Telco"));
}

#[test]
fn figure2_report_contains_all_surveyed_features() {
    let out = figures::figure2();
    for needle in [
        "QUALIFY",
        "Implicit joins",
        "Macros",
        "Recursive queries",
        "MERGE",
        "%",
    ] {
        assert!(out.contains(needle), "missing {needle}:\n{out}");
    }
}

#[test]
fn figure8_report_at_small_scale() {
    let out = figures::figure8(0.02);
    assert!(out.contains("Figure 8 (a)"));
    assert!(out.contains("Figure 8 (b)"));
    assert!(out.contains("Workload 1"));
    assert!(out.contains("Workload 2"));
    assert!(out.contains("[paper:"));
}

#[test]
fn figure9a_report_at_tiny_scale() {
    let out = figures::figure9a(0.0005);
    assert!(out.contains("Figure 9 (a)"));
    assert!(out.contains("requests: 22"), "{out}");
    assert!(out.contains("Hyper-Q overhead"), "{out}");
}

#[test]
fn figure9b_report_short_stress() {
    let out = figures::figure9b(0.0005, 3, Duration::from_secs(2));
    assert!(out.contains("Figure 9 (b)"));
    assert!(out.contains("3 concurrent sessions"), "{out}");
}

#[test]
fn table2_report_has_27_feature_rows() {
    let out = figures::table2_report();
    for code in ["T1", "T9", "X1", "X9", "E1", "E9"] {
        assert!(
            out.lines().any(|l| l.starts_with(code)),
            "missing row {code}:\n{out}"
        );
    }
    let feature_rows = out
        .lines()
        .filter(|l| {
            l.starts_with('T') || l.starts_with('X') || l.starts_with('E')
        })
        .count();
    assert!(feature_rows >= 27, "{feature_rows}");
}

#[test]
fn overhead_shape_translation_much_smaller_than_execution() {
    let (translation, execution) = figures::tpch_overhead_inprocess(0.001);
    assert!(
        translation < execution / 10,
        "translation {translation:?} must be well under execution {execution:?}"
    );
}
