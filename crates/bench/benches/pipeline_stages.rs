//! Microbenchmarks for each stage of the cross-compilation pipeline on the
//! paper's Example 2 and TPC-H queries: parse → bind → transform →
//! serialize. The sum of these stages is the Figure 9 "query translation"
//! component.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperq_bench::harness::load_tpch;
use hyperq_core::backend::Backend;
use hyperq_core::binder::Binder;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::serialize::Serializer;
use hyperq_core::session::{SessionState, ShadowCatalog};
use hyperq_core::transform::Transformer;
use hyperq_core::HyperQBuilder;
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::feature::FeatureSet;

const EXAMPLE2: &str = "SEL * FROM SALES WHERE SALES_DATE > 1140101 \
     AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
     QUALIFY RANK(AMOUNT DESC) <= 10";

fn sales_backend() -> Arc<dyn Backend> {
    let db = hyperq_engine::EngineDb::new();
    db.execute_sql(
        "CREATE TABLE SALES (STORE INTEGER, PRODUCT_NAME VARCHAR(40), AMOUNT INTEGER, \
         SALES_DATE DATE)",
    )
    .unwrap();
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)").unwrap();
    Arc::new(db)
}

fn bench_stages(c: &mut Criterion) {
    let backend = sales_backend();
    let session = SessionState::new(1, "BENCH");
    let caps = TargetCapabilities::simwh();
    let transformer = Transformer::standard();

    c.bench_function("parse/example2", |b| {
        b.iter(|| parse_one(EXAMPLE2, Dialect::Teradata).unwrap());
    });

    let parsed = parse_one(EXAMPLE2, Dialect::Teradata).unwrap();
    c.bench_function("bind/example2", |b| {
        b.iter(|| {
            let catalog = ShadowCatalog::new(&*backend, &session);
            let mut binder = Binder::new(&catalog);
            binder.bind_statement(&parsed.stmt).unwrap()
        });
    });

    let catalog = ShadowCatalog::new(&*backend, &session);
    let mut binder = Binder::new(&catalog);
    let plan = binder.bind_statement(&parsed.stmt).unwrap();
    c.bench_function("transform/example2", |b| {
        b.iter(|| {
            let mut fired = FeatureSet::new();
            transformer.run_all(plan.clone(), &caps, &mut fired).unwrap()
        });
    });

    let mut fired = FeatureSet::new();
    let transformed = transformer.run_all(plan, &caps, &mut fired).unwrap();
    c.bench_function("serialize/example2", |b| {
        b.iter(|| Serializer::new(&caps).serialize_plan(&transformed).unwrap());
    });
}

fn bench_observability_overhead(c: &mut Criterion) {
    // The same end-to-end statement against an instrumented session with
    // span tracing on vs off; the difference is the observability tax
    // (histogram atomics are always on).
    let _caps = TargetCapabilities::simwh();
    let on = hyperq_obs::ObsContext::new();
    let mut hq_on = HyperQBuilder::for_target(sales_backend(), hyperq_core::targets::simwh())
        .obs(Arc::clone(&on))
        .no_cache()
        .build();
    let off = hyperq_obs::ObsContext::new();
    off.traces.set_enabled(false);
    let mut hq_off = HyperQBuilder::for_target(sales_backend(), hyperq_core::targets::simwh())
        .obs(Arc::clone(&off))
        .no_cache()
        .build();
    c.bench_function("run/example2_tracing_on", |b| {
        b.iter(|| hq_on.run_one(EXAMPLE2).unwrap());
    });
    c.bench_function("run/example2_tracing_off", |b| {
        b.iter(|| hq_off.run_one(EXAMPLE2).unwrap());
    });
}

fn bench_full_translation(c: &mut Criterion) {
    // End-to-end translation time of TPC-H queries (no execution): the
    // per-query cost Hyper-Q adds before the target sees SQL.
    let db = load_tpch(0.0001, None);
    let mut hq = HyperQBuilder::for_target(db as Arc<dyn Backend>, hyperq_core::targets::simwh()).no_cache().build();
    for q in [1usize, 3, 6, 13, 21] {
        c.bench_function(format!("translate/tpch_q{q}"), |b| {
            b.iter(|| hq.translate(hyperq_workload::tpch::query(q)).unwrap());
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_stages, bench_full_translation, bench_observability_overhead
}
criterion_main!(benches);
