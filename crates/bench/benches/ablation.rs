//! Ablations of the design choices called out in DESIGN.md §6:
//!
//! 1. fixed-point transformer vs. a single bounded pass,
//! 2. parallel vs. sequential result conversion,
//! 3. spill-to-disk vs. fully buffered conversion,
//! 4. single-row DML batching on vs. off.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperq_core::backend::Backend;
use hyperq_core::binder::Binder;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::session::{SessionState, ShadowCatalog};
use hyperq_core::transform::Transformer;
use hyperq_core::HyperQBuilder;
use hyperq_engine::EngineDb;
use hyperq_parser::{parse_one, Dialect};
use hyperq_wire::{convert, ConverterConfig};
use hyperq_xtra::datum::Datum;
use hyperq_xtra::feature::FeatureSet;
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;

/// A query whose rewrite cascades (date-int comparison inside a vector
/// subquery inside QUALIFY): the fixed-point loop needs several passes.
const CASCADING: &str = "SEL * FROM SALES WHERE SALES_DATE > 1140101 \
     AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY \
                                        WHERE SALES_DATE > 1150101) \
     QUALIFY RANK(AMOUNT DESC) <= 10";

fn sales_backend() -> Arc<dyn Backend> {
    let db = EngineDb::new();
    db.execute_sql(
        "CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER, SALES_DATE DATE)",
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER, SALES_DATE DATE)",
    )
    .unwrap();
    Arc::new(db)
}

fn bench_fixed_point(c: &mut Criterion) {
    let backend = sales_backend();
    let session = SessionState::new(1, "BENCH");
    let caps = TargetCapabilities::simwh();
    let parsed = parse_one(CASCADING, Dialect::Teradata).unwrap();
    let catalog = ShadowCatalog::new(&*backend, &session);
    let mut binder = Binder::new(&catalog);
    let plan = binder.bind_statement(&parsed.stmt).unwrap();

    let mut group = c.benchmark_group("transformer");
    let fixed_point = Transformer::standard();
    group.bench_function("fixed_point", |b| {
        b.iter(|| {
            let mut fired = FeatureSet::new();
            fixed_point.run_all(plan.clone(), &caps, &mut fired).unwrap()
        });
    });
    let single_pass = Transformer::standard().with_max_passes(1);
    group.bench_function("single_pass", |b| {
        b.iter(|| {
            let mut fired = FeatureSet::new();
            single_pass.run_all(plan.clone(), &caps, &mut fired).unwrap()
        });
    });
    group.finish();
}

fn bench_conversion_parallelism(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new(None, "K", SqlType::Integer, true),
        Field::new(None, "PAD", SqlType::Varchar(None), true),
    ]);
    let rows: Vec<Vec<Datum>> = (0..50_000)
        .map(|i| vec![Datum::Int(i), Datum::str(format!("padding-{i:0>40}"))])
        .collect();
    let mut group = c.benchmark_group("converter_parallelism");
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let config = ConverterConfig { parallelism: t, batch_size: 2048, ..Default::default() };
            b.iter(|| convert(&schema, &rows, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_spill(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new(None, "K", SqlType::Integer, true),
        Field::new(None, "PAD", SqlType::Varchar(None), true),
    ]);
    let rows: Vec<Vec<Datum>> = (0..20_000)
        .map(|i| vec![Datum::Int(i), Datum::str(format!("padding-{i:0>40}"))])
        .collect();
    let mut group = c.benchmark_group("converter_spill");
    for (label, budget) in [("buffered", usize::MAX), ("spilling", 64 * 1024)] {
        group.bench_function(label, |b| {
            let config = ConverterConfig {
                parallelism: 1,
                batch_size: 1024,
                memory_budget: budget,
                ..Default::default()
            };
            b.iter(|| {
                let result = convert(&schema, &rows, &config).unwrap();
                // Consume (and clean up spill files).
                let mut n = 0usize;
                result
                    .for_each_row(|_| {
                        n += 1;
                        Ok(())
                    })
                    .unwrap();
                n
            });
        });
    }
    group.finish();
}

fn bench_dml_batching(c: &mut Criterion) {
    let script: String = (0..200)
        .map(|i| format!("INSERT INTO EVENTS VALUES ({i});"))
        .collect();
    let mut group = c.benchmark_group("dml_batching");
    for (label, batching) in [("batched", true), ("unbatched", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let db = EngineDb::new();
                    db.execute_sql("CREATE TABLE EVENTS (K INTEGER)").unwrap();
                    let mut hq = HyperQBuilder::for_target(
                        Arc::new(db) as Arc<dyn Backend>,
                        hyperq_core::targets::simwh(),
                    ).no_cache().build();
                    hq.dml_batching = batching;
                    hq
                },
                |mut hq| hq.run_script(&script).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_fixed_point, bench_conversion_parallelism, bench_spill, bench_dml_batching
}
criterion_main!(benches);
