//! Figure 9b's mechanism as a benchmark: wall-clock per batch of requests
//! at increasing session concurrency against a slot-limited warehouse
//! (execution queues; translation does not).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperq_bench::harness::load_tpch;
use hyperq_core::backend::Backend;
use hyperq_wire::{Client, Gateway, GatewayConfig};
use hyperq_workload::tpch;

fn bench_concurrency(c: &mut Criterion) {
    let db = load_tpch(0.001, Some(2));
    let handle =
        Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, GatewayConfig::default())
            .expect("gateway");
    let addr = handle.addr;

    let mut group = c.benchmark_group("stress");
    for &sessions in &[1usize, 4, 10] {
        group.bench_with_input(
            BenchmarkId::new("sessions", sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    // Each session runs 3 fast queries; measure the batch.
                    let threads: Vec<_> = (0..sessions)
                        .map(|_| {
                            std::thread::spawn(move || {
                                let mut client =
                                    Client::connect(addr, "APP", "secret").unwrap();
                                for q in [6usize, 1, 13] {
                                    client.run(tpch::query(q)).unwrap();
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                });
            },
        );
    }
    group.finish();
    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_concurrency
}
criterion_main!(benches);
