//! Figure 9a's components as separate benchmarks: per-query translation,
//! target execution, and result transformation, on TPC-H.
//!
//! The paper's claim is a *ratio* — translation ≈ 0.5% and result
//! transformation ≈ 1% of end-to-end time; these benches expose the
//! absolute magnitudes behind that ratio.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperq_bench::harness::load_tpch;
use hyperq_core::backend::Backend;
use hyperq_core::HyperQBuilder;
use hyperq_wire::{convert, ConverterConfig};
use hyperq_workload::tpch;
use hyperq_xtra::datum::Datum;
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;

fn bench_translation_vs_execution(c: &mut Criterion) {
    let db = load_tpch(0.002, None);
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq_core::targets::simwh()).no_cache().build();
    let mut group = c.benchmark_group("overhead");
    for q in [1usize, 6] {
        let translated = hq.translate(tpch::query(q)).unwrap();
        group.bench_with_input(BenchmarkId::new("translation", q), &q, |b, &q| {
            b.iter(|| hq.translate(tpch::query(q)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("execution", q), &q, |b, _| {
            b.iter(|| db.execute_sql(&translated[0]).unwrap());
        });
    }
    group.finish();
}

fn bench_result_conversion(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new(None, "K", SqlType::Integer, true),
        Field::new(None, "AMOUNT", SqlType::Decimal { precision: 15, scale: 2 }, true),
        Field::new(None, "NOTE", SqlType::Varchar(None), true),
    ]);
    let mut group = c.benchmark_group("result_conversion");
    for &n in &[100usize, 10_000] {
        let rows: Vec<Vec<Datum>> = (0..n)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::Dec(hyperq_xtra::datum::Decimal::new(i as i128 * 100, 2)),
                    Datum::str(format!("row-{i}")),
                ]
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("rows", n), &rows, |b, rows| {
            b.iter(|| convert(&schema, rows, &ConverterConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_translation_vs_execution, bench_result_conversion
}
criterion_main!(benches);
