//! The query lifecycle governor: cooperative cancellation, deadline
//! propagation and per-query resource accounting for every stage of the
//! Hyper-Q pipeline.
//!
//! Teradata clients expect `ABORT` and timeout semantics to work exactly
//! as they do against the real warehouse, and nothing in a transparent
//! middleware may spin, sleep or allocate past the point the client (or
//! an operator) gave up on the statement. This crate provides the shared
//! machinery:
//!
//! * [`CancelToken`] — a sticky, reason-carrying cancellation flag. The
//!   first `cancel` wins; every later observer sees one well-defined
//!   [`CancelError`] with a Teradata-style wire code.
//! * [`QueryDeadline`] — an `Instant`-anchored per-statement deadline.
//!   Retry backoff, admission waits and convergence loops consult it so
//!   nothing sleeps past an expired deadline.
//! * [`ResourceLedger`] / [`MemoryPool`] — per-query and gateway-global
//!   memory budgets, charged at allocation hot spots (engine hash
//!   tables, materialized rows, converter buffers). A failed charge
//!   cancels the query with `BudgetExceeded` instead of letting the
//!   process OOM.
//! * [`QueryGovernor`] — the per-statement bundle of the three, plus the
//!   lifecycle stage (admitted → translating → executing → converting →
//!   done/cancelled) shown on the `/queries` observability route.
//! * [`GovernorRegistry`] — the gateway's table of in-flight queries,
//!   with a [watchdog](GovernorRegistry::spawn_watchdog) thread that
//!   sweeps for statements past their deadline and reports the
//!   `hyperq_governor_*` metric families.
//!
//! Deep pipeline layers (parser nesting loops, the transformer's
//! fixed-point iteration, engine executor loops) observe the governor
//! through a thread-local handle — mirroring how provenance `note_*`
//! hooks work — so cancellation reaches every loop without threading a
//! token parameter through every signature. Install a statement's
//! governor with [`install`]; check it anywhere with [`checkpoint`].

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hyperq_obs::{Counter, Gauge, ObsContext};

/// Why a query was cancelled. The first cancellation of a statement is
/// sticky: every later layer reports the same reason and wire code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The client sent a TDWP abort message (or an operator hit the
    /// `/queries?cancel=` hook).
    ClientAbort,
    /// The per-query deadline (client-requested timeout or the gateway
    /// default) expired.
    DeadlineExceeded,
    /// The per-query or gateway-global memory budget was exhausted.
    BudgetExceeded,
    /// The gateway is shutting down.
    Shutdown,
}

impl CancelReason {
    /// Stable label used in metrics and provenance records.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::ClientAbort => "client_abort",
            CancelReason::DeadlineExceeded => "deadline",
            CancelReason::BudgetExceeded => "budget",
            CancelReason::Shutdown => "shutdown",
        }
    }

    /// The Teradata-style wire error code a cancelled statement surfaces:
    /// 3110 "the transaction was aborted by the user", 3156 "request
    /// aborted by workload management" (deadline), 2646 "no more spool
    /// space" (budget).
    pub fn wire_code(self) -> u16 {
        match self {
            CancelReason::ClientAbort | CancelReason::Shutdown => 3110,
            CancelReason::DeadlineExceeded => 3156,
            CancelReason::BudgetExceeded => 2646,
        }
    }
}

/// The single well-defined error a cancelled statement surfaces, from
/// whichever layer noticed the cancellation first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CancelError {
    pub reason: CancelReason,
    pub detail: String,
}

impl fmt::Display for CancelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request cancelled ({}): {}", self.reason.as_str(), self.detail)
    }
}

impl std::error::Error for CancelError {}

/// Token state: 0 = live, otherwise `CancelReason` discriminant + 1.
const LIVE: u8 = 0;

fn reason_from_state(state: u8) -> Option<CancelReason> {
    match state {
        1 => Some(CancelReason::ClientAbort),
        2 => Some(CancelReason::DeadlineExceeded),
        3 => Some(CancelReason::BudgetExceeded),
        4 => Some(CancelReason::Shutdown),
        _ => None,
    }
}

fn state_from_reason(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::ClientAbort => 1,
        CancelReason::DeadlineExceeded => 2,
        CancelReason::BudgetExceeded => 3,
        CancelReason::Shutdown => 4,
    }
}

#[derive(Debug)]
struct TokenInner {
    state: AtomicU8,
    detail: Mutex<Option<String>>,
    cancelled_at: Mutex<Option<Instant>>,
}

/// A sticky cancellation flag shared by everything working on one
/// statement. Cheap to clone (an `Arc`), safe to fire from any thread
/// (the watchdog, an abort watcher, an HTTP handler); observed
/// cooperatively by the query's own thread at checkpoints.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(LIVE),
                detail: Mutex::new(None),
                cancelled_at: Mutex::new(None),
            }),
        }
    }

    /// Cancel with the given reason. Returns `true` if this call was the
    /// one that cancelled the token (first wins; later calls are no-ops
    /// so the surfaced reason and code never change mid-flight).
    pub fn cancel(&self, reason: CancelReason, detail: impl Into<String>) -> bool {
        let won = self
            .inner
            .state
            .compare_exchange(
                LIVE,
                state_from_reason(reason),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if won {
            *lock(&self.inner.detail) = Some(detail.into());
            *lock(&self.inner.cancelled_at) = Some(Instant::now());
        }
        won
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }

    pub fn reason(&self) -> Option<CancelReason> {
        reason_from_state(self.inner.state.load(Ordering::Acquire))
    }

    /// When the token was cancelled (for cancel-to-kill latency).
    pub fn cancelled_at(&self) -> Option<Instant> {
        *lock(&self.inner.cancelled_at)
    }

    /// The well-defined error every observer of a cancelled token sees.
    pub fn error(&self) -> Option<CancelError> {
        let reason = self.reason()?;
        let detail = lock(&self.inner.detail)
            .clone()
            .unwrap_or_else(|| "query cancelled".to_string());
        Some(CancelError { reason, detail })
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An `Instant`-anchored per-statement deadline. `limit = None` never
/// expires. This is the *one* deadline every layer consults — admission
/// waits, retry backoff, convergence loops — replacing the previous
/// per-layer deadline computations.
#[derive(Debug, Clone, Copy)]
pub struct QueryDeadline {
    start: Instant,
    limit: Option<Duration>,
}

impl QueryDeadline {
    pub fn new(limit: Option<Duration>) -> Self {
        QueryDeadline { start: Instant::now(), limit }
    }

    pub fn unbounded() -> Self {
        Self::new(None)
    }

    pub fn within(limit: Duration) -> Self {
        Self::new(Some(limit))
    }

    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// The absolute instant the deadline fires, if bounded.
    pub fn instant(&self) -> Option<Instant> {
        self.limit.map(|l| self.start + l)
    }

    pub fn expired(&self) -> bool {
        match self.limit {
            Some(l) => self.start.elapsed() >= l,
            None => false,
        }
    }

    /// Time left before expiry; `None` means unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.limit.map(|l| l.saturating_sub(self.start.elapsed()))
    }

    /// Would sleeping for `d` cross the deadline?
    pub fn would_exceed(&self, d: Duration) -> bool {
        match self.remaining() {
            Some(rem) => d >= rem,
            None => false,
        }
    }

    /// Clamp a wait to what the deadline allows.
    pub fn clamp(&self, d: Duration) -> Duration {
        match self.remaining() {
            Some(rem) => d.min(rem),
            None => d,
        }
    }
}

/// Gateway-global memory pool shared by every in-flight query's ledger.
/// `capacity = 0` means unlimited.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    used: AtomicU64,
}

impl MemoryPool {
    pub fn new(capacity: u64) -> Arc<Self> {
        Arc::new(MemoryPool { capacity, used: AtomicU64::new(0) })
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    fn try_reserve(&self, bytes: u64) -> bool {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if self.capacity != 0 && next > self.capacity {
                return false;
            }
            match self.used.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.used.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Per-query memory accounting, charged at allocation hot spots. The
/// ledger is *high-water*: charges accumulate over the statement and are
/// released wholesale when it finishes, which is deliberately
/// conservative — a budget that trips early beats an OOM that never
/// reports. `budget = 0` means unlimited.
#[derive(Debug)]
pub struct ResourceLedger {
    budget: u64,
    charged: AtomicU64,
    peak: AtomicU64,
    pool: Option<Arc<MemoryPool>>,
    denials: Option<Arc<Counter>>,
}

impl ResourceLedger {
    pub fn new(budget: u64) -> Self {
        ResourceLedger {
            budget,
            charged: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            pool: None,
            denials: None,
        }
    }

    fn with_pool(mut self, pool: Arc<MemoryPool>, denials: Arc<Counter>) -> Self {
        self.pool = Some(pool);
        self.denials = Some(denials);
        self
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// How much of the per-query budget is left; `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        (self.budget != 0).then(|| self.budget.saturating_sub(self.charged()))
    }

    /// Charge `bytes` against the query (and the gateway pool). On
    /// failure nothing is charged and the caller gets the budget error to
    /// surface — typically via [`QueryGovernor::charge`], which also
    /// cancels the token.
    pub fn charge(&self, bytes: u64) -> Result<(), CancelError> {
        let after = self.charged.fetch_add(bytes, Ordering::AcqRel) + bytes;
        if self.budget != 0 && after > self.budget {
            self.charged.fetch_sub(bytes, Ordering::AcqRel);
            if let Some(d) = &self.denials {
                d.inc();
            }
            return Err(CancelError {
                reason: CancelReason::BudgetExceeded,
                detail: format!(
                    "per-query memory budget exceeded ({after} of {} bytes)",
                    self.budget
                ),
            });
        }
        if let Some(pool) = &self.pool {
            if !pool.try_reserve(bytes) {
                self.charged.fetch_sub(bytes, Ordering::AcqRel);
                if let Some(d) = &self.denials {
                    d.inc();
                }
                return Err(CancelError {
                    reason: CancelReason::BudgetExceeded,
                    detail: format!(
                        "gateway memory pool exhausted ({} of {} bytes in use)",
                        pool.used(),
                        pool.capacity()
                    ),
                });
            }
        }
        self.peak.fetch_max(after, Ordering::AcqRel);
        Ok(())
    }

    /// Return `bytes` to the query's budget (and the pool).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.charged.load(Ordering::Relaxed);
        let mut returned;
        loop {
            returned = bytes.min(cur);
            match self.charged.compare_exchange_weak(
                cur,
                cur - returned,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if let Some(pool) = &self.pool {
            pool.release(returned);
        }
    }

    /// Release everything still charged (statement epilogue).
    fn release_all(&self) {
        let charged = self.charged.swap(0, Ordering::AcqRel);
        if let Some(pool) = &self.pool {
            pool.release(charged);
        }
    }
}

/// Lifecycle stage of an in-flight statement (the `/queries` state
/// machine: admitted → translating → executing → converting →
/// done/cancelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Admitted,
    Translating,
    Executing,
    Converting,
    Done,
    Cancelled,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Translating => "translating",
            Stage::Executing => "executing",
            Stage::Converting => "converting",
            Stage::Done => "done",
            Stage::Cancelled => "cancelled",
        }
    }
}

fn stage_from_u8(v: u8) -> Stage {
    match v {
        1 => Stage::Translating,
        2 => Stage::Executing,
        3 => Stage::Converting,
        4 => Stage::Done,
        5 => Stage::Cancelled,
        _ => Stage::Admitted,
    }
}

fn stage_to_u8(s: Stage) -> u8 {
    match s {
        Stage::Admitted => 0,
        Stage::Translating => 1,
        Stage::Executing => 2,
        Stage::Converting => 3,
        Stage::Done => 4,
        Stage::Cancelled => 5,
    }
}

/// Everything governing one statement: token, deadline, ledger, stage.
#[derive(Debug)]
pub struct QueryGovernor {
    pub id: u64,
    pub session: u64,
    fingerprint: AtomicU64,
    token: CancelToken,
    deadline: QueryDeadline,
    ledger: ResourceLedger,
    stage: AtomicU8,
    started: Instant,
}

impl QueryGovernor {
    /// A free-standing governor (library callers, tests, benches) —
    /// not registered with any gateway registry.
    pub fn standalone(limit: Option<Duration>, budget: u64) -> Arc<Self> {
        Arc::new(QueryGovernor {
            id: 0,
            session: 0,
            fingerprint: AtomicU64::new(0),
            token: CancelToken::new(),
            deadline: QueryDeadline::new(limit),
            ledger: ResourceLedger::new(budget),
            stage: AtomicU8::new(stage_to_u8(Stage::Admitted)),
            started: Instant::now(),
        })
    }

    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    pub fn deadline(&self) -> &QueryDeadline {
        &self.deadline
    }

    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn set_fingerprint(&self, fp: u64) {
        self.fingerprint.store(fp, Ordering::Relaxed);
    }

    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.load(Ordering::Relaxed)
    }

    pub fn set_stage(&self, stage: Stage) {
        self.stage.store(stage_to_u8(stage), Ordering::Relaxed);
    }

    pub fn stage(&self) -> Stage {
        stage_from_u8(self.stage.load(Ordering::Relaxed))
    }

    /// Cancel this statement. First reason wins; returns whether this
    /// call was the cancelling one.
    pub fn cancel(&self, reason: CancelReason, detail: impl Into<String>) -> bool {
        let won = self.token.cancel(reason, detail);
        if won {
            self.set_stage(Stage::Cancelled);
        }
        won
    }

    /// The cooperative cancellation point: cheap enough for inner loops
    /// (one atomic load on the happy path; the deadline is only checked
    /// against the clock when bounded). Marks the token cancelled the
    /// first time an expired deadline is observed.
    pub fn checkpoint(&self) -> Result<(), CancelError> {
        if let Some(err) = self.token.error() {
            return Err(err);
        }
        if self.deadline.expired() {
            let limit = self.deadline.limit().unwrap_or_default();
            let detail = format!("query deadline of {limit:?} exceeded");
            self.cancel(CancelReason::DeadlineExceeded, detail.clone());
            // The token holds whichever cancellation won the race; fall
            // back to the deadline error rather than asserting on it.
            return Err(self.token.error().unwrap_or(CancelError {
                reason: CancelReason::DeadlineExceeded,
                detail,
            }));
        }
        Ok(())
    }

    /// Charge memory to the statement's ledger; a denied charge cancels
    /// the statement with `BudgetExceeded` so every later checkpoint
    /// agrees.
    pub fn charge(&self, bytes: u64) -> Result<(), CancelError> {
        if let Some(err) = self.token.error() {
            return Err(err);
        }
        match self.ledger.charge(bytes) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.cancel(e.reason, e.detail.clone());
                Err(e)
            }
        }
    }

    pub fn release(&self, bytes: u64) {
        self.ledger.release(bytes);
    }

    /// Cancel-request → now, for the cancel-to-kill latency metric.
    pub fn cancel_latency(&self) -> Option<Duration> {
        self.token.cancelled_at().map(|t| t.elapsed())
    }
}

// ---------------------------------------------------------------------------
// Thread-local current-statement handle
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of installed governors; the innermost governs this thread's
    /// current statement. A stack (not a slot) so nested installs — a
    /// library caller inside a gateway worker — restore cleanly.
    static CURRENT: RefCell<Vec<Arc<QueryGovernor>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`install`]; uninstalls on drop.
pub struct GovernorScope {
    _private: (),
}

impl Drop for GovernorScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Install `gov` as this thread's current statement governor for the
/// scope of the returned guard.
pub fn install(gov: Arc<QueryGovernor>) -> GovernorScope {
    CURRENT.with(|c| c.borrow_mut().push(gov));
    GovernorScope { _private: () }
}

/// The governor of the statement currently running on this thread.
pub fn current() -> Option<Arc<QueryGovernor>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Cooperative cancellation point for deep layers (parser nesting loops,
/// transformer passes, engine executor loops). A no-op `Ok` when no
/// governor is installed, so library callers pay one thread-local read.
pub fn checkpoint() -> Result<(), CancelError> {
    match current() {
        Some(gov) => gov.checkpoint(),
        None => Ok(()),
    }
}

/// Charge memory against the current statement's ledger (no-op without a
/// governor).
pub fn charge(bytes: u64) -> Result<(), CancelError> {
    match current() {
        Some(gov) => gov.charge(bytes),
        None => Ok(()),
    }
}

/// Return memory to the current statement's ledger.
pub fn release(bytes: u64) {
    if let Some(gov) = current() {
        gov.release(bytes);
    }
}

/// Record the current statement's lifecycle stage.
pub fn note_stage(stage: Stage) {
    if let Some(gov) = current() {
        gov.set_stage(stage);
    }
}

/// The absolute instant the current statement's deadline fires, if any —
/// for clamping condvar waits and retry backoff.
pub fn deadline_instant() -> Option<Instant> {
    current().and_then(|gov| gov.deadline().instant())
}

/// Time remaining on the current statement's deadline (`None` =
/// unbounded).
pub fn deadline_remaining() -> Option<Duration> {
    current().and_then(|gov| gov.deadline().remaining())
}

/// The cancel error of the current statement, if it has been cancelled.
pub fn cancel_error() -> Option<CancelError> {
    current().and_then(|gov| {
        // Fold an expired-but-unobserved deadline in, so callers see the
        // canonical error even if no checkpoint ran since expiry.
        let _ = gov.checkpoint();
        gov.token().error()
    })
}

/// Run `f` with the governor stack shielded: checkpoints inside see no
/// governor. Used for cleanup that must proceed on a cancelled statement
/// — dropping emulation temp tables, journal replay — so cancellation
/// never leaks target-side state.
pub fn shielded<T>(f: impl FnOnce() -> T) -> T {
    let saved = CURRENT.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let out = f();
    CURRENT.with(|c| *c.borrow_mut() = saved);
    out
}

// ---------------------------------------------------------------------------
// Registry + watchdog
// ---------------------------------------------------------------------------

/// Gateway-level governor policy.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Deadline applied to statements that request none. `None` leaves
    /// them unbounded.
    pub default_query_timeout: Option<Duration>,
    /// Per-query memory budget in bytes (0 = unlimited).
    pub per_query_memory: u64,
    /// Gateway-global memory pool in bytes (0 = unlimited).
    pub total_memory: u64,
    /// Watchdog sweep interval.
    pub watchdog_interval: Duration,
    /// Allow `/queries?cancel=<id>` on the observability endpoint to
    /// cancel statements. Off by default: the endpoint is read-only
    /// unless an operator opts in.
    pub allow_http_cancel: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            default_query_timeout: None,
            per_query_memory: 256 << 20,
            total_memory: 1 << 30,
            watchdog_interval: Duration::from_millis(20),
            allow_http_cancel: false,
        }
    }
}

/// One row of the in-flight query table (the `/queries` route).
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    pub id: u64,
    pub session: u64,
    pub fingerprint: u64,
    pub stage: &'static str,
    pub elapsed: Duration,
    pub mem_bytes: u64,
    pub cancelled: Option<&'static str>,
}

/// The gateway's table of in-flight statements.
pub struct GovernorRegistry {
    config: GovernorConfig,
    pool: Arc<MemoryPool>,
    next_id: AtomicU64,
    inflight: Mutex<HashMap<u64, Arc<QueryGovernor>>>,
    inflight_gauge: Arc<Gauge>,
    pool_gauge: Arc<Gauge>,
    sweeps: Arc<Counter>,
    watchdog_kills: Arc<Counter>,
    denials: Arc<Counter>,
}

impl GovernorRegistry {
    pub fn new(config: GovernorConfig, obs: &ObsContext) -> Arc<Self> {
        let pool = MemoryPool::new(config.total_memory);
        Arc::new(GovernorRegistry {
            config,
            pool,
            next_id: AtomicU64::new(1),
            inflight: Mutex::new(HashMap::new()),
            inflight_gauge: obs.metrics.gauge("hyperq_governor_inflight", &[]),
            pool_gauge: obs.metrics.gauge("hyperq_governor_pool_used_bytes", &[]),
            sweeps: obs.metrics.counter("hyperq_governor_sweeps_total", &[]),
            watchdog_kills: obs.metrics.counter(
                "hyperq_governor_cancels_total",
                &[("reason", "deadline"), ("source", "watchdog")],
            ),
            denials: obs.metrics.counter("hyperq_governor_mem_denials_total", &[]),
        })
    }

    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }

    /// Register a new statement. `client_timeout` (from the wire request)
    /// overrides the configured default. Drop the returned
    /// [`Registration`] when the statement finishes — it deregisters and
    /// releases every ledger charge.
    pub fn begin(self: &Arc<Self>, session: u64, client_timeout: Option<Duration>) -> Registration {
        let limit = client_timeout.or(self.config.default_query_timeout);
        let gov = Arc::new(QueryGovernor {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            session,
            fingerprint: AtomicU64::new(0),
            token: CancelToken::new(),
            deadline: QueryDeadline::new(limit),
            ledger: ResourceLedger::new(self.config.per_query_memory)
                .with_pool(Arc::clone(&self.pool), Arc::clone(&self.denials)),
            stage: AtomicU8::new(stage_to_u8(Stage::Admitted)),
            started: Instant::now(),
        });
        lock(&self.inflight).insert(gov.id, Arc::clone(&gov));
        self.inflight_gauge.add(1);
        Registration { registry: Arc::clone(self), gov }
    }

    /// Cancel an in-flight statement by id (the `/queries?cancel=` hook
    /// and cross-session aborts). `false` when the id is unknown.
    pub fn cancel(&self, id: u64, reason: CancelReason, detail: impl Into<String>) -> bool {
        match lock(&self.inflight).get(&id) {
            Some(gov) => {
                gov.cancel(reason, detail);
                true
            }
            None => false,
        }
    }

    /// The in-flight query table.
    pub fn snapshot(&self) -> Vec<QuerySnapshot> {
        let mut rows: Vec<QuerySnapshot> = lock(&self.inflight)
            .values()
            .map(|gov| QuerySnapshot {
                id: gov.id,
                session: gov.session,
                fingerprint: gov.fingerprint(),
                stage: gov.stage().as_str(),
                elapsed: gov.elapsed(),
                mem_bytes: gov.ledger().charged(),
                cancelled: gov.token().reason().map(CancelReason::as_str),
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    pub fn inflight(&self) -> usize {
        lock(&self.inflight).len()
    }

    /// One watchdog pass: cancel every statement past its deadline.
    /// Budget kills happen inline at the charge site; the watchdog's job
    /// is the statements wedged *between* checkpoints — its cancel makes
    /// their next checkpoint (or admission/backoff wait) fail fast.
    /// Returns how many statements this sweep cancelled.
    pub fn sweep(&self) -> usize {
        self.sweeps.inc();
        let mut killed = 0;
        for gov in lock(&self.inflight).values() {
            if gov.token().is_cancelled() {
                continue;
            }
            if gov.deadline.expired() {
                let limit = gov.deadline.limit().unwrap_or_default();
                if gov.cancel(
                    CancelReason::DeadlineExceeded,
                    format!("query deadline of {limit:?} exceeded (watchdog)"),
                ) {
                    self.watchdog_kills.inc();
                    killed += 1;
                }
            }
        }
        self.pool_gauge.set(self.pool.used().min(i64::MAX as u64) as i64);
        killed
    }

    /// Start the watchdog thread sweeping at the configured interval.
    pub fn spawn_watchdog(self: &Arc<Self>) -> WatchdogHandle {
        let registry = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = self.config.watchdog_interval.max(Duration::from_millis(1));
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                registry.sweep();
                std::thread::sleep(interval);
            }
        });
        WatchdogHandle { stop, thread: Some(thread) }
    }
}

/// RAII registration of one statement with the gateway registry.
pub struct Registration {
    registry: Arc<GovernorRegistry>,
    gov: Arc<QueryGovernor>,
}

impl Registration {
    pub fn governor(&self) -> &Arc<QueryGovernor> {
        &self.gov
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        lock(&self.registry.inflight).remove(&self.gov.id);
        self.registry.inflight_gauge.sub(1);
        self.gov.ledger.release_all();
        if !self.gov.token.is_cancelled() {
            self.gov.set_stage(Stage::Done);
        }
    }
}

/// Handle to the watchdog thread; stops and joins on drop.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_wins_and_is_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.cancel(CancelReason::ClientAbort, "abort"));
        assert!(!token.cancel(CancelReason::DeadlineExceeded, "late"));
        let err = token.error().unwrap();
        assert_eq!(err.reason, CancelReason::ClientAbort);
        assert_eq!(err.reason.wire_code(), 3110);
        assert_eq!(err.detail, "abort");
    }

    #[test]
    fn deadline_expiry_reports_and_clamps() {
        let d = QueryDeadline::within(Duration::from_millis(5));
        assert!(!d.would_exceed(Duration::ZERO));
        assert!(d.would_exceed(Duration::from_secs(1)));
        assert!(d.clamp(Duration::from_secs(1)) <= Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(6));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let unbounded = QueryDeadline::unbounded();
        assert!(!unbounded.expired());
        assert!(!unbounded.would_exceed(Duration::from_secs(3600)));
    }

    #[test]
    fn governor_checkpoint_converts_expired_deadline() {
        let gov = QueryGovernor::standalone(Some(Duration::ZERO), 0);
        let err = gov.checkpoint().unwrap_err();
        assert_eq!(err.reason, CancelReason::DeadlineExceeded);
        assert_eq!(err.reason.wire_code(), 3156);
        assert_eq!(gov.stage(), Stage::Cancelled);
        // Sticky: later checkpoints report the same error.
        assert_eq!(gov.checkpoint().unwrap_err().reason, CancelReason::DeadlineExceeded);
    }

    #[test]
    fn ledger_budget_denial_cancels() {
        let gov = QueryGovernor::standalone(None, 100);
        assert!(gov.charge(60).is_ok());
        assert!(gov.charge(30).is_ok());
        let err = gov.charge(20).unwrap_err();
        assert_eq!(err.reason, CancelReason::BudgetExceeded);
        assert_eq!(err.reason.wire_code(), 2646);
        assert!(gov.token().is_cancelled());
        assert_eq!(gov.ledger().charged(), 90);
        assert_eq!(gov.ledger().peak(), 90);
    }

    #[test]
    fn ledger_release_returns_to_pool() {
        let pool = MemoryPool::new(100);
        let denials = hyperq_obs::ObsContext::new()
            .metrics
            .counter("hyperq_governor_mem_denials_total", &[]);
        let ledger = ResourceLedger::new(0).with_pool(Arc::clone(&pool), denials);
        ledger.charge(70).unwrap();
        assert_eq!(pool.used(), 70);
        assert!(ledger.charge(40).is_err(), "pool exhausted");
        ledger.release(30);
        assert_eq!(pool.used(), 40);
        ledger.release_all();
        assert_eq!(pool.used(), 0);
        assert_eq!(ledger.charged(), 0);
    }

    #[test]
    fn thread_local_install_and_shield() {
        assert!(checkpoint().is_ok(), "no governor installed");
        let gov = QueryGovernor::standalone(None, 0);
        let scope = install(Arc::clone(&gov));
        gov.cancel(CancelReason::ClientAbort, "abort");
        assert_eq!(checkpoint().unwrap_err().reason, CancelReason::ClientAbort);
        // Cleanup paths run shielded: no governor visible inside.
        shielded(|| assert!(checkpoint().is_ok()));
        assert!(checkpoint().is_err(), "shield restored");
        drop(scope);
        assert!(checkpoint().is_ok(), "scope uninstalls");
    }

    #[test]
    fn registry_sweep_kills_expired_and_snapshot_reports() {
        let obs = hyperq_obs::ObsContext::new();
        let registry = GovernorRegistry::new(
            GovernorConfig {
                default_query_timeout: Some(Duration::from_millis(1)),
                ..GovernorConfig::default()
            },
            &obs,
        );
        let reg = registry.begin(7, None);
        reg.governor().set_fingerprint(42);
        assert_eq!(registry.inflight(), 1);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(registry.sweep(), 1);
        assert!(reg.governor().token().is_cancelled());
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].session, 7);
        assert_eq!(snap[0].fingerprint, 42);
        assert_eq!(snap[0].stage, "cancelled");
        assert_eq!(snap[0].cancelled, Some("deadline"));
        drop(reg);
        assert_eq!(registry.inflight(), 0);
        assert_eq!(registry.pool().used(), 0);
    }

    #[test]
    fn registry_cancel_by_id() {
        let obs = hyperq_obs::ObsContext::new();
        let registry = GovernorRegistry::new(GovernorConfig::default(), &obs);
        let reg = registry.begin(1, None);
        let id = reg.governor().id;
        assert!(registry.cancel(id, CancelReason::ClientAbort, "via /queries"));
        assert!(!registry.cancel(id + 99, CancelReason::ClientAbort, "unknown"));
        assert_eq!(
            reg.governor().checkpoint().unwrap_err().reason,
            CancelReason::ClientAbort
        );
    }

    #[test]
    fn watchdog_thread_cancels_past_deadline() {
        let obs = hyperq_obs::ObsContext::new();
        let registry = GovernorRegistry::new(
            GovernorConfig {
                watchdog_interval: Duration::from_millis(2),
                ..GovernorConfig::default()
            },
            &obs,
        );
        let watchdog = registry.spawn_watchdog();
        let reg = registry.begin(1, Some(Duration::from_millis(5)));
        let t0 = Instant::now();
        while !reg.governor().token().is_cancelled() {
            assert!(t0.elapsed() < Duration::from_secs(2), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            reg.governor().token().reason(),
            Some(CancelReason::DeadlineExceeded)
        );
        drop(watchdog);
    }
}
