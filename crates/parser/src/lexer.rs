//! Hand-written SQL lexer.
//!
//! Handles line (`--`) and block (`/* */`) comments, single-quoted string
//! literals with `''` escaping, double-quoted identifiers, numeric literals
//! (including decimals such as `0.85`), named (`:p`) and positional (`?`)
//! parameters, and the multi-character operators of both dialects
//! (`<>`, `<=`, `>=`, `!=`, `^=`, `~=`, `||`, `**`).

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Tokenize `input` completely, appending a final [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($tok:expr, $start:expr) => {
            tokens.push(Spanned { token: $tok, offset: $start, line })
        };
    }

    while i < bytes.len() {
        // Decode the full character at this position (the input is UTF-8;
        // treating a continuation byte as a char would split sequences).
        let Some(c) = input[i..].chars().next() else {
            break;
        };
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        closed = true;
                        break;
                    }
                    i += 1;
                }
                if !closed {
                    return Err(ParseError::new(line, "unterminated block comment"));
                }
            }
            '\'' => {
                i += 1;
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(line, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            raw.push(b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            if b == b'\n' {
                                line += 1;
                            }
                            raw.push(b);
                            i += 1;
                        }
                    }
                }
                let s = String::from_utf8(raw)
                    .map_err(|_| ParseError::new(line, "string literal is not valid UTF-8"))?;
                push!(Token::StringLit(s), start);
            }
            '"' => {
                i += 1;
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError::new(line, "unterminated quoted identifier"))
                        }
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            raw.push(b'"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            raw.push(b);
                            i += 1;
                        }
                    }
                }
                let s = String::from_utf8(raw)
                    .map_err(|_| ParseError::new(line, "quoted identifier is not valid UTF-8"))?;
                push!(Token::QuotedIdent(s), start);
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Fractional part — but not `1..2` style ranges (not SQL) and
                // not `1.` followed by an identifier char.
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                // Exponent part (1e5, 1.5E-3).
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                push!(Token::Number(input[i..j].to_string()), start);
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                for (off, ch) in input[i..].char_indices() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '$' || ch == '#' {
                        j = i + off + ch.len_utf8();
                    } else {
                        break;
                    }
                }
                push!(Token::Word(input[i..j].to_string()), start);
                i = j;
            }
            ':' => {
                let mut j = i + 1;
                for (off, ch) in input[i + 1..].char_indices() {
                    if ch.is_alphanumeric() || ch == '_' {
                        j = i + 1 + off + ch.len_utf8();
                    } else {
                        break;
                    }
                }
                if j == i + 1 {
                    return Err(ParseError::new(line, "bare ':' without parameter name"));
                }
                push!(Token::NamedParam(input[i + 1..j].to_string()), start);
                i = j;
            }
            '?' => {
                push!(Token::Question, start);
                i += 1;
            }
            ',' => {
                push!(Token::Comma, start);
                i += 1;
            }
            '(' => {
                push!(Token::LParen, start);
                i += 1;
            }
            ')' => {
                push!(Token::RParen, start);
                i += 1;
            }
            '.' => {
                push!(Token::Dot, start);
                i += 1;
            }
            ';' => {
                push!(Token::Semicolon, start);
                i += 1;
            }
            '+' => {
                push!(Token::Plus, start);
                i += 1;
            }
            '-' => {
                push!(Token::Minus, start);
                i += 1;
            }
            '*' if bytes.get(i + 1) == Some(&b'*') => {
                push!(Token::Power, start);
                i += 2;
            }
            '*' => {
                push!(Token::Star, start);
                i += 1;
            }
            '/' => {
                push!(Token::Slash, start);
                i += 1;
            }
            '%' => {
                push!(Token::Percent, start);
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                push!(Token::Concat, start);
                i += 2;
            }
            '=' => {
                push!(Token::Eq, start);
                i += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    push!(Token::Le, start);
                    i += 2;
                }
                Some(b'>') => {
                    push!(Token::Neq, start);
                    i += 2;
                }
                _ => {
                    push!(Token::Lt, start);
                    i += 1;
                }
            },
            '>' => match bytes.get(i + 1) {
                Some(b'=') => {
                    push!(Token::Ge, start);
                    i += 2;
                }
                _ => {
                    push!(Token::Gt, start);
                    i += 1;
                }
            },
            '!' | '^' | '~' if bytes.get(i + 1) == Some(&b'=') => {
                push!(Token::Neq, start);
                i += 2;
            }
            other => {
                // Skip the full character width even on error paths taken
                // after recovery attempts.
                let _ = other.len_utf8();
                return Err(ParseError::new(
                    line,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    tokens.push(Spanned { token: Token::Eof, offset: input.len(), line });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn words_numbers_strings() {
        assert_eq!(
            toks("SEL x, 'a''b', 0.85"),
            vec![
                Token::Word("SEL".into()),
                Token::Word("x".into()),
                Token::Comma,
                Token::StringLit("a'b".into()),
                Token::Comma,
                Token::Number("0.85".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a<>b a!=b a^=b a~=b a**2 x||y"),
            vec![
                Token::Word("a".into()),
                Token::Neq,
                Token::Word("b".into()),
                Token::Word("a".into()),
                Token::Neq,
                Token::Word("b".into()),
                Token::Word("a".into()),
                Token::Neq,
                Token::Word("b".into()),
                Token::Word("a".into()),
                Token::Neq,
                Token::Word("b".into()),
                Token::Word("a".into()),
                Token::Power,
                Token::Number("2".into()),
                Token::Word("x".into()),
                Token::Concat,
                Token::Word("y".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- trailing\n/* block\n comment */ 1"),
            vec![
                Token::Word("SELECT".into()),
                Token::Number("1".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 4);
    }

    #[test]
    fn named_and_positional_params() {
        assert_eq!(
            toks("WHERE x = :p1 AND y = ?"),
            vec![
                Token::Word("WHERE".into()),
                Token::Word("x".into()),
                Token::Eq,
                Token::NamedParam("p1".into()),
                Token::Word("AND".into()),
                Token::Word("y".into()),
                Token::Eq,
                Token::Question,
                Token::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(
            toks(r#""Group" "a""b""#),
            vec![
                Token::QuotedIdent("Group".into()),
                Token::QuotedIdent("a\"b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("/* abc").is_err());
    }

    #[test]
    fn decimal_vs_qualified_name() {
        // `T.c` must lex as word-dot-word, not a malformed number.
        assert_eq!(
            toks("T.c 1.5"),
            vec![
                Token::Word("T".into()),
                Token::Dot,
                Token::Word("c".into()),
                Token::Number("1.5".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e5")[0], Token::Number("1e5".into()));
        assert_eq!(toks("1.5E-3")[0], Token::Number("1.5E-3".into()));
    }
}
