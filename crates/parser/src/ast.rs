//! The parser's abstract syntax tree.
//!
//! Per the paper (§5.1) the AST is "a mix of generic and specific parse
//! nodes": generic nodes model ANSI constructs, while vendor-specific
//! information — `QUALIFY`, Teradata window shorthand, `SET` table options,
//! macros, `HELP` — is carried in dedicated fields/variants that only the
//! Teradata dialect produces.

use hyperq_xtra::types::SqlType;
use hyperq_xtra::expr::{CmpOp, DateField, Quantifier};

/// An identifier as written (case preserved; normalization is the binder's
/// job so diagnostics can echo the user's spelling).
pub type Ident = String;

/// Possibly-qualified object name (`db.table`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectName(pub Vec<Ident>);

impl ObjectName {
    pub fn single(name: &str) -> Self {
        ObjectName(vec![name.to_string()])
    }

    /// Dot-joined, upper-cased canonical form.
    pub fn canonical(&self) -> String {
        self.0
            .iter()
            .map(|p| p.to_ascii_uppercase())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Last name component, upper-cased.
    pub fn base(&self) -> String {
        self.0
            .last()
            .map(|s| s.to_ascii_uppercase())
            .unwrap_or_default()
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// Literal values as parsed (numbers kept verbatim for exact decimal
/// handling).
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Number(String),
    String(String),
    /// `DATE '2014-01-01'`.
    Date(String),
    /// `TIMESTAMP '2014-01-01 10:00:00'`.
    Timestamp(String),
    /// `INTERVAL '3' MONTH`.
    Interval { value: String, unit: IntervalUnit },
    Boolean(bool),
    Null,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    Year,
    Month,
    Day,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Plus,
    Minus,
    Mul,
    Div,
    /// `%` or infix `MOD`.
    Mod,
    /// `**`.
    Pow,
    /// `||`.
    Concat,
    Cmp(CmpOp),
    And,
    Or,
}

/// Window specification: `OVER (PARTITION BY … ORDER BY … )`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderByItem>,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference `a.b`.
    Ident(ObjectName),
    Literal(Literal),
    /// `:name` or `?` parameter.
    Parameter(Option<Ident>),
    BinaryOp {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    UnaryMinus(Box<Expr>),
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Query>,
        negated: bool,
    },
    Exists {
        subquery: Box<Query>,
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
    /// Quantified comparison, possibly over a row/vector left side — the
    /// paper's `(AMOUNT, AMOUNT*0.85) > ANY (SEL GROSS, NET FROM …)`.
    QuantifiedCmp {
        left: Box<Expr>,
        op: CmpOp,
        quantifier: Quantifier,
        subquery: Box<Query>,
    },
    /// Parenthesized row `(a, b)`; a 1-element row collapses to the inner
    /// expression during parsing.
    Row(Vec<Expr>),
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        ty: SqlType,
    },
    Extract {
        field: DateField,
        expr: Box<Expr>,
    },
    /// `POSITION(sub IN str)`.
    Position {
        substring: Box<Expr>,
        string: Box<Expr>,
    },
    /// Function call, possibly aggregate (`distinct`) and possibly windowed
    /// (`over`). `td_sort_arg` carries Teradata's non-ANSI shorthand
    /// `RANK(expr [ASC|DESC])` argument (tracked feature X9).
    Function {
        name: ObjectName,
        args: Vec<Expr>,
        distinct: bool,
        over: Option<WindowSpec>,
        td_sort_arg: Option<(Box<Expr>, bool)>,
    },
    /// `COUNT(*)` and friends.
    FunctionStar {
        name: ObjectName,
        over: Option<WindowSpec>,
    },
}

/// `SELECT` list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Wildcard,
    QualifiedWildcard(ObjectName),
    Expr { expr: Expr, alias: Option<Ident> },
}

/// `ORDER BY` item; `ordinal` notes a bare position (tracked feature X4)
/// after parsing, still carried as the literal for the binder to resolve.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
    pub nulls_first: Option<bool>,
}

/// One `GROUP BY` element.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupByItem {
    Expr(Expr),
    Rollup(Vec<Expr>),
    Cube(Vec<Expr>),
    GroupingSets(Vec<Vec<Expr>>),
}

/// Table alias with optional column renaming (`AS T (a, b)`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableAlias {
    pub name: Ident,
    pub columns: Vec<Ident>,
}

/// Join constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    On(Expr),
    None,
}

pub use hyperq_xtra::rel::JoinKind;

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: ObjectName,
        alias: Option<TableAlias>,
    },
    Derived {
        query: Box<Query>,
        alias: TableAlias,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        constraint: JoinConstraint,
    },
}

/// One `SELECT` block (the paper's `ansi_select` node), with the
/// vendor-specific `QUALIFY` (`td_qualify`) attached.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub struct SelectBlock {
    pub distinct: bool,
    /// Teradata `TOP n [WITH TIES]`.
    pub top: Option<TopClause>,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<GroupByItem>,
    pub having: Option<Expr>,
    /// Teradata `QUALIFY` (tracked feature X1).
    pub qualify: Option<Expr>,
    /// `ORDER BY` attached directly to the block; in standard SQL it
    /// belongs to the query expression, but Teradata accepts it interleaved
    /// with other clauses (Example 1 of the paper).
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n` (ANSI target dialect).
    pub limit: Option<u64>,
    /// True when clauses appeared out of standard order (e.g. `ORDER BY`
    /// before `WHERE`) — part of tracked feature X9.
    pub nonstandard_clause_order: bool,
    /// When non-empty this block represents a literal `VALUES` list and the
    /// other clauses are unused (items is a single wildcard).
    pub value_rows: Vec<Vec<Expr>>,
}


#[derive(Debug, Clone, PartialEq)]
pub struct TopClause {
    pub n: u64,
    pub with_ties: bool,
}

/// Query body: select block or set operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    Select(Box<SelectBlock>),
    SetOp {
        kind: hyperq_xtra::rel::SetOpKind,
        all: bool,
        left: Box<QueryBody>,
        right: Box<QueryBody>,
    },
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: Ident,
    pub columns: Vec<Ident>,
    pub query: Query,
}

/// A full query expression: WITH + body + final ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub recursive: bool,
    pub ctes: Vec<Cte>,
    pub body: QueryBody,
    pub order_by: Vec<OrderByItem>,
}

/// `UPDATE`/`MERGE` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentAst {
    pub column: Ident,
    pub value: Expr,
}

/// Column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDefAst {
    pub name: Ident,
    pub ty: SqlType,
    pub not_null: bool,
    pub default: Option<Expr>,
    /// Teradata `NOT CASESPECIFIC` (tracked feature E9).
    pub not_casespecific: bool,
}

/// Table kind options in `CREATE TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateTableKind {
    Permanent,
    /// `CREATE VOLATILE TABLE` (session temp).
    Volatile,
    /// `CREATE GLOBAL TEMPORARY TABLE` (tracked feature E7).
    GlobalTemporary,
}

/// Macro parameter (`CREATE MACRO m (p INTEGER DEFAULT 0) AS (...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroParam {
    pub name: Ident,
    pub ty: SqlType,
    pub default: Option<Expr>,
}

/// `HELP` command targets (tracked feature E5).
#[derive(Debug, Clone, PartialEq)]
pub enum HelpTarget {
    Session,
    Table(ObjectName),
}

/// `MERGE` statement (tracked feature E4).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStmt {
    pub target: ObjectName,
    pub target_alias: Option<Ident>,
    pub source: TableRef,
    pub on: Expr,
    pub when_matched_update: Option<Vec<AssignmentAst>>,
    pub when_not_matched_insert: Option<(Vec<Ident>, Vec<Expr>)>,
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Box<Query>),
    Insert {
        table: ObjectName,
        columns: Vec<Ident>,
        source: Box<Query>,
    },
    Update {
        table: ObjectName,
        alias: Option<Ident>,
        assignments: Vec<AssignmentAst>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: ObjectName,
        alias: Option<Ident>,
        where_clause: Option<Expr>,
    },
    Merge(Box<MergeStmt>),
    CreateTable {
        name: ObjectName,
        columns: Vec<ColumnDefAst>,
        /// `Some(true)` = SET, `Some(false)` = MULTISET, `None` = default.
        set_semantics: Option<bool>,
        kind: CreateTableKind,
        as_query: Option<Box<Query>>,
    },
    DropTable {
        name: ObjectName,
        if_exists: bool,
    },
    CreateView {
        name: ObjectName,
        columns: Vec<Ident>,
        query: Box<Query>,
        or_replace: bool,
    },
    DropView {
        name: ObjectName,
        if_exists: bool,
    },
    CreateMacro {
        name: ObjectName,
        params: Vec<MacroParam>,
        body: Vec<Statement>,
    },
    DropMacro {
        name: ObjectName,
    },
    /// `EXECUTE macro(args)`; values may be positional or `name = value`.
    ExecuteMacro {
        name: ObjectName,
        args: Vec<(Option<Ident>, Expr)>,
    },
    CreateProcedure {
        name: ObjectName,
        params: Vec<MacroParam>,
        body: Vec<Statement>,
    },
    Call {
        name: ObjectName,
        args: Vec<Expr>,
    },
    Help(HelpTarget),
    /// `EXPLAIN <statement>` — answered by the mid tier with the
    /// translation plan (tracked features, XTRA tree, target SQL).
    Explain(Box<Statement>),
    /// `SET SESSION <name> = <value>` — session setting, kept in the mid
    /// tier and reflected by `HELP SESSION`.
    SetSession { name: Ident, value: Expr },
    BeginTransaction,
    Commit,
    Rollback,
}

impl Expr {
    /// Walk this expression tree pre-order, *without* descending into
    /// subqueries. Used by the binder's implicit-join discovery, which is
    /// per query block: each subquery block runs its own pass when bound.
    pub fn walk_no_subquery(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Ident(_)
            | Expr::Literal(_)
            | Expr::Parameter(_)
            | Expr::Subquery(_)
            | Expr::Exists { .. } => {}
            Expr::BinaryOp { left, right, .. } => {
                left.walk_no_subquery(f);
                right.walk_no_subquery(f);
            }
            Expr::UnaryMinus(e) | Expr::Not(e) => e.walk_no_subquery(f),
            Expr::IsNull { expr, .. } => expr.walk_no_subquery(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk_no_subquery(f);
                pattern.walk_no_subquery(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk_no_subquery(f);
                low.walk_no_subquery(f);
                high.walk_no_subquery(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_no_subquery(f);
                for e in list {
                    e.walk_no_subquery(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk_no_subquery(f),
            Expr::QuantifiedCmp { left, .. } => left.walk_no_subquery(f),
            Expr::Row(items) => {
                for e in items {
                    e.walk_no_subquery(f);
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    o.walk_no_subquery(f);
                }
                for (c, r) in branches {
                    c.walk_no_subquery(f);
                    r.walk_no_subquery(f);
                }
                if let Some(e) = else_expr {
                    e.walk_no_subquery(f);
                }
            }
            Expr::Cast { expr, .. } | Expr::Extract { expr, .. } => expr.walk_no_subquery(f),
            Expr::Position { substring, string } => {
                substring.walk_no_subquery(f);
                string.walk_no_subquery(f);
            }
            Expr::Function { args, over, td_sort_arg, .. } => {
                for a in args {
                    a.walk_no_subquery(f);
                }
                if let Some(spec) = over {
                    for p in &spec.partition_by {
                        p.walk_no_subquery(f);
                    }
                    for k in &spec.order_by {
                        k.expr.walk_no_subquery(f);
                    }
                }
                if let Some((e, _)) = td_sort_arg {
                    e.walk_no_subquery(f);
                }
            }
            Expr::FunctionStar { over, .. } => {
                if let Some(spec) = over {
                    for p in &spec.partition_by {
                        p.walk_no_subquery(f);
                    }
                    for k in &spec.order_by {
                        k.expr.walk_no_subquery(f);
                    }
                }
            }
        }
    }

    /// Rewrite this expression bottom-up (including into subqueries is NOT
    /// performed; statement-level rewriters handle nested queries
    /// explicitly). Used by macro parameter substitution and MERGE
    /// decomposition.
    pub fn rewrite(self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let node = match self {
            Expr::Ident(_) | Expr::Literal(_) | Expr::Parameter(_) => self,
            Expr::BinaryOp { op, left, right } => Expr::BinaryOp {
                op,
                left: Box::new(left.rewrite(f)),
                right: Box::new(right.rewrite(f)),
            },
            Expr::UnaryMinus(e) => Expr::UnaryMinus(Box::new(e.rewrite(f))),
            Expr::Not(e) => Expr::Not(Box::new(e.rewrite(f))),
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.rewrite(f)), negated }
            }
            Expr::Like { expr, pattern, negated } => Expr::Like {
                expr: Box::new(expr.rewrite(f)),
                pattern: Box::new(pattern.rewrite(f)),
                negated,
            },
            Expr::Between { expr, low, high, negated } => Expr::Between {
                expr: Box::new(expr.rewrite(f)),
                low: Box::new(low.rewrite(f)),
                high: Box::new(high.rewrite(f)),
                negated,
            },
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.rewrite(f)),
                list: list.into_iter().map(|e| e.rewrite(f)).collect(),
                negated,
            },
            Expr::InSubquery { expr, subquery, negated } => Expr::InSubquery {
                expr: Box::new(expr.rewrite(f)),
                subquery,
                negated,
            },
            Expr::Exists { subquery, negated } => Expr::Exists { subquery, negated },
            Expr::Subquery(q) => Expr::Subquery(q),
            Expr::QuantifiedCmp { left, op, quantifier, subquery } => Expr::QuantifiedCmp {
                left: Box::new(left.rewrite(f)),
                op,
                quantifier,
                subquery,
            },
            Expr::Row(items) => Expr::Row(items.into_iter().map(|e| e.rewrite(f)).collect()),
            Expr::Case { operand, branches, else_expr } => Expr::Case {
                operand: operand.map(|o| Box::new(o.rewrite(f))),
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.rewrite(f), r.rewrite(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.rewrite(f))),
            },
            Expr::Cast { expr, ty } => Expr::Cast { expr: Box::new(expr.rewrite(f)), ty },
            Expr::Extract { field, expr } => {
                Expr::Extract { field, expr: Box::new(expr.rewrite(f)) }
            }
            Expr::Position { substring, string } => Expr::Position {
                substring: Box::new(substring.rewrite(f)),
                string: Box::new(string.rewrite(f)),
            },
            Expr::Function { name, args, distinct, over, td_sort_arg } => Expr::Function {
                name,
                args: args.into_iter().map(|e| e.rewrite(f)).collect(),
                distinct,
                over: over.map(|spec| WindowSpec {
                    partition_by: spec
                        .partition_by
                        .into_iter()
                        .map(|e| e.rewrite(f))
                        .collect(),
                    order_by: spec
                        .order_by
                        .into_iter()
                        .map(|k| OrderByItem { expr: k.expr.rewrite(f), ..k })
                        .collect(),
                }),
                td_sort_arg: td_sort_arg.map(|(e, d)| (Box::new(e.rewrite(f)), d)),
            },
            Expr::FunctionStar { name, over } => Expr::FunctionStar { name, over },
        };
        f(node)
    }
}
