//! Recursive-descent parser: machinery and statement-level grammar.
//!
//! Query (`SELECT`) and expression grammars live in `crate::select` and
//! `crate::expr_parse`; this module owns the token cursor, the observed
//! [`FeatureSet`], and DDL/DML/utility statements.

use hyperq_xtra::feature::{Feature, FeatureSet};
use hyperq_xtra::types::SqlType;

use crate::ast::*;
use crate::dialect::Dialect;
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Spanned, Token};

/// Byte range (plus starting line) of one statement within its source
/// script. Offsets index the *original* input, so diagnostics and lint
/// findings can point at the exact source slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmtSpan {
    /// Byte offset of the statement's first token.
    pub start: usize,
    /// Byte offset one past the statement's last token.
    pub end: usize,
    /// 1-based line of the statement's first token.
    pub line: u32,
}

impl StmtSpan {
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A parsed statement together with the tracked features the parser
/// observed in it. Binder and transformer add their own observations later;
/// the union feeds the Figure 8 instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedStatement {
    pub stmt: Statement,
    pub features: FeatureSet,
    /// Source text of the statement (trimmed slice of the input script).
    pub text: String,
    /// Where the statement sits in the source script.
    pub span: StmtSpan,
}

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(sql: &str, dialect: Dialect) -> Result<Vec<ParsedStatement>, ParseError> {
    let mut p = Parser::new(sql, dialect)?;
    let mut out = Vec::new();
    loop {
        while p.consume(&Token::Semicolon) {}
        if p.peek_is(&Token::Eof) {
            break;
        }
        p.features = FeatureSet::new();
        let start = p.current_offset();
        let line = p.line();
        let stmt = p.parse_statement()?;
        let end = p.current_offset();
        out.push(ParsedStatement {
            stmt,
            features: p.features.clone(),
            text: sql[start..end.max(start)].trim().to_string(),
            span: StmtSpan { start, end: end.max(start), line },
        });
        if !p.peek_is(&Token::Semicolon) && !p.peek_is(&Token::Eof) {
            return Err(p.err("expected ';' or end of input after statement"));
        }
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_one(sql: &str, dialect: Dialect) -> Result<ParsedStatement, ParseError> {
    let stmts = parse_statements(sql, dialect)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("len checked")),
        0 => Err(ParseError::new(1, "empty statement")),
        n => Err(ParseError::new(1, format!("expected one statement, found {n}"))),
    }
}

/// Deepest allowed expression/query nesting. The recursive-descent parser
/// recurses roughly a dozen stack frames per level; without a ceiling a
/// pathological input like ten thousand opening parentheses overflows the
/// stack and kills the whole process instead of failing the one statement.
/// 64 keeps the worst case comfortably inside a 2 MiB thread stack (debug
/// builds included) while far exceeding any real workload's nesting.
pub const MAX_NESTING: usize = 64;

pub struct Parser {
    tokens: Vec<Spanned>,
    pub(crate) pos: usize,
    pub dialect: Dialect,
    pub features: FeatureSet,
    /// Current expression/query nesting depth (see [`MAX_NESTING`]).
    pub(crate) depth: usize,
}

impl Parser {
    pub fn new(sql: &str, dialect: Dialect) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            dialect,
            features: FeatureSet::new(),
            depth: 0,
        })
    }

    /// Enter one nesting level of expression/query recursion; errors out
    /// (instead of overflowing the stack) past [`MAX_NESTING`].
    pub(crate) fn nest(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            self.depth -= 1;
            return Err(ParseError::new(
                self.line(),
                format!("statement nesting exceeds {MAX_NESTING} levels"),
            ));
        }
        // Cooperative cancellation: deeply recursive parses of adversarial
        // input observe the statement governor at every nesting level.
        if let Err(c) = hyperq_governor::checkpoint() {
            self.depth -= 1;
            return Err(ParseError::new(self.line(), c.to_string()));
        }
        Ok(())
    }

    pub(crate) fn unnest(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    // --- token cursor -----------------------------------------------------

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    pub(crate) fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].token
    }

    pub(crate) fn peek_is(&self, t: &Token) -> bool {
        self.peek() == t
    }

    pub(crate) fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    pub(crate) fn peek_kw_at(&self, n: usize, kw: &str) -> bool {
        self.peek_at(n).is_kw(kw)
    }

    pub(crate) fn current_offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    pub(crate) fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    pub(crate) fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn consume(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn consume_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.consume(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.consume_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {}", self.peek())))
        }
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), msg)
    }

    pub(crate) fn record(&mut self, f: Feature) {
        self.features.insert(f);
    }

    // --- identifiers and names --------------------------------------------

    pub(crate) fn parse_ident(&mut self) -> Result<Ident, ParseError> {
        match self.advance() {
            Token::Word(w) => Ok(w),
            Token::QuotedIdent(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    pub(crate) fn parse_object_name(&mut self) -> Result<ObjectName, ParseError> {
        let mut parts = vec![self.parse_ident()?];
        while self.consume(&Token::Dot) {
            parts.push(self.parse_ident()?);
        }
        Ok(ObjectName(parts))
    }

    pub(crate) fn parse_ident_list(&mut self) -> Result<Vec<Ident>, ParseError> {
        let mut out = vec![self.parse_ident()?];
        while self.consume(&Token::Comma) {
            out.push(self.parse_ident()?);
        }
        Ok(out)
    }

    pub(crate) fn parse_u64(&mut self) -> Result<u64, ParseError> {
        match self.advance() {
            Token::Number(n) => n
                .parse::<u64>()
                .map_err(|_| self.err(format!("expected integer, found {n}"))),
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    // --- types -------------------------------------------------------------

    /// Parse a type name into the shared [`SqlType`].
    pub(crate) fn parse_type(&mut self) -> Result<SqlType, ParseError> {
        let name = self.parse_ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "BYTEINT" => SqlType::Integer,
            "FLOAT" | "REAL" => SqlType::Double,
            "DOUBLE" => {
                self.consume_kw("PRECISION");
                SqlType::Double
            }
            "DECIMAL" | "NUMERIC" | "DEC" => {
                if self.consume(&Token::LParen) {
                    let p = self.parse_u64()? as u8;
                    let s = if self.consume(&Token::Comma) {
                        self.parse_u64()? as u8
                    } else {
                        0
                    };
                    self.expect(&Token::RParen)?;
                    SqlType::Decimal { precision: p, scale: s }
                } else {
                    SqlType::Decimal { precision: 18, scale: 0 }
                }
            }
            "DATE" => SqlType::Date,
            "TIMESTAMP" => {
                // Optional fractional-seconds precision, ignored.
                if self.consume(&Token::LParen) {
                    self.parse_u64()?;
                    self.expect(&Token::RParen)?;
                }
                SqlType::Timestamp
            }
            "CHAR" | "CHARACTER" => {
                if self.consume(&Token::LParen) {
                    let n = self.parse_u64()? as u32;
                    self.expect(&Token::RParen)?;
                    SqlType::Char(n)
                } else {
                    SqlType::Char(1)
                }
            }
            "VARCHAR" => {
                if self.consume(&Token::LParen) {
                    let n = self.parse_u64()? as u32;
                    self.expect(&Token::RParen)?;
                    SqlType::Varchar(Some(n))
                } else {
                    SqlType::Varchar(None)
                }
            }
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            "PERIOD" => {
                self.expect(&Token::LParen)?;
                let inner = self.parse_type()?;
                self.expect(&Token::RParen)?;
                self.record(Feature::ColumnProperties);
                SqlType::Period(Box::new(inner))
            }
            other => return Err(self.err(format!("unknown type name {other}"))),
        };
        Ok(ty)
    }

    // --- statement dispatch -------------------------------------------------

    pub(crate) fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        let kw = match self.peek().keyword() {
            Some(kw) => kw,
            None if self.peek_is(&Token::LParen) => {
                return Ok(Statement::Query(Box::new(self.parse_query()?)));
            }
            _ => return Err(self.err(format!("expected statement, found {}", self.peek()))),
        };
        match kw.as_str() {
            "SELECT" | "WITH" => Ok(Statement::Query(Box::new(self.parse_query()?))),
            "SEL" if self.dialect.allows_keyword_shortcuts() => {
                Ok(Statement::Query(Box::new(self.parse_query()?)))
            }
            "INSERT" => self.parse_insert(false),
            "INS" if self.dialect.allows_keyword_shortcuts() => self.parse_insert(true),
            "UPDATE" => self.parse_update(false),
            "UPD" if self.dialect.allows_keyword_shortcuts() => self.parse_update(true),
            "DELETE" => self.parse_delete(false),
            "DEL" if self.dialect.allows_keyword_shortcuts() => self.parse_delete(true),
            "MERGE" if self.dialect.allows_td_statements() => self.parse_merge(),
            "CREATE" => self.parse_create(),
            "REPLACE" if self.dialect.allows_td_statements() => self.parse_replace(),
            "DROP" => self.parse_drop(),
            "EXECUTE" | "EXEC" if self.dialect.allows_td_statements() => self.parse_execute(),
            "CALL" if self.dialect.allows_td_statements() => self.parse_call(),
            "HELP" if self.dialect.allows_td_statements() => self.parse_help(),
            "EXPLAIN" if self.dialect.allows_td_statements() => {
                self.advance();
                let inner = self.parse_statement()?;
                Ok(Statement::Explain(Box::new(inner)))
            }
            // Teradata `LOCKING <object> FOR ACCESS|READ|WRITE` prefix:
            // a locking-level modifier ubiquitous in BI workloads. The
            // target manages its own concurrency control; the modifier is
            // parsed and dropped.
            "LOCKING" if self.dialect.allows_td_statements() => {
                self.advance();
                self.consume_kw("TABLE");
                self.consume_kw("ROW");
                if !self.peek_kw("FOR") {
                    // Object name (e.g. LOCKING SALES FOR ACCESS).
                    self.parse_object_name()?;
                }
                self.expect_kw("FOR")?;
                if !self.consume_kw("ACCESS") && !self.consume_kw("READ") {
                    self.expect_kw("WRITE")?;
                }
                self.parse_statement()
            }
            "SET" if self.dialect.allows_td_statements() && self.peek_kw_at(1, "SESSION") => {
                self.advance();
                self.advance();
                let name = self.parse_ident()?;
                self.expect(&Token::Eq)?;
                let value = self.parse_expr()?;
                Ok(Statement::SetSession { name, value })
            }
            "BT" if self.dialect.allows_td_statements() => {
                self.advance();
                Ok(Statement::BeginTransaction)
            }
            "BEGIN" => {
                self.advance();
                self.consume_kw("TRANSACTION");
                Ok(Statement::BeginTransaction)
            }
            "ET" if self.dialect.allows_td_statements() => {
                self.advance();
                Ok(Statement::Commit)
            }
            "COMMIT" => {
                self.advance();
                self.consume_kw("WORK");
                Ok(Statement::Commit)
            }
            "END" => {
                self.advance();
                self.expect_kw("TRANSACTION")?;
                Ok(Statement::Commit)
            }
            "ROLLBACK" | "ABORT" => {
                self.advance();
                self.consume_kw("WORK");
                Ok(Statement::Rollback)
            }
            other => Err(self.err(format!("unexpected statement keyword {other}"))),
        }
    }

    // --- DML ----------------------------------------------------------------

    fn parse_insert(&mut self, shortcut: bool) -> Result<Statement, ParseError> {
        self.advance(); // INSERT | INS
        if shortcut {
            self.record(Feature::KeywordShortcut);
        }
        // INTO is mandatory in ANSI, optional in Teradata.
        if !self.consume_kw("INTO") && !self.dialect.allows_td_statements() {
            return Err(self.err("expected INTO after INSERT"));
        }
        let table = self.parse_object_name()?;
        let mut columns = Vec::new();
        if self.peek_is(&Token::LParen) {
            // Either a column list or (Teradata) a bare VALUES list:
            // `INS t (1, 'a')`. Disambiguate: a column list is all idents
            // and is followed by VALUES/SELECT/SEL/(.
            let save = self.pos;
            self.advance();
            let all_idents = self.looks_like_ident_list();
            self.pos = save;
            if all_idents {
                self.advance();
                columns = self.parse_ident_list()?;
                self.expect(&Token::RParen)?;
            } else {
                // Teradata shorthand: values without the VALUES keyword.
                self.advance();
                let row = self.parse_expr_list()?;
                self.expect(&Token::RParen)?;
                let query = Query {
                    recursive: false,
                    ctes: Vec::new(),
                    body: QueryBody::Select(Box::new(values_block(vec![row]))),
                    order_by: Vec::new(),
                };
                return Ok(Statement::Insert { table, columns, source: Box::new(query) });
            }
        }
        if self.consume_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                rows.push(self.parse_expr_list()?);
                self.expect(&Token::RParen)?;
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
            let query = Query {
                recursive: false,
                ctes: Vec::new(),
                body: QueryBody::Select(Box::new(values_block(rows))),
                order_by: Vec::new(),
            };
            Ok(Statement::Insert { table, columns, source: Box::new(query) })
        } else {
            let source = self.parse_query()?;
            Ok(Statement::Insert { table, columns, source: Box::new(source) })
        }
    }

    /// After `(`, check whether the parenthesized list is a pure identifier
    /// list (column names) rather than expressions.
    fn looks_like_ident_list(&self) -> bool {
        let mut n = 0usize;
        loop {
            match self.peek_at(n) {
                Token::Word(_) | Token::QuotedIdent(_) => {}
                _ => return false,
            }
            match self.peek_at(n + 1) {
                Token::Comma => n += 2,
                Token::RParen => {
                    // A column list is followed by VALUES, SELECT/SEL or a
                    // parenthesized query.
                    return matches!(self.peek_at(n + 2), Token::LParen)
                        || self.peek_at(n + 2).is_kw("VALUES")
                        || self.peek_at(n + 2).is_kw("SELECT")
                        || self.peek_at(n + 2).is_kw("SEL")
                        || self.peek_at(n + 2).is_kw("WITH");
                }
                _ => return false,
            }
        }
    }

    fn parse_update(&mut self, shortcut: bool) -> Result<Statement, ParseError> {
        self.advance();
        if shortcut {
            self.record(Feature::KeywordShortcut);
        }
        let table = self.parse_object_name()?;
        let explicit_as = self.consume_kw("AS");
        let alias = if explicit_as || !self.peek_kw("SET") {
            match self.peek() {
                Token::Word(_) | Token::QuotedIdent(_) => Some(self.parse_ident()?),
                _ if explicit_as => return Err(self.err("expected alias after AS")),
                _ => None,
            }
        } else {
            None
        };
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.parse_ident()?;
            self.expect(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push(AssignmentAst { column, value });
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.consume_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update { table, alias, assignments, where_clause })
    }

    fn parse_delete(&mut self, shortcut: bool) -> Result<Statement, ParseError> {
        self.advance();
        if shortcut {
            self.record(Feature::KeywordShortcut);
        }
        // ANSI: DELETE FROM t; Teradata also allows DELETE t.
        let had_from = self.consume_kw("FROM");
        if !had_from && !self.dialect.allows_td_statements() {
            return Err(self.err("expected FROM after DELETE"));
        }
        let table = self.parse_object_name()?;
        let explicit_as = self.consume_kw("AS");
        let alias = match self.peek() {
            Token::Word(w)
                if explicit_as
                    || (!w.eq_ignore_ascii_case("WHERE") && !w.eq_ignore_ascii_case("ALL")) =>
            {
                Some(self.parse_ident()?)
            }
            _ if explicit_as => return Err(self.err("expected alias after AS")),
            _ => None,
        };
        // Teradata `DELETE t ALL` = unconditional delete.
        self.consume_kw("ALL");
        let where_clause = if self.consume_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, alias, where_clause })
    }

    fn parse_merge(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("MERGE")?;
        self.record(Feature::MergeStatement);
        self.consume_kw("INTO");
        let target = self.parse_object_name()?;
        let target_alias = if self.consume_kw("AS")
            || matches!(self.peek(), Token::Word(w) if !w.eq_ignore_ascii_case("USING"))
        {
            Some(self.parse_ident()?)
        } else {
            None
        };
        self.expect_kw("USING")?;
        let source = self.parse_table_factor()?;
        self.expect_kw("ON")?;
        let on = self.parse_expr()?;
        let mut when_matched_update = None;
        let mut when_not_matched_insert = None;
        while self.consume_kw("WHEN") {
            if self.consume_kw("MATCHED") {
                self.expect_kw("THEN")?;
                self.expect_kw("UPDATE")?;
                self.expect_kw("SET")?;
                let mut assignments = Vec::new();
                loop {
                    let column = self.parse_ident()?;
                    self.expect(&Token::Eq)?;
                    let value = self.parse_expr()?;
                    assignments.push(AssignmentAst { column, value });
                    if !self.consume(&Token::Comma) {
                        break;
                    }
                }
                when_matched_update = Some(assignments);
            } else {
                self.expect_kw("NOT")?;
                self.expect_kw("MATCHED")?;
                self.expect_kw("THEN")?;
                self.expect_kw("INSERT")?;
                let mut cols = Vec::new();
                if self.consume(&Token::LParen) {
                    cols = self.parse_ident_list()?;
                    self.expect(&Token::RParen)?;
                }
                self.expect_kw("VALUES")?;
                self.expect(&Token::LParen)?;
                let vals = self.parse_expr_list()?;
                self.expect(&Token::RParen)?;
                when_not_matched_insert = Some((cols, vals));
            }
        }
        if when_matched_update.is_none() && when_not_matched_insert.is_none() {
            return Err(self.err("MERGE requires at least one WHEN clause"));
        }
        Ok(Statement::Merge(Box::new(MergeStmt {
            target,
            target_alias,
            source,
            on,
            when_matched_update,
            when_not_matched_insert,
        })))
    }

    // --- DDL ----------------------------------------------------------------

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        let mut set_semantics = None;
        let mut kind = CreateTableKind::Permanent;
        loop {
            if self.peek_kw("SET") && self.peek_kw_at(1, "TABLE") {
                self.advance();
                set_semantics = Some(true);
                self.record(Feature::SetTableSemantics);
            } else if self.consume_kw("MULTISET") {
                set_semantics = Some(false);
            } else if self.consume_kw("VOLATILE") {
                kind = CreateTableKind::Volatile;
            } else if self.peek_kw("GLOBAL") {
                self.advance();
                self.expect_kw("TEMPORARY")?;
                kind = CreateTableKind::GlobalTemporary;
                self.record(Feature::GlobalTempTable);
            } else if self.consume_kw("TEMPORARY") || self.consume_kw("TEMP") {
                kind = CreateTableKind::Volatile;
            } else {
                break;
            }
        }
        if self.consume_kw("TABLE") {
            return self.parse_create_table(set_semantics, kind);
        }
        if set_semantics.is_some() || kind != CreateTableKind::Permanent {
            return Err(self.err("expected TABLE"));
        }
        let or_replace = if self.consume_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.consume_kw("VIEW") {
            return self.parse_create_view(or_replace);
        }
        if self.dialect.allows_td_statements() {
            if self.consume_kw("MACRO") {
                return self.parse_create_macro();
            }
            if self.consume_kw("PROCEDURE") {
                return self.parse_create_procedure();
            }
        }
        Err(self.err("expected TABLE, VIEW, MACRO or PROCEDURE after CREATE"))
    }

    fn parse_create_table(
        &mut self,
        set_semantics: Option<bool>,
        kind: CreateTableKind,
    ) -> Result<Statement, ParseError> {
        let name = self.parse_object_name()?;
        // CTAS: Teradata `AS (SELECT ...) WITH DATA` or ANSI `AS SELECT ...`.
        if self.consume_kw("AS") {
            let parenthesized = self.consume(&Token::LParen);
            let q = self.parse_query()?;
            if parenthesized {
                self.expect(&Token::RParen)?;
            }
            self.consume_kw("WITH");
            self.consume_kw("DATA");
            return Ok(Statement::CreateTable {
                name,
                columns: Vec::new(),
                set_semantics,
                kind,
                as_query: Some(Box::new(q)),
            });
        }
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            // Table-level constraints: PRIMARY KEY (...), UNIQUE (...).
            if self.peek_kw("PRIMARY") || self.peek_kw("UNIQUE") || self.peek_kw("CONSTRAINT") {
                self.skip_constraint()?;
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        // Teradata physical design clauses: PRIMARY INDEX (...), etc.
        // Physical design "does not necessarily need to be transferred"
        // (paper Appendix A) — parsed and dropped.
        if self.consume_kw("UNIQUE") {
            self.expect_kw("PRIMARY")?;
            self.expect_kw("INDEX")?;
            self.skip_paren_group()?;
        } else if self.peek_kw("PRIMARY") && self.peek_kw_at(1, "INDEX") {
            self.advance();
            self.advance();
            self.skip_paren_group()?;
        }
        if self.consume_kw("ON") {
            // ON COMMIT PRESERVE/DELETE ROWS for global temporary tables.
            self.expect_kw("COMMIT")?;
            if !self.consume_kw("PRESERVE") {
                self.expect_kw("DELETE")?;
            }
            self.expect_kw("ROWS")?;
        }
        Ok(Statement::CreateTable { name, columns, set_semantics, kind, as_query: None })
    }

    fn parse_column_def(&mut self) -> Result<ColumnDefAst, ParseError> {
        let name = self.parse_ident()?;
        let ty = self.parse_type()?;
        let mut not_null = false;
        let mut default = None;
        let mut not_casespecific = false;
        loop {
            if self.peek_kw("NOT") && self.peek_kw_at(1, "NULL") {
                self.advance();
                self.advance();
                not_null = true;
            } else if self.peek_kw("NOT") && self.peek_kw_at(1, "CASESPECIFIC") {
                self.advance();
                self.advance();
                not_casespecific = true;
                self.record(Feature::ColumnProperties);
            } else if self.consume_kw("CASESPECIFIC") {
                // Explicit default; nothing to remember.
            } else if self.consume_kw("DEFAULT") {
                let e = self.parse_expr()?;
                if !matches!(e, Expr::Literal(_)) {
                    // Non-constant default (e.g. CURRENT_DATE): a column
                    // property most targets cannot store (E9).
                    self.record(Feature::ColumnProperties);
                }
                default = Some(e);
            } else if self.peek_kw("PRIMARY") && self.peek_kw_at(1, "KEY") {
                self.advance();
                self.advance();
                not_null = true;
            } else if self.consume_kw("UNIQUE") {
                // Accepted and ignored.
            } else {
                break;
            }
        }
        Ok(ColumnDefAst { name, ty, not_null, default, not_casespecific })
    }

    fn skip_constraint(&mut self) -> Result<(), ParseError> {
        // PRIMARY KEY (...) | UNIQUE (...) | CONSTRAINT name ...
        if self.consume_kw("CONSTRAINT") {
            self.parse_ident()?;
        }
        if self.consume_kw("PRIMARY") {
            self.expect_kw("KEY")?;
        } else if self.consume_kw("UNIQUE") {
        }
        self.skip_paren_group()?;
        Ok(())
    }

    fn skip_paren_group(&mut self) -> Result<(), ParseError> {
        self.expect(&Token::LParen)?;
        let mut depth = 1usize;
        loop {
            match self.advance() {
                Token::LParen => depth += 1,
                Token::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Token::Eof => return Err(self.err("unterminated parenthesized group")),
                _ => {}
            }
        }
    }

    fn parse_create_view(&mut self, or_replace: bool) -> Result<Statement, ParseError> {
        let name = self.parse_object_name()?;
        let mut columns = Vec::new();
        if self.consume(&Token::LParen) {
            columns = self.parse_ident_list()?;
            self.expect(&Token::RParen)?;
        }
        self.expect_kw("AS")?;
        let query = self.parse_query()?;
        Ok(Statement::CreateView { name, columns, query: Box::new(query), or_replace })
    }

    fn parse_replace(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("REPLACE")?;
        if self.consume_kw("VIEW") {
            return self.parse_create_view(true);
        }
        if self.consume_kw("MACRO") {
            return self.parse_create_macro();
        }
        Err(self.err("expected VIEW or MACRO after REPLACE"))
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DROP")?;
        if self.consume_kw("TABLE") {
            let if_exists = self.parse_if_exists()?;
            let name = self.parse_object_name()?;
            Ok(Statement::DropTable { name, if_exists })
        } else if self.consume_kw("VIEW") {
            let if_exists = self.parse_if_exists()?;
            let name = self.parse_object_name()?;
            Ok(Statement::DropView { name, if_exists })
        } else if self.dialect.allows_td_statements() && self.consume_kw("MACRO") {
            let name = self.parse_object_name()?;
            self.record(Feature::MacroStatement);
            Ok(Statement::DropMacro { name })
        } else {
            Err(self.err("expected TABLE, VIEW or MACRO after DROP"))
        }
    }

    fn parse_if_exists(&mut self) -> Result<bool, ParseError> {
        if self.consume_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    // --- macros / procedures / utility ---------------------------------------

    fn parse_macro_params(&mut self) -> Result<Vec<MacroParam>, ParseError> {
        let mut params = Vec::new();
        if self.consume(&Token::LParen) {
            loop {
                let name = self.parse_ident()?;
                let ty = self.parse_type()?;
                let default = if self.consume_kw("DEFAULT") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                params.push(MacroParam { name, ty, default });
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(params)
    }

    fn parse_create_macro(&mut self) -> Result<Statement, ParseError> {
        self.record(Feature::MacroStatement);
        let name = self.parse_object_name()?;
        let params = self.parse_macro_params()?;
        self.expect_kw("AS")?;
        self.expect(&Token::LParen)?;
        let mut body = Vec::new();
        loop {
            while self.consume(&Token::Semicolon) {}
            if self.peek_is(&Token::RParen) {
                break;
            }
            body.push(self.parse_statement()?);
            if !self.peek_is(&Token::Semicolon) && !self.peek_is(&Token::RParen) {
                return Err(self.err("expected ';' between macro body statements"));
            }
        }
        self.expect(&Token::RParen)?;
        if body.is_empty() {
            return Err(self.err("macro body must contain at least one statement"));
        }
        Ok(Statement::CreateMacro { name, params, body })
    }

    fn parse_create_procedure(&mut self) -> Result<Statement, ParseError> {
        self.record(Feature::StoredProcedureCall);
        let name = self.parse_object_name()?;
        let params = self.parse_macro_params()?;
        self.expect_kw("BEGIN")?;
        let mut body = Vec::new();
        loop {
            while self.consume(&Token::Semicolon) {}
            if self.peek_kw("END") {
                break;
            }
            body.push(self.parse_statement()?);
            if !self.peek_is(&Token::Semicolon) && !self.peek_kw("END") {
                return Err(self.err("expected ';' between procedure body statements"));
            }
        }
        self.expect_kw("END")?;
        Ok(Statement::CreateProcedure { name, params, body })
    }

    fn parse_execute(&mut self) -> Result<Statement, ParseError> {
        self.advance(); // EXEC | EXECUTE
        self.record(Feature::MacroStatement);
        let name = self.parse_object_name()?;
        let mut args = Vec::new();
        if self.consume(&Token::LParen) {
            if !self.peek_is(&Token::RParen) {
                loop {
                    // `name = value` or positional value.
                    if matches!(self.peek(), Token::Word(_)) && self.peek_at(1) == &Token::Eq {
                        let pname = self.parse_ident()?;
                        self.expect(&Token::Eq)?;
                        let v = self.parse_expr()?;
                        args.push((Some(pname), v));
                    } else {
                        args.push((None, self.parse_expr()?));
                    }
                    if !self.consume(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Statement::ExecuteMacro { name, args })
    }

    fn parse_call(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CALL")?;
        self.record(Feature::StoredProcedureCall);
        let name = self.parse_object_name()?;
        let mut args = Vec::new();
        if self.consume(&Token::LParen) {
            if !self.peek_is(&Token::RParen) {
                args = self.parse_expr_list()?;
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Statement::Call { name, args })
    }

    fn parse_help(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("HELP")?;
        self.record(Feature::HelpCommand);
        if self.consume_kw("SESSION") {
            Ok(Statement::Help(HelpTarget::Session))
        } else if self.consume_kw("TABLE") {
            let name = self.parse_object_name()?;
            Ok(Statement::Help(HelpTarget::Table(name)))
        } else {
            Err(self.err("expected SESSION or TABLE after HELP"))
        }
    }
}

/// Build a `SELECT`-block carrying literal rows (used to represent
/// `VALUES`); the binder turns this into a `Values` operator.
pub(crate) fn values_block(rows: Vec<Vec<Expr>>) -> SelectBlock {
    SelectBlock {
        items: vec![SelectItem::Wildcard],
        value_rows: rows,
        ..SelectBlock::default()
    }
}
