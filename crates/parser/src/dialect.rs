//! SQL dialects understood by the parser.
//!
//! The Hyper-Q architecture makes the parser "a system-specific plugin
//! implemented according to the language specifications of the original
//! database" (§4.2). We parameterize one rule-based parser by dialect: the
//! **Teradata** frontend accepts the vendor extensions (the paper's query
//! surface plus the 27 tracked features), while the **Ansi** dialect — used
//! by the backend engine to parse serialized SQL — rejects them, which is
//! what makes round-trip tests meaningful: a serializer bug that leaks a
//! Teradata-ism fails to parse on the target.

/// A SQL dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Teradata frontend dialect (SQL-A in the paper).
    Teradata,
    /// ANSI-ish target dialect (SQL-B): what the simulated cloud warehouse
    /// accepts.
    Ansi,
}

impl Dialect {
    /// `SEL`/`DEL`/`INS`/`UPD` keyword shortcuts (T1).
    pub fn allows_keyword_shortcuts(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// `EQ`/`NE`/`LT`/`LE`/`GT`/`GE` keyword comparison operators (T2).
    pub fn allows_keyword_comparisons(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// Infix `MOD` (T3) and `**` (T4).
    pub fn allows_td_operators(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// `QUALIFY` clause (X1).
    pub fn allows_qualify(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// Clauses in non-standard order: `ORDER BY` before `WHERE` etc. (X9).
    pub fn allows_clause_reordering(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// Teradata window shorthand `RANK(expr DESC)` (X9).
    pub fn allows_td_window_syntax(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// `TOP n [WITH TIES]` after SELECT.
    pub fn allows_top(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// `LIMIT n` at the end of a query (target dialect).
    pub fn allows_limit(&self) -> bool {
        matches!(self, Dialect::Ansi)
    }

    /// Macros, `HELP`, volatile/global-temporary tables, `MERGE`,
    /// procedures: frontend-only statements.
    pub fn allows_td_statements(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// `WITH RECURSIVE` — the frontend accepts it (and Hyper-Q emulates
    /// it); the simulated target does **not** support recursion, which is
    /// exactly the gap the paper's §6 emulation closes.
    pub fn allows_recursive_cte(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }

    /// Vector (row-valued) quantified subquery comparison (X7): frontend
    /// feature the target lacks.
    pub fn allows_vector_subquery(&self) -> bool {
        matches!(self, Dialect::Teradata)
    }
}
