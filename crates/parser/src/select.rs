//! Query expression grammar: WITH / set operations / SELECT blocks / FROM.
//!
//! In the Teradata dialect, block-level clauses may appear in non-standard
//! order (the paper's Example 1 places `ORDER BY` before `WHERE`); the
//! parser accepts any order, records tracked feature X9, and normalizes the
//! clause into its canonical slot — the paper's "Syntactic Rewrites during
//! parsing".

use hyperq_xtra::feature::Feature;
use hyperq_xtra::rel::{JoinKind, SetOpKind};

use crate::ast::*;
use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::Token;

/// Which clause slot a keyword fills, in canonical order. Used to detect
/// out-of-order clauses.
#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum ClauseSlot {
    Where = 1,
    GroupBy = 2,
    Having = 3,
    Qualify = 4,
    OrderBy = 5,
    Limit = 6,
}

impl Parser {
    /// Parse a full query expression: `[WITH …] body [ORDER BY …] [LIMIT n]`.
    pub fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Nested subqueries (derived tables, IN/EXISTS, CTE bodies) re-enter
        // here; bounded together with expression nesting.
        self.nest()?;
        let result = self.parse_query_inner();
        self.unnest();
        result
    }

    fn parse_query_inner(&mut self) -> Result<Query, ParseError> {
        let mut recursive = false;
        let mut ctes = Vec::new();
        if self.consume_kw("WITH") {
            if self.consume_kw("RECURSIVE") {
                if !self.dialect.allows_recursive_cte() {
                    return Err(self.err("RECURSIVE common table expressions are not supported"));
                }
                recursive = true;
                self.record(Feature::RecursiveQuery);
            }
            loop {
                let name = self.parse_ident()?;
                let mut columns = Vec::new();
                if self.consume(&Token::LParen) {
                    columns = self.parse_ident_list()?;
                    self.expect(&Token::RParen)?;
                }
                self.expect_kw("AS")?;
                self.expect(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                ctes.push(Cte { name, columns, query });
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_query_body()?;
        // Query-level ORDER BY / LIMIT (unless already captured inside the
        // block via Teradata clause interleave).
        let mut order_by = Vec::new();
        if self.peek_kw("ORDER") {
            self.advance();
            self.expect_kw("BY")?;
            order_by = self.parse_order_by_list()?;
        }
        let mut query = Query { recursive, ctes, body, order_by };
        if self.dialect.allows_limit() && self.consume_kw("LIMIT") {
            let n = self.parse_u64()?;
            if let QueryBody::Select(ref mut block) = query.body {
                block.limit = Some(n);
            } else {
                // LIMIT over a set operation: wrap in a derived block.
                let inner = std::mem::replace(
                    &mut query.body,
                    QueryBody::Select(Box::default()),
                );
                let derived = Query {
                    recursive: false,
                    ctes: Vec::new(),
                    body: inner,
                    order_by: std::mem::take(&mut query.order_by),
                };
                query.body = QueryBody::Select(Box::new(SelectBlock {
                    items: vec![SelectItem::Wildcard],
                    from: vec![TableRef::Derived {
                        query: Box::new(derived),
                        alias: TableAlias { name: "LIMITED".into(), columns: Vec::new() },
                    }],
                    limit: Some(n),
                    ..SelectBlock::default()
                }));
            }
        }
        Ok(query)
    }

    fn parse_query_body(&mut self) -> Result<QueryBody, ParseError> {
        let mut left = self.parse_query_primary()?;
        loop {
            let kind = if self.peek_kw("UNION") {
                SetOpKind::Union
            } else if self.peek_kw("INTERSECT") {
                SetOpKind::Intersect
            } else if self.peek_kw("EXCEPT") || self.peek_kw("MINUS") {
                SetOpKind::Except
            } else {
                break;
            };
            self.advance();
            let all = self.consume_kw("ALL");
            if !all {
                self.consume_kw("DISTINCT");
            }
            let right = self.parse_query_primary()?;
            left = QueryBody::SetOp {
                kind,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_query_primary(&mut self) -> Result<QueryBody, ParseError> {
        if self.consume(&Token::LParen) {
            let body = self.parse_query_body()?;
            self.expect(&Token::RParen)?;
            Ok(body)
        } else {
            Ok(QueryBody::Select(Box::new(self.parse_select_block()?)))
        }
    }

    /// Parse one `SELECT` block with dialect-dependent clause ordering.
    pub(crate) fn parse_select_block(&mut self) -> Result<SelectBlock, ParseError> {
        if self.peek_kw("SEL") && self.dialect.allows_keyword_shortcuts() {
            self.advance();
            self.record(Feature::KeywordShortcut);
        } else {
            self.expect_kw("SELECT")?;
        }
        let mut block = SelectBlock::default();
        if self.consume_kw("DISTINCT") {
            block.distinct = true;
        } else {
            self.consume_kw("ALL");
        }
        if self.dialect.allows_top() && self.consume_kw("TOP") {
            let n = self.parse_u64()?;
            let with_ties = if self.consume_kw("WITH") {
                self.expect_kw("TIES")?;
                true
            } else {
                false
            };
            block.top = Some(TopClause { n, with_ties });
        }
        // Select list.
        loop {
            block.items.push(self.parse_select_item()?);
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        if self.consume_kw("FROM") {
            loop {
                block.from.push(self.parse_table_ref()?);
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }
        // Remaining clauses; Teradata tolerates arbitrary order.
        let mut max_slot: Option<ClauseSlot> = None;
        loop {
            let slot = if self.peek_kw("WHERE") {
                ClauseSlot::Where
            } else if self.peek_kw("GROUP") {
                ClauseSlot::GroupBy
            } else if self.peek_kw("HAVING") {
                ClauseSlot::Having
            } else if self.peek_kw("QUALIFY") {
                ClauseSlot::Qualify
            } else if self.peek_kw("ORDER") && self.dialect.allows_clause_reordering() {
                // In ANSI mode ORDER BY belongs to the query level; here the
                // Teradata block may own it (and possibly out of order).
                ClauseSlot::OrderBy
            } else if self.peek_kw("LIMIT") && self.dialect.allows_limit() {
                ClauseSlot::Limit
            } else {
                break;
            };
            if let Some(prev) = max_slot {
                if (slot as u8) < (prev as u8) {
                    block.nonstandard_clause_order = true;
                    self.record(Feature::NonAnsiWindowSyntax);
                }
            }
            if max_slot.is_none_or(|p| (p as u8) < (slot as u8)) {
                max_slot = Some(slot);
            }
            match slot {
                ClauseSlot::Where => {
                    self.advance();
                    if block.where_clause.is_some() {
                        return Err(self.err("duplicate WHERE clause"));
                    }
                    block.where_clause = Some(self.parse_expr()?);
                }
                ClauseSlot::GroupBy => {
                    self.advance();
                    self.expect_kw("BY")?;
                    if !block.group_by.is_empty() {
                        return Err(self.err("duplicate GROUP BY clause"));
                    }
                    block.group_by = self.parse_group_by_list()?;
                }
                ClauseSlot::Having => {
                    self.advance();
                    if block.having.is_some() {
                        return Err(self.err("duplicate HAVING clause"));
                    }
                    block.having = Some(self.parse_expr()?);
                }
                ClauseSlot::Qualify => {
                    self.advance();
                    if !self.dialect.allows_qualify() {
                        return Err(self.err("QUALIFY is not supported in this dialect"));
                    }
                    if block.qualify.is_some() {
                        return Err(self.err("duplicate QUALIFY clause"));
                    }
                    self.record(Feature::Qualify);
                    block.qualify = Some(self.parse_expr()?);
                }
                ClauseSlot::OrderBy => {
                    self.advance();
                    self.expect_kw("BY")?;
                    if !block.order_by.is_empty() {
                        return Err(self.err("duplicate ORDER BY clause"));
                    }
                    block.order_by = self.parse_order_by_list()?;
                    // If ORDER BY was the last clause in canonical position
                    // it could equally belong to the query level; keeping it
                    // on the block is equivalent for a non-set-op query.
                }
                ClauseSlot::Limit => {
                    self.advance();
                    block.limit = Some(self.parse_u64()?);
                }
            }
        }
        Ok(block)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.consume(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Qualified wildcard `t.*`.
        if matches!(self.peek(), Token::Word(_) | Token::QuotedIdent(_)) {
            let mut n = 0usize;
            while matches!(self.peek_at(n), Token::Word(_) | Token::QuotedIdent(_))
                && self.peek_at(n + 1) == &Token::Dot
            {
                if self.peek_at(n + 2) == &Token::Star {
                    let name = self.parse_object_name_prefix((n / 2) + 1)?;
                    self.expect(&Token::Dot)?;
                    self.expect(&Token::Star)?;
                    return Ok(SelectItem::QualifiedWildcard(name));
                }
                n += 2;
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_kw("AS") {
            Some(self.parse_ident()?)
        } else {
            match self.peek() {
                Token::Word(w) if !is_clause_keyword(w) => Some(self.parse_ident()?),
                Token::QuotedIdent(_) => Some(self.parse_ident()?),
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_object_name_prefix(&mut self, parts: usize) -> Result<ObjectName, ParseError> {
        let mut out = vec![self.parse_ident()?];
        for _ in 1..parts {
            self.expect(&Token::Dot)?;
            out.push(self.parse_ident()?);
        }
        Ok(ObjectName(out))
    }

    pub(crate) fn parse_order_by_list(&mut self) -> Result<Vec<OrderByItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            if matches!(&expr, Expr::Literal(Literal::Number(n)) if !n.contains('.')) {
                self.record(Feature::OrdinalGroupBy);
            }
            let desc = if self.consume_kw("DESC") {
                true
            } else {
                self.consume_kw("ASC");
                false
            };
            let nulls_first = if self.consume_kw("NULLS") {
                if self.consume_kw("FIRST") {
                    Some(true)
                } else {
                    self.expect_kw("LAST")?;
                    Some(false)
                }
            } else {
                None
            };
            items.push(OrderByItem { expr, desc, nulls_first });
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_group_by_list(&mut self) -> Result<Vec<GroupByItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.consume_kw("ROLLUP") {
                self.record(Feature::GroupingExtensions);
                self.expect(&Token::LParen)?;
                let exprs = self.parse_expr_list()?;
                self.expect(&Token::RParen)?;
                items.push(GroupByItem::Rollup(exprs));
            } else if self.consume_kw("CUBE") {
                self.record(Feature::GroupingExtensions);
                self.expect(&Token::LParen)?;
                let exprs = self.parse_expr_list()?;
                self.expect(&Token::RParen)?;
                items.push(GroupByItem::Cube(exprs));
            } else if self.peek_kw("GROUPING") && self.peek_kw_at(1, "SETS") {
                self.advance();
                self.advance();
                self.record(Feature::GroupingExtensions);
                self.expect(&Token::LParen)?;
                let mut sets = Vec::new();
                loop {
                    self.expect(&Token::LParen)?;
                    let set = if self.peek_is(&Token::RParen) {
                        Vec::new()
                    } else {
                        self.parse_expr_list()?
                    };
                    self.expect(&Token::RParen)?;
                    sets.push(set);
                    if !self.consume(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                items.push(GroupByItem::GroupingSets(sets));
            } else {
                let e = self.parse_expr()?;
                if matches!(&e, Expr::Literal(Literal::Number(n)) if !n.contains('.')) {
                    self.record(Feature::OrdinalGroupBy);
                }
                items.push(GroupByItem::Expr(e));
            }
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // --- FROM clause ---------------------------------------------------------

    pub(crate) fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                self.consume_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek_kw("LEFT") {
                self.advance();
                self.consume_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek_kw("RIGHT") {
                self.advance();
                self.consume_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.peek_kw("FULL") {
                self.advance();
                self.consume_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Full
            } else if self.peek_kw("CROSS") {
                self.advance();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let constraint = if kind != JoinKind::Cross && self.consume_kw("ON") {
                JoinConstraint::On(self.parse_expr()?)
            } else if kind == JoinKind::Cross {
                JoinConstraint::None
            } else {
                return Err(self.err("expected ON after JOIN"));
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(left)
    }

    pub(crate) fn parse_table_factor(&mut self) -> Result<TableRef, ParseError> {
        if self.consume(&Token::LParen) {
            // Either a derived table or a parenthesized join.
            if self.peek_kw("SELECT") || self.peek_kw("SEL") || self.peek_kw("WITH") {
                let query = self.parse_query()?;
                self.expect(&Token::RParen)?;
                let alias = self.parse_table_alias()?.ok_or_else(|| {
                    self.err("derived table requires an alias")
                })?;
                return Ok(TableRef::Derived { query: Box::new(query), alias });
            }
            let inner = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_table_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    fn parse_table_alias(&mut self) -> Result<Option<TableAlias>, ParseError> {
        let explicit = self.consume_kw("AS");
        let name = match self.peek() {
            Token::Word(w) if explicit || !is_table_clause_keyword(w) => self.parse_ident()?,
            Token::QuotedIdent(_) => self.parse_ident()?,
            _ if explicit => return Err(self.err("expected alias after AS")),
            _ => return Ok(None),
        };
        let mut columns = Vec::new();
        // Column renaming `AS t (a, b)` — only when followed by a pure
        // identifier list (disambiguates from a function-style name).
        if self.peek_is(&Token::LParen) {
            let save = self.pos;
            self.advance();
            match self.parse_ident_list() {
                Ok(cols) if self.consume(&Token::RParen) => columns = cols,
                _ => self.pos = save,
            }
        }
        Ok(Some(TableAlias { name, columns }))
    }
}

/// Keywords that terminate a select-list alias position.
fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "QUALIFY"
            | "ORDER"
            | "LIMIT"
            | "UNION"
            | "INTERSECT"
            | "EXCEPT"
            | "MINUS"
            | "WITH"
            | "SAMPLE"
    )
}

/// Keywords that terminate a table alias position.
fn is_table_clause_keyword(w: &str) -> bool {
    is_clause_keyword(w)
        || matches!(
            w.to_ascii_uppercase().as_str(),
            "JOIN" | "INNER" | "LEFT" | "RIGHT" | "FULL" | "CROSS" | "ON" | "USING" | "SET"
                | "WHEN" | "AS"
        )
}
