//! Lexical tokens.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    /// Byte offset of the token start in the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
}

/// The token kinds produced by [`crate::lexer::tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted word: identifier or keyword, as written.
    Word(String),
    /// `"quoted identifier"` with quotes stripped.
    QuotedIdent(String),
    /// Numeric literal, digits preserved verbatim.
    Number(String),
    /// `'string literal'` with quotes stripped and `''` unescaped.
    StringLit(String),
    /// `:name` named parameter (macro/procedure argument reference).
    NamedParam(String),
    /// `?` positional parameter marker.
    Question,
    Comma,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `||` string concatenation.
    Concat,
    /// `**` Teradata exponentiation.
    Power,
    Eq,
    /// `<>`, `!=`, `^=` or `~=`.
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl Token {
    /// The word in upper case if this is an unquoted word, else `None`.
    /// Keyword recognition is case-insensitive but quoted identifiers are
    /// never keywords.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIdent(w) => write!(f, "\"{w}\""),
            Token::Number(n) => write!(f, "{n}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::NamedParam(n) => write!(f, ":{n}"),
            Token::Question => write!(f, "?"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Concat => write!(f, "||"),
            Token::Power => write!(f, "**"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}
