//! Expression grammar (precedence-climbing).
//!
//! Precedence, low to high: `OR` < `AND` < `NOT` < comparison / `IS` /
//! `IN` / `BETWEEN` / `LIKE` / quantified subqueries < `+` `-` `||` <
//! `*` `/` `%` `MOD` < `**` (right-assoc) < unary minus < atoms.
//!
//! Teradata-only productions guarded by the dialect: keyword comparison
//! operators (`EQ`, `NE`, …), infix `MOD`, `**`, the `RANK(expr DESC)`
//! window shorthand, and row-valued (vector) left sides of quantified
//! comparisons.

use hyperq_xtra::expr::{CmpOp, DateField, Quantifier};
use hyperq_xtra::feature::Feature;

use crate::ast::*;
use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::Token;

impl Parser {
    pub(crate) fn parse_expr_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut out = vec![self.parse_expr()?];
        while self.consume(&Token::Comma) {
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        // Every nested expression re-enters through here, so this one guard
        // bounds arbitrarily deep parentheses, CASE arms, function calls, …
        self.nest()?;
        let result = self.parse_or();
        self.unnest();
        result
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.consume_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::BinaryOp { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.consume_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::BinaryOp { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        // `NOT EXISTS` is handled in the primary; `NOT <comparison>` here.
        if self.peek_kw("NOT") && !self.peek_kw_at(1, "EXISTS") {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    /// Try to read a comparison operator at the cursor.
    fn peek_cmp_op(&self) -> Option<(CmpOp, usize)> {
        match self.peek() {
            Token::Eq => Some((CmpOp::Eq, 1)),
            Token::Neq => Some((CmpOp::Ne, 1)),
            Token::Lt => Some((CmpOp::Lt, 1)),
            Token::Le => Some((CmpOp::Le, 1)),
            Token::Gt => Some((CmpOp::Gt, 1)),
            Token::Ge => Some((CmpOp::Ge, 1)),
            Token::Word(w) if self.dialect.allows_keyword_comparisons() => {
                match w.to_ascii_uppercase().as_str() {
                    "EQ" => Some((CmpOp::Eq, 1)),
                    "NE" => Some((CmpOp::Ne, 1)),
                    "LT" => Some((CmpOp::Lt, 1)),
                    "LE" => Some((CmpOp::Le, 1)),
                    "GT" => Some((CmpOp::Gt, 1)),
                    "GE" => Some((CmpOp::Ge, 1)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        // Comparison operators (symbolic or keyword).
        if let Some((op, _)) = self.peek_cmp_op() {
            let keyword_form = matches!(self.peek(), Token::Word(_));
            self.advance();
            if keyword_form {
                self.record(Feature::KeywordComparison);
            }
            // Quantified subquery: `op ANY|ALL|SOME (query)`.
            if self.peek_kw("ANY") || self.peek_kw("ALL") || self.peek_kw("SOME") {
                let quantifier = if self.consume_kw("ALL") {
                    Quantifier::All
                } else {
                    self.advance(); // ANY or SOME
                    Quantifier::Any
                };
                self.expect(&Token::LParen)?;
                let subquery = self.parse_query()?;
                self.expect(&Token::RParen)?;
                if matches!(left, Expr::Row(_)) {
                    if !self.dialect.allows_vector_subquery() {
                        return Err(
                            self.err("vector comparison in subquery is not supported")
                        );
                    }
                    self.record(Feature::VectorSubquery);
                }
                return Ok(Expr::QuantifiedCmp {
                    left: Box::new(left),
                    op,
                    quantifier,
                    subquery: Box::new(subquery),
                });
            }
            let right = self.parse_additive()?;
            return Ok(Expr::BinaryOp {
                op: BinOp::Cmp(op),
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // Postfix predicates.
        if self.peek_kw("IS") {
            self.advance();
            let negated = self.consume_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.peek_kw("NOT")
            && (self.peek_kw_at(1, "IN") || self.peek_kw_at(1, "BETWEEN") || self.peek_kw_at(1, "LIKE"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.consume_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.peek_kw("SELECT") || self.peek_kw("SEL") || self.peek_kw("WITH") {
                let subquery = self.parse_query()?;
                self.expect(&Token::RParen)?;
                if matches!(left, Expr::Row(_)) {
                    self.record(Feature::VectorSubquery);
                }
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let list = self.parse_expr_list()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.consume_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.consume(&Token::Plus) {
                BinOp::Plus
            } else if self.consume(&Token::Minus) {
                BinOp::Minus
            } else if self.consume(&Token::Concat) {
                BinOp::Concat
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::BinaryOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_power()?;
        loop {
            let op = if self.consume(&Token::Star) {
                BinOp::Mul
            } else if self.consume(&Token::Slash) {
                BinOp::Div
            } else if self.consume(&Token::Percent) {
                BinOp::Mod
            } else if self.peek_kw("MOD") && self.dialect.allows_td_operators() {
                self.advance();
                self.record(Feature::ModOperator);
                BinOp::Mod
            } else {
                break;
            };
            let right = self.parse_power()?;
            left = Expr::BinaryOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_unary()?;
        if self.peek_is(&Token::Power) {
            if !self.dialect.allows_td_operators() {
                return Err(self.err("operator ** is not supported in this dialect"));
            }
            self.advance();
            self.record(Feature::ExponentOperator);
            // Right-associative.
            let exp = self.parse_power()?;
            return Ok(Expr::BinaryOp {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.consume(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::UnaryMinus(Box::new(inner)));
        }
        if self.consume(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.advance();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::NamedParam(p) => {
                self.advance();
                Ok(Expr::Parameter(Some(p)))
            }
            Token::Question => {
                self.advance();
                Ok(Expr::Parameter(None))
            }
            Token::LParen => {
                self.advance();
                if self.peek_kw("SELECT") || self.peek_kw("SEL") || self.peek_kw("WITH") {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let exprs = self.parse_expr_list()?;
                self.expect(&Token::RParen)?;
                if exprs.len() == 1 {
                    Ok(exprs.into_iter().next().expect("len checked"))
                } else {
                    Ok(Expr::Row(exprs))
                }
            }
            Token::Word(_) | Token::QuotedIdent(_) => self.parse_word_primary(),
            other => Err(self.err(format!("unexpected token {other} in expression"))),
        }
    }

    fn parse_word_primary(&mut self) -> Result<Expr, ParseError> {
        let kw = self.peek().keyword().unwrap_or_default();
        match kw.as_str() {
            "NULL" => {
                self.advance();
                return Ok(Expr::Literal(Literal::Null));
            }
            "TRUE" => {
                self.advance();
                return Ok(Expr::Literal(Literal::Boolean(true)));
            }
            "FALSE" => {
                self.advance();
                return Ok(Expr::Literal(Literal::Boolean(false)));
            }
            "DATE" if matches!(self.peek_at(1), Token::StringLit(_)) => {
                self.advance();
                if let Token::StringLit(s) = self.advance() {
                    return Ok(Expr::Literal(Literal::Date(s)));
                }
                unreachable!("peeked string literal");
            }
            "TIMESTAMP" if matches!(self.peek_at(1), Token::StringLit(_)) => {
                self.advance();
                if let Token::StringLit(s) = self.advance() {
                    return Ok(Expr::Literal(Literal::Timestamp(s)));
                }
                unreachable!("peeked string literal");
            }
            "INTERVAL" if matches!(self.peek_at(1), Token::StringLit(_)) => {
                self.advance();
                let Token::StringLit(value) = self.advance() else {
                    unreachable!("peeked string literal");
                };
                let unit = if self.consume_kw("YEAR") {
                    IntervalUnit::Year
                } else if self.consume_kw("MONTH") {
                    IntervalUnit::Month
                } else {
                    self.expect_kw("DAY")?;
                    IntervalUnit::Day
                };
                return Ok(Expr::Literal(Literal::Interval { value, unit }));
            }
            "CASE" => return self.parse_case(),
            "CAST" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_kw("AS")?;
                let ty = self.parse_type()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Cast { expr: Box::new(expr), ty });
            }
            "EXTRACT" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let field = self.parse_date_field()?;
                self.expect_kw("FROM")?;
                let expr = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Extract { field, expr: Box::new(expr) });
            }
            "POSITION" if self.peek_at(1) == &Token::LParen => {
                self.advance();
                self.advance();
                let substring = self.parse_additive()?;
                self.expect_kw("IN")?;
                let string = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Position {
                    substring: Box::new(substring),
                    string: Box::new(string),
                });
            }
            "EXISTS" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Exists { subquery: Box::new(q), negated: false });
            }
            "NOT" if self.peek_kw_at(1, "EXISTS") => {
                self.advance();
                self.advance();
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Exists { subquery: Box::new(q), negated: true });
            }
            "TRIM" if self.peek_at(1) == &Token::LParen => {
                return self.parse_trim();
            }
            "SUBSTRING" | "SUBSTR" if self.peek_at(1) == &Token::LParen => {
                return self.parse_substring(&kw);
            }
            _ => {}
        }
        // Plain identifier, qualified identifier, or function call.
        let name = self.parse_object_name()?;
        if self.peek_is(&Token::LParen) {
            return self.parse_function(name);
        }
        Ok(Expr::Ident(name))
    }

    fn parse_date_field(&mut self) -> Result<DateField, ParseError> {
        let w = self.parse_ident()?.to_ascii_uppercase();
        Ok(match w.as_str() {
            "YEAR" => DateField::Year,
            "MONTH" => DateField::Month,
            "DAY" => DateField::Day,
            "HOUR" => DateField::Hour,
            "MINUTE" => DateField::Minute,
            "SECOND" => DateField::Second,
            other => return Err(self.err(format!("unknown EXTRACT field {other}"))),
        })
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let operand = if self.peek_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.consume_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }

    fn parse_trim(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("TRIM")?;
        self.expect(&Token::LParen)?;
        // TRIM([LEADING|TRAILING|BOTH] [FROM] expr) — trim character operand
        // not supported (not exercised by the workloads).
        let mode = if self.consume_kw("LEADING") {
            Some("LTRIM")
        } else if self.consume_kw("TRAILING") {
            Some("RTRIM")
        } else if self.consume_kw("BOTH") {
            Some("TRIM")
        } else {
            None
        };
        if mode.is_some() {
            self.consume_kw("FROM");
        }
        let expr = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Function {
            name: ObjectName::single(mode.unwrap_or("TRIM")),
            args: vec![expr],
            distinct: false,
            over: None,
            td_sort_arg: None,
        })
    }

    fn parse_substring(&mut self, spelling: &str) -> Result<Expr, ParseError> {
        if spelling == "SUBSTR" {
            self.record(Feature::SubstrFunction);
            if !self.dialect.allows_td_statements() {
                return Err(self.err("SUBSTR is not supported; use SUBSTRING"));
            }
        }
        self.advance(); // function word
        self.expect(&Token::LParen)?;
        let s = self.parse_expr()?;
        let mut args = vec![s];
        // ANSI FROM/FOR form or comma form.
        if self.consume_kw("FROM") {
            args.push(self.parse_expr()?);
            if self.consume_kw("FOR") {
                args.push(self.parse_expr()?);
            }
        } else {
            while self.consume(&Token::Comma) {
                args.push(self.parse_expr()?);
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Function {
            name: ObjectName::single("SUBSTRING"),
            args,
            distinct: false,
            over: None,
            td_sort_arg: None,
        })
    }

    /// Parse a function call after its name; normalizes Teradata spellings
    /// and records their tracked features.
    fn parse_function(&mut self, name: ObjectName) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen)?;
        let upper = name.base();
        let is_td = self.dialect.allows_td_statements();

        // Teradata-only function spellings: record and normalize (the
        // paper's translation-class rewrites, applied during parsing).
        let normalized: Option<&str> = match upper.as_str() {
            "CHARS" | "CHARACTERS" if is_td => {
                self.record(Feature::CharsFunction);
                Some("CHAR_LENGTH")
            }
            "CHARACTER_LENGTH" => Some("CHAR_LENGTH"),
            _ => None,
        };

        // COUNT(*) and windowed COUNT(*).
        if self.consume(&Token::Star) {
            self.expect(&Token::RParen)?;
            let over = self.parse_over()?;
            return Ok(Expr::FunctionStar { name, over });
        }

        // ZEROIFNULL/NULLIFZERO: one-arg rewrites to COALESCE/NULLIF.
        if (upper == "ZEROIFNULL" || upper == "NULLIFZERO") && is_td {
            self.record(Feature::ZeroIfNull);
            let arg = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            let zero = Expr::Literal(Literal::Number("0".into()));
            return Ok(Expr::Function {
                name: ObjectName::single(if upper == "ZEROIFNULL" { "COALESCE" } else { "NULLIF" }),
                args: vec![arg, zero],
                distinct: false,
                over: None,
                td_sort_arg: None,
            });
        }

        // INDEX(str, sub) → POSITION(sub IN str).
        if upper == "INDEX" && is_td {
            self.record(Feature::IndexFunction);
            let s = self.parse_expr()?;
            self.expect(&Token::Comma)?;
            let sub = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Position { substring: Box::new(sub), string: Box::new(s) });
        }

        if upper == "ADD_MONTHS" && is_td {
            self.record(Feature::AddMonths);
        }

        // DATEADD(DAY|MONTH, n, d): the cloud-dialect date-math spelling,
        // accepted in every dialect so serialized SQL from a
        // `DateAddStyle::DateAddFn` target round-trips through the engine.
        // Normalized to the engine's shape — note the argument swap
        // (unit, amount, date → date, amount).
        if upper == "DATEADD" {
            let months = if self.consume_kw("MONTH") {
                true
            } else if self.consume_kw("DAY") {
                false
            } else {
                return Err(self.err("expected DAY or MONTH as the DATEADD unit"));
            };
            self.expect(&Token::Comma)?;
            let amount = self.parse_expr()?;
            self.expect(&Token::Comma)?;
            let date = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: ObjectName::single(if months { "ADD_MONTHS" } else { "DATE_ADD_DAYS" }),
                args: vec![date, amount],
                distinct: false,
                over: None,
                td_sort_arg: None,
            });
        }

        let distinct = self.consume_kw("DISTINCT");

        // Empty argument list: RANK() OVER (...), CURRENT_DATE() etc.
        if self.consume(&Token::RParen) {
            let over = self.parse_over()?;
            return Ok(Expr::Function {
                name: normalized.map(ObjectName::single).unwrap_or(name),
                args: Vec::new(),
                distinct,
                over,
                td_sort_arg: None,
            });
        }

        let first = self.parse_expr()?;

        // Teradata window shorthand: RANK(expr [ASC|DESC]) — the ordering
        // is a function argument rather than an OVER clause (X9).
        if (upper == "RANK" || upper == "DENSE_RANK")
            && self.dialect.allows_td_window_syntax()
            && (self.peek_kw("ASC") || self.peek_kw("DESC") || self.peek_is(&Token::RParen))
        {
            let desc = if self.consume_kw("DESC") {
                true
            } else {
                self.consume_kw("ASC");
                false
            };
            self.expect(&Token::RParen)?;
            // Only the shorthand form (no OVER) is the tracked feature.
            if !self.peek_kw("OVER") {
                self.record(Feature::NonAnsiWindowSyntax);
                return Ok(Expr::Function {
                    name,
                    args: Vec::new(),
                    distinct: false,
                    over: None,
                    td_sort_arg: Some((Box::new(first), desc)),
                });
            }
            let over = self.parse_over()?;
            return Ok(Expr::Function {
                name,
                args: vec![first],
                distinct: false,
                over,
                td_sort_arg: None,
            });
        }

        let mut args = vec![first];
        while self.consume(&Token::Comma) {
            args.push(self.parse_expr()?);
        }
        self.expect(&Token::RParen)?;
        let over = self.parse_over()?;
        Ok(Expr::Function {
            name: normalized.map(ObjectName::single).unwrap_or(name),
            args,
            distinct,
            over,
            td_sort_arg: None,
        })
    }

    fn parse_over(&mut self) -> Result<Option<WindowSpec>, ParseError> {
        if !self.consume_kw("OVER") {
            return Ok(None);
        }
        self.expect(&Token::LParen)?;
        let mut spec = WindowSpec::default();
        if self.consume_kw("PARTITION") {
            self.expect_kw("BY")?;
            spec.partition_by = self.parse_expr_list()?;
        }
        if self.consume_kw("ORDER") {
            self.expect_kw("BY")?;
            spec.order_by = self.parse_order_by_list()?;
        }
        // Frame clauses (ROWS BETWEEN ...) — accepted and ignored; the
        // engine evaluates the default frame.
        if self.peek_kw("ROWS") || self.peek_kw("RANGE") {
            let mut depth = 0usize;
            while !(self.peek_is(&Token::RParen) && depth == 0) {
                match self.advance() {
                    Token::LParen => depth += 1,
                    Token::RParen => depth -= 1,
                    Token::Eof => return Err(self.err("unterminated window frame")),
                    _ => {}
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Some(spec))
    }
}
