//! Parser error type.

use std::fmt;

/// A syntax error with the line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl ParseError {
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
