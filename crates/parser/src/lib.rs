//! # hyperq-parser — dialect-parameterized SQL parser
//!
//! Implements the paper's Algebrizer front half (§4.2): "a rule-based
//! parser that implements the full query surface of the original database",
//! producing an AST of mixed generic and vendor-specific nodes.
//!
//! Two dialects are supported:
//!
//! * [`dialect::Dialect::Teradata`] — the frontend language (SQL-A):
//!   keyword shortcuts, `QUALIFY`, `TOP … WITH TIES`, keyword comparison
//!   operators, `MOD`/`**`, clause reordering, vector subqueries,
//!   macros/procedures/`HELP`, `MERGE`, volatile and global temporary
//!   tables, `WITH RECURSIVE`.
//! * [`dialect::Dialect::Ansi`] — the target language (SQL-B) accepted by
//!   the simulated cloud warehouse; Teradata-isms are syntax errors here,
//!   so a serializer that leaks one fails loudly in round-trip tests.
//!
//! Parsing already performs the paper's *translation-class* rewrites
//! (normalizing `SEL`, `CHARS`, `ZEROIFNULL`, `INDEX`, `SUBSTR`, …) and
//! records every tracked feature it observes into a
//! [`hyperq_xtra::feature::FeatureSet`] for the workload-study
//! instrumentation (Figure 8).

#![forbid(unsafe_code)]

pub mod ast;
pub mod dialect;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod token;
mod expr_parse;
mod select;

pub use dialect::Dialect;
pub use error::ParseError;
pub use parser::{parse_one, parse_statements, ParsedStatement, StmtSpan};

#[cfg(test)]
mod tests;
