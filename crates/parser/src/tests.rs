//! Parser unit tests, including the paper's worked examples.

use hyperq_xtra::expr::{CmpOp, Quantifier};
use hyperq_xtra::feature::Feature;

use crate::ast::*;
use crate::dialect::Dialect;
use crate::parser::{parse_one, parse_statements};

fn td(sql: &str) -> Statement {
    parse_one(sql, Dialect::Teradata).unwrap().stmt
}

fn td_features(sql: &str) -> Vec<Feature> {
    parse_one(sql, Dialect::Teradata).unwrap().features.iter().collect()
}

fn ansi(sql: &str) -> Statement {
    parse_one(sql, Dialect::Ansi).unwrap().stmt
}

fn select_block(stmt: Statement) -> SelectBlock {
    match stmt {
        Statement::Query(q) => match q.body {
            QueryBody::Select(b) => *b,
            other => panic!("expected select, got {other:?}"),
        },
        other => panic!("expected query, got {other:?}"),
    }
}

#[test]
fn pathological_nesting_is_a_parse_error_not_a_stack_overflow() {
    // Ten thousand opening parens used to overflow the recursive-descent
    // stack and kill the whole process; now it fails the one statement.
    let deep_parens = format!("SEL {}1{}", "(".repeat(10_000), ")".repeat(10_000));
    let err = parse_statements(&deep_parens, Dialect::Teradata).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");

    let deep_subqueries =
        format!("{}SELECT 1 FROM T{}", "SELECT * FROM (".repeat(10_000), ")".repeat(10_000));
    let err = parse_statements(&deep_subqueries, Dialect::Ansi).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");

    // Deep-but-reasonable nesting still parses.
    let fine = format!("SEL {}1{}", "(".repeat(40), ")".repeat(40));
    assert!(parse_statements(&fine, Dialect::Teradata).is_ok());
}

#[test]
fn paper_example_1_parses() {
    // Example 1 from the paper: SEL, named expressions, QUALIFY, ORDER BY
    // before WHERE.
    let stmt = td(
        "SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET \
         FROM PRODUCT \
         QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE) \
         ORDER BY STORE, PRODUCT_NAME \
         WHERE CHARS(PRODUCT_NAME) > 4",
    );
    let b = select_block(stmt);
    assert_eq!(b.items.len(), 3);
    assert!(b.qualify.is_some());
    assert!(b.where_clause.is_some());
    assert_eq!(b.order_by.len(), 2);
    assert!(b.nonstandard_clause_order, "WHERE after ORDER BY is non-standard");
}

#[test]
fn paper_example_1_features() {
    let f = td_features(
        "SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET \
         FROM PRODUCT \
         QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE) \
         ORDER BY STORE, PRODUCT_NAME \
         WHERE CHARS(PRODUCT_NAME) > 4",
    );
    assert!(f.contains(&Feature::KeywordShortcut));
    assert!(f.contains(&Feature::Qualify));
    assert!(f.contains(&Feature::CharsFunction));
    assert!(f.contains(&Feature::NonAnsiWindowSyntax));
}

#[test]
fn paper_example_2_parses() {
    // Example 2: date-int comparison, vector subquery, QUALIFY RANK(x DESC).
    let stmt = td(
        "SEL * FROM SALES WHERE SALES_DATE > 1140101 \
         AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
         QUALIFY RANK(AMOUNT DESC) <= 10",
    );
    let b = select_block(stmt);
    // WHERE: AND of comparison and quantified vector subquery.
    let w = b.where_clause.as_ref().unwrap();
    match w {
        Expr::BinaryOp { op: BinOp::And, right, .. } => match right.as_ref() {
            Expr::QuantifiedCmp { left, op, quantifier, .. } => {
                assert!(matches!(left.as_ref(), Expr::Row(v) if v.len() == 2));
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*quantifier, Quantifier::Any);
            }
            other => panic!("expected quantified cmp, got {other:?}"),
        },
        other => panic!("expected AND, got {other:?}"),
    }
    // QUALIFY: RANK(AMOUNT DESC) <= 10 using the fn-arg shorthand.
    match b.qualify.as_ref().unwrap() {
        Expr::BinaryOp { op: BinOp::Cmp(CmpOp::Le), left, .. } => match left.as_ref() {
            Expr::Function { td_sort_arg: Some((_, desc)), .. } => assert!(*desc),
            other => panic!("expected RANK shorthand, got {other:?}"),
        },
        other => panic!("expected <=, got {other:?}"),
    }
}

#[test]
fn paper_example_2_features() {
    let f = td_features(
        "SEL * FROM SALES WHERE SALES_DATE > 1140101 \
         AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
         QUALIFY RANK(AMOUNT DESC) <= 10",
    );
    assert!(f.contains(&Feature::KeywordShortcut));
    assert!(f.contains(&Feature::VectorSubquery));
    assert!(f.contains(&Feature::Qualify));
    assert!(f.contains(&Feature::NonAnsiWindowSyntax));
}

#[test]
fn paper_example_4_recursive_query() {
    let stmt = td(
        "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
           SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
           UNION ALL \
           SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
           WHERE REPORTS.EMPNO = EMP.MGRNO ) \
         SELECT EMPNO FROM REPORTS ORDER BY EMPNO",
    );
    match &stmt {
        Statement::Query(q) => {
            assert!(q.recursive);
            assert_eq!(q.ctes.len(), 1);
            assert_eq!(q.ctes[0].name, "REPORTS");
            assert_eq!(q.ctes[0].columns, vec!["EMPNO".to_string(), "MGRNO".to_string()]);
            assert!(matches!(q.ctes[0].query.body, QueryBody::SetOp { all: true, .. }));
        }
        other => panic!("expected query, got {other:?}"),
    }
    assert!(td_features(
        "WITH RECURSIVE R (A) AS (SELECT 1) SELECT A FROM R"
    )
    .contains(&Feature::RecursiveQuery));
}

#[test]
fn ansi_rejects_teradata_constructs() {
    assert!(parse_one("SEL * FROM T", Dialect::Ansi).is_err());
    assert!(parse_one("SELECT * FROM T QUALIFY RANK() OVER (ORDER BY A) <= 1", Dialect::Ansi).is_err());
    assert!(parse_one("SELECT A ** 2 FROM T", Dialect::Ansi).is_err());
    assert!(parse_one("SELECT * FROM T WHERE A EQ 1", Dialect::Ansi).is_err());
    assert!(parse_one("HELP SESSION", Dialect::Ansi).is_err());
    assert!(parse_one("SELECT TOP 5 * FROM T", Dialect::Ansi).is_err());
    assert!(parse_one("WITH RECURSIVE R AS (SELECT 1) SELECT * FROM R", Dialect::Ansi).is_err());
}

#[test]
fn ansi_accepts_standard_sql() {
    ansi("SELECT A, COUNT(*) FROM T WHERE A > 1 GROUP BY A HAVING COUNT(*) > 2 ORDER BY A LIMIT 10");
    ansi("SELECT RANK() OVER (PARTITION BY A ORDER BY B DESC) FROM T");
    ansi("SELECT * FROM A JOIN B ON A.X = B.X LEFT JOIN C ON B.Y = C.Y");
    ansi("SELECT CASE WHEN A = 1 THEN 'x' ELSE 'y' END FROM T");
    ansi("SELECT * FROM T WHERE EXISTS (SELECT 1 FROM S WHERE S.A = T.A)");
}

#[test]
fn keyword_comparisons_record_feature() {
    let f = td_features("SELECT * FROM T WHERE A EQ 1 AND B GT 2");
    assert!(f.contains(&Feature::KeywordComparison));
    let b = select_block(td("SELECT * FROM T WHERE A EQ 1"));
    match b.where_clause.as_ref().unwrap() {
        Expr::BinaryOp { op: BinOp::Cmp(CmpOp::Eq), .. } => {}
        other => panic!("expected =, got {other:?}"),
    }
}

#[test]
fn mod_and_power_operators() {
    let f = td_features("SELECT A MOD 7, B ** 2 FROM T");
    assert!(f.contains(&Feature::ModOperator));
    assert!(f.contains(&Feature::ExponentOperator));
}

#[test]
fn power_is_right_associative() {
    let b = select_block(td("SELECT 2 ** 3 ** 2 FROM T"));
    match &b.items[0] {
        SelectItem::Expr { expr: Expr::BinaryOp { op: BinOp::Pow, right, .. }, .. } => {
            assert!(matches!(right.as_ref(), Expr::BinaryOp { op: BinOp::Pow, .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn zeroifnull_normalizes_to_coalesce() {
    let b = select_block(td("SELECT ZEROIFNULL(X), NULLIFZERO(Y) FROM T"));
    match &b.items[0] {
        SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. } => {
            assert_eq!(name.base(), "COALESCE");
            assert_eq!(args.len(), 2);
        }
        other => panic!("{other:?}"),
    }
    match &b.items[1] {
        SelectItem::Expr { expr: Expr::Function { name, .. }, .. } => {
            assert_eq!(name.base(), "NULLIF");
        }
        other => panic!("{other:?}"),
    }
    assert!(td_features("SELECT ZEROIFNULL(X) FROM T").contains(&Feature::ZeroIfNull));
}

#[test]
fn index_normalizes_to_position() {
    let b = select_block(td("SELECT INDEX(NAME, 'abc') FROM T"));
    assert!(matches!(
        &b.items[0],
        SelectItem::Expr { expr: Expr::Position { .. }, .. }
    ));
    assert!(td_features("SELECT INDEX(NAME, 'a') FROM T").contains(&Feature::IndexFunction));
}

#[test]
fn substr_normalizes_to_substring() {
    let b = select_block(td("SELECT SUBSTR(NAME, 1, 3) FROM T"));
    match &b.items[0] {
        SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. } => {
            assert_eq!(name.base(), "SUBSTRING");
            assert_eq!(args.len(), 3);
        }
        other => panic!("{other:?}"),
    }
    // ANSI FROM/FOR form also accepted.
    let b2 = select_block(ansi("SELECT SUBSTRING(NAME FROM 2 FOR 3) FROM T"));
    match &b2.items[0] {
        SelectItem::Expr { expr: Expr::Function { args, .. }, .. } => assert_eq!(args.len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn ordinal_group_by_recorded() {
    let f = td_features("SELECT A, COUNT(*) FROM T GROUP BY 1 ORDER BY 2");
    assert!(f.contains(&Feature::OrdinalGroupBy));
}

#[test]
fn grouping_extensions() {
    let f = td_features("SELECT A, B, SUM(C) FROM T GROUP BY ROLLUP(A, B)");
    assert!(f.contains(&Feature::GroupingExtensions));
    let stmt = td("SELECT A, SUM(C) FROM T GROUP BY GROUPING SETS ((A), ())");
    let b = select_block(stmt);
    assert!(matches!(&b.group_by[0], GroupByItem::GroupingSets(s) if s.len() == 2));
}

#[test]
fn top_with_ties() {
    let b = select_block(td("SELECT TOP 10 WITH TIES * FROM T ORDER BY A"));
    assert_eq!(b.top, Some(TopClause { n: 10, with_ties: true }));
}

#[test]
fn merge_statement() {
    let stmt = td(
        "MERGE INTO TARGET T USING (SELECT * FROM SRC) S ON T.ID = S.ID \
         WHEN MATCHED THEN UPDATE SET V = S.V \
         WHEN NOT MATCHED THEN INSERT (ID, V) VALUES (S.ID, S.V)",
    );
    match stmt {
        Statement::Merge(m) => {
            assert_eq!(m.target.base(), "TARGET");
            assert!(m.when_matched_update.is_some());
            assert!(m.when_not_matched_insert.is_some());
        }
        other => panic!("{other:?}"),
    }
    assert!(td_features("MERGE INTO T USING S ON T.A = S.A WHEN MATCHED THEN UPDATE SET B = 1")
        .contains(&Feature::MergeStatement));
}

#[test]
fn create_macro_and_execute() {
    let stmt = td(
        "CREATE MACRO SALES_REPORT (STORE_ID INTEGER, LO DATE DEFAULT DATE '2014-01-01') AS ( \
           SELECT * FROM SALES WHERE STORE = :STORE_ID AND SALES_DATE >= :LO; \
           UPDATE STATS SET HITS = HITS + 1 WHERE ID = :STORE_ID; )",
    );
    match stmt {
        Statement::CreateMacro { name, params, body } => {
            assert_eq!(name.base(), "SALES_REPORT");
            assert_eq!(params.len(), 2);
            assert!(params[1].default.is_some());
            assert_eq!(body.len(), 2);
        }
        other => panic!("{other:?}"),
    }
    let exec = td("EXEC SALES_REPORT(42, LO = DATE '2015-06-01')");
    match exec {
        Statement::ExecuteMacro { args, .. } => {
            assert_eq!(args.len(), 2);
            assert!(args[0].0.is_none());
            assert_eq!(args[1].0.as_deref(), Some("LO"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn create_table_variants() {
    match td("CREATE SET TABLE T (A INTEGER NOT NULL, B VARCHAR(10) NOT CASESPECIFIC) PRIMARY INDEX (A)") {
        Statement::CreateTable { set_semantics, columns, .. } => {
            assert_eq!(set_semantics, Some(true));
            assert!(columns[0].not_null);
            assert!(columns[1].not_casespecific);
        }
        other => panic!("{other:?}"),
    }
    match td("CREATE GLOBAL TEMPORARY TABLE G (A INTEGER) ON COMMIT PRESERVE ROWS") {
        Statement::CreateTable { kind, .. } => assert_eq!(kind, CreateTableKind::GlobalTemporary),
        other => panic!("{other:?}"),
    }
    let f = td_features("CREATE SET TABLE T (A INTEGER)");
    assert!(f.contains(&Feature::SetTableSemantics));
    let f = td_features("CREATE GLOBAL TEMPORARY TABLE T (A INTEGER)");
    assert!(f.contains(&Feature::GlobalTempTable));
    let f = td_features("CREATE TABLE T (A DATE DEFAULT CURRENT_DATE)");
    assert!(f.contains(&Feature::ColumnProperties));
    let f = td_features("CREATE TABLE T (P PERIOD(DATE))");
    assert!(f.contains(&Feature::ColumnProperties));
}

#[test]
fn help_commands() {
    assert_eq!(td("HELP SESSION"), Statement::Help(HelpTarget::Session));
    match td("HELP TABLE DB1.SALES") {
        Statement::Help(HelpTarget::Table(n)) => assert_eq!(n.canonical(), "DB1.SALES"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn insert_forms() {
    // ANSI VALUES.
    match td("INSERT INTO T (A, B) VALUES (1, 'x'), (2, 'y')") {
        Statement::Insert { columns, source, .. } => {
            assert_eq!(columns.len(), 2);
            match source.body {
                QueryBody::Select(b) => assert_eq!(b.value_rows.len(), 2),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    // Teradata INS shortcut with bare value list.
    match td("INS T (1, 'x')") {
        Statement::Insert { columns, source, .. } => {
            assert!(columns.is_empty());
            match source.body {
                QueryBody::Select(b) => assert_eq!(b.value_rows.len(), 1),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    // INSERT ... SELECT.
    match td("INSERT INTO T SELECT * FROM S") {
        Statement::Insert { source, .. } => {
            assert!(matches!(source.body, QueryBody::Select(_)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn update_delete_shortcuts() {
    assert!(td_features("UPD T SET A = 1 WHERE B = 2").contains(&Feature::KeywordShortcut));
    assert!(td_features("DEL FROM T WHERE A = 1").contains(&Feature::KeywordShortcut));
    match td("DELETE T ALL") {
        Statement::Delete { where_clause, .. } => assert!(where_clause.is_none()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn derived_table_with_column_alias() {
    let stmt = ansi("SELECT X FROM (SELECT A FROM T) AS D (X)");
    let b = select_block(stmt);
    match &b.from[0] {
        TableRef::Derived { alias, .. } => {
            assert_eq!(alias.name, "D");
            assert_eq!(alias.columns, vec!["X".to_string()]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn implicit_cross_join_list_in_from() {
    let b = select_block(td("SELECT * FROM A, B, C WHERE A.X = B.X"));
    assert_eq!(b.from.len(), 3);
}

#[test]
fn between_binds_tighter_than_and() {
    let b = select_block(td("SELECT * FROM T WHERE A BETWEEN 1 AND 2 AND B = 3"));
    match b.where_clause.as_ref().unwrap() {
        Expr::BinaryOp { op: BinOp::And, left, .. } => {
            assert!(matches!(left.as_ref(), Expr::Between { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn interval_and_date_literals() {
    let b = select_block(ansi(
        "SELECT DATE '1995-01-01' + INTERVAL '3' MONTH FROM T",
    ));
    match &b.items[0] {
        SelectItem::Expr { expr: Expr::BinaryOp { op: BinOp::Plus, left, right }, .. } => {
            assert!(matches!(left.as_ref(), Expr::Literal(Literal::Date(_))));
            assert!(matches!(
                right.as_ref(),
                Expr::Literal(Literal::Interval { unit: IntervalUnit::Month, .. })
            ));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn multiple_statements_with_semicolons() {
    let stmts = parse_statements("SELECT 1; SELECT 2;; SELECT 3", Dialect::Ansi).unwrap();
    assert_eq!(stmts.len(), 3);
}

#[test]
fn features_are_per_statement() {
    let stmts =
        parse_statements("SEL * FROM T; SELECT * FROM T", Dialect::Teradata).unwrap();
    assert!(stmts[0].features.contains(Feature::KeywordShortcut));
    assert!(stmts[1].features.is_empty());
}

#[test]
fn call_statement() {
    match td("CALL NIGHTLY_LOAD(1, 'full')") {
        Statement::Call { name, args } => {
            assert_eq!(name.base(), "NIGHTLY_LOAD");
            assert_eq!(args.len(), 2);
        }
        other => panic!("{other:?}"),
    }
    assert!(td_features("CALL P()").contains(&Feature::StoredProcedureCall));
}

#[test]
fn qualified_wildcard() {
    let b = select_block(ansi("SELECT T.*, S.A FROM T, S"));
    assert!(matches!(&b.items[0], SelectItem::QualifiedWildcard(n) if n.base() == "T"));
}

#[test]
fn set_operations_parse() {
    match ansi("SELECT A FROM T UNION ALL SELECT A FROM S EXCEPT SELECT A FROM U") {
        Statement::Query(q) => match q.body {
            QueryBody::SetOp { kind, all, .. } => {
                // Left-associative: (T UNION ALL S) EXCEPT U.
                assert_eq!(kind, hyperq_xtra::rel::SetOpKind::Except);
                assert!(!all);
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn nulls_ordering_parsed() {
    let b = select_block(ansi("SELECT A FROM T ORDER BY A DESC NULLS LAST"));
    let _ = b;
    match ansi("SELECT A FROM T ORDER BY A DESC NULLS LAST") {
        Statement::Query(q) => {
            assert_eq!(q.order_by.len(), 1);
            assert!(q.order_by[0].desc);
            assert_eq!(q.order_by[0].nulls_first, Some(false));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn error_messages_carry_line_numbers() {
    let err = parse_one("SELECT *\nFROM\n+", Dialect::Ansi).unwrap_err();
    assert_eq!(err.line, 3);
}

#[test]
fn transaction_statements() {
    assert_eq!(td("BT"), Statement::BeginTransaction);
    assert_eq!(td("ET"), Statement::Commit);
    assert_eq!(ansi("BEGIN TRANSACTION"), Statement::BeginTransaction);
    assert_eq!(ansi("COMMIT"), Statement::Commit);
    assert_eq!(ansi("ROLLBACK"), Statement::Rollback);
}

#[test]
fn create_procedure_with_body() {
    match td("CREATE PROCEDURE P (N INTEGER) BEGIN UPDATE T SET A = :N; DELETE FROM U WHERE B = :N; END") {
        Statement::CreateProcedure { params, body, .. } => {
            assert_eq!(params.len(), 1);
            assert_eq!(body.len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn count_star_and_windowed_aggregates() {
    let b = select_block(ansi(
        "SELECT COUNT(*), SUM(X) OVER (PARTITION BY G ORDER BY O) FROM T",
    ));
    assert!(matches!(&b.items[0], SelectItem::Expr { expr: Expr::FunctionStar { over: None, .. }, .. }));
    match &b.items[1] {
        SelectItem::Expr { expr: Expr::Function { over: Some(spec), .. }, .. } => {
            assert_eq!(spec.partition_by.len(), 1);
            assert_eq!(spec.order_by.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}
