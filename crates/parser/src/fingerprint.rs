//! Query fingerprinting: the literal-lifting normalizer behind the
//! translation cache.
//!
//! BI-tool workloads are dominated by the *same* statement templates
//! re-issued with different literals (paper §7.1's workload study; the
//! dashboard refresh pattern). The normalizer walks the token stream,
//! lifts every `Number`/string literal into a synthetic parameter slot and
//! hashes the remaining shape — comments, whitespace and keyword case all
//! vanish in tokenization, so `SEL * FROM t WHERE a=1` and
//! `select *  from T where A = 2 -- hi` share one fingerprint.
//!
//! The fingerprint deliberately stays *below* the AST: it must be cheap
//! enough to compute on a cache hit, where the whole point is skipping the
//! parse.

use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::Token;

/// The lexical class of a lifted literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralKind {
    /// Numeric literal (`Token::Number`), digits verbatim.
    Number,
    /// Single-quoted string literal (`Token::StringLit`).
    String,
}

/// One literal lifted out of the statement, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralSlot {
    pub kind: LiteralKind,
    /// The literal exactly as it appears in SQL text: digits verbatim for
    /// numbers; including the surrounding quotes (with `''` escaping) for
    /// strings. This rendering is shared with the serializer, so a literal
    /// that passes through translation untouched reappears byte-identical
    /// in the target SQL.
    pub text: String,
    /// Byte span of the literal in the fingerprinted input.
    pub start: usize,
    pub end: usize,
}

impl LiteralSlot {
    /// Render a string value the way both the lexer consumed it and the
    /// serializer emits it.
    pub fn render_string(value: &str) -> String {
        format!("'{}'", value.replace('\'', "''"))
    }
}

/// The result of normalizing one SQL text.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    /// 64-bit FNV-1a hash of the literal-normalized token stream.
    pub hash: u64,
    /// Every lifted literal, in source order.
    pub literals: Vec<LiteralSlot>,
    /// Number of non-empty top-level statements (semicolon-separated).
    pub statements: usize,
    /// The text references a volatile builtin (`CURRENT_DATE`,
    /// `CURRENT_TIME`, `CURRENT_TIMESTAMP`, `RANDOM`): its translation may
    /// not be stable across executions, so the cache must not hold it.
    pub volatile: bool,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming FNV-1a.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash arbitrary bytes with the same FNV-1a the fingerprint uses; shared
/// with the cache-key context hashing in `hyperq-core`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

fn is_volatile_word(w: &str) -> bool {
    w.eq_ignore_ascii_case("CURRENT_DATE")
        || w.eq_ignore_ascii_case("CURRENT_TIME")
        || w.eq_ignore_ascii_case("CURRENT_TIMESTAMP")
        || w.eq_ignore_ascii_case("RANDOM")
}

/// Normalize `sql`: lift literals, hash the shape.
///
/// Trailing semicolons do not participate in the hash, so `X` and `X;`
/// fingerprint identically; interior semicolons do, so a multi-statement
/// script never collides with a single statement of the same tokens.
pub fn fingerprint(sql: &str) -> Result<Fingerprint, ParseError> {
    let tokens = tokenize(sql)?;
    let mut hash = Fnv::new();
    let mut literals = Vec::new();
    let mut statements = 0usize;
    let mut volatile = false;
    // Semicolons are buffered and only hashed once a later real token
    // proves they are interior separators, not a trailing terminator.
    let mut pending_semis = 0u32;
    let mut tokens_in_statement = 0usize;
    for sp in &tokens {
        if matches!(sp.token, Token::Eof) {
            break;
        }
        if matches!(sp.token, Token::Semicolon) {
            if tokens_in_statement > 0 {
                statements += 1;
                tokens_in_statement = 0;
            }
            pending_semis += 1;
            continue;
        }
        for _ in 0..pending_semis {
            hash.write_u8(0x0b);
        }
        pending_semis = 0;
        tokens_in_statement += 1;
        match &sp.token {
            Token::Word(w) => {
                if is_volatile_word(w) {
                    volatile = true;
                }
                hash.write_u8(0x01);
                for b in w.bytes() {
                    hash.write_u8(b.to_ascii_uppercase());
                }
            }
            Token::QuotedIdent(s) => {
                hash.write_u8(0x02);
                hash.write(s.as_bytes());
            }
            Token::Number(n) => {
                hash.write_u8(0x03);
                literals.push(LiteralSlot {
                    kind: LiteralKind::Number,
                    text: n.clone(),
                    start: sp.offset,
                    end: sp.offset + n.len(),
                });
            }
            Token::StringLit(s) => {
                hash.write_u8(0x04);
                let text = LiteralSlot::render_string(s);
                let end = sp.offset + text.len();
                literals.push(LiteralSlot {
                    kind: LiteralKind::String,
                    text,
                    start: sp.offset,
                    end,
                });
            }
            Token::NamedParam(n) => {
                hash.write_u8(0x05);
                hash.write(n.as_bytes());
            }
            other => {
                // Operators and punctuation: a stable tag per kind.
                hash.write_u8(0x10 + operator_tag(other));
            }
        }
    }
    if tokens_in_statement > 0 {
        statements += 1;
    }
    Ok(Fingerprint { hash: hash.finish(), literals, statements, volatile })
}

fn operator_tag(t: &Token) -> u8 {
    match t {
        Token::Question => 0,
        Token::Comma => 1,
        Token::LParen => 2,
        Token::RParen => 3,
        Token::Dot => 4,
        Token::Plus => 5,
        Token::Minus => 6,
        Token::Star => 7,
        Token::Slash => 8,
        Token::Percent => 9,
        Token::Concat => 10,
        Token::Power => 11,
        Token::Eq => 12,
        Token::Neq => 13,
        Token::Lt => 14,
        Token::Le => 15,
        Token::Gt => 16,
        Token::Ge => 17,
        // Word/QuotedIdent/Number/StringLit/NamedParam/Semicolon/Eof are
        // handled before this function is reached.
        _ => 18,
    }
}

/// Rebuild a SQL text with each lifted literal replaced by the
/// corresponding replacement text (used to construct probe statements when
/// verifying a template's literal holes). `slots` must be in source order
/// and `replacements` the same length.
pub fn splice_source(sql: &str, slots: &[LiteralSlot], replacements: &[String]) -> String {
    debug_assert_eq!(slots.len(), replacements.len());
    let mut out = String::with_capacity(sql.len());
    let mut cursor = 0usize;
    for (slot, rep) in slots.iter().zip(replacements) {
        out.push_str(&sql[cursor..slot.start]);
        out.push_str(rep);
        cursor = slot.end;
    }
    out.push_str(&sql[cursor..]);
    out
}

/// Redact every literal in `sql` with a class tag — numbers become `?`,
/// strings become `'?'` — via the fingerprint's literal spans. Statement
/// shape, identifiers and keywords survive untouched, so redacted text is
/// still useful for forensics. Text that does not tokenize is replaced
/// wholesale: if the literal spans are unknown, nothing of the text can be
/// trusted not to be a literal.
pub fn redact_literals(sql: &str) -> String {
    match fingerprint(sql) {
        Ok(fp) => {
            if fp.literals.is_empty() {
                return sql.to_string();
            }
            let reps: Vec<String> = fp
                .literals
                .iter()
                .map(|l| match l.kind {
                    LiteralKind::Number => "?".to_string(),
                    LiteralKind::String => "'?'".to_string(),
                })
                .collect();
            splice_source(sql, &fp.literals, &reps)
        }
        Err(_) => "<unlexable statement redacted>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_different_literals_share_fingerprint() {
        let a = fingerprint("SELECT * FROM SALES WHERE AMOUNT > 100 AND REGION = 'WEST'").unwrap();
        let b = fingerprint("select *  from sales\nWHERE amount > 2 AND region = 'N''E'").unwrap();
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.literals.len(), 2);
        assert_eq!(a.literals[0].text, "100");
        assert_eq!(a.literals[1].text, "'WEST'");
        assert_eq!(b.literals[1].text, "'N''E'");
        assert_eq!(a.statements, 1);
    }

    #[test]
    fn different_shape_differs() {
        let a = fingerprint("SELECT A FROM T").unwrap();
        let b = fingerprint("SELECT B FROM T").unwrap();
        let c = fingerprint("SELECT A FROM T WHERE A = 1").unwrap();
        assert_ne!(a.hash, b.hash);
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn comments_whitespace_and_case_are_normalized() {
        let a = fingerprint("SELECT A FROM T -- trailing\n").unwrap();
        let b = fingerprint("/* x */ select  a FROM t").unwrap();
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn trailing_semicolon_is_ignored_but_interior_counts() {
        let a = fingerprint("SELECT A FROM T").unwrap();
        let b = fingerprint("SELECT A FROM T;").unwrap();
        let c = fingerprint("SELECT A FROM T; SELECT A FROM T").unwrap();
        assert_eq!(a.hash, b.hash);
        assert_eq!(b.statements, 1);
        assert_ne!(a.hash, c.hash);
        assert_eq!(c.statements, 2);
    }

    #[test]
    fn quoted_identifiers_are_not_literals_and_case_sensitive() {
        let a = fingerprint("SELECT \"a\" FROM T").unwrap();
        let b = fingerprint("SELECT \"A\" FROM T").unwrap();
        assert_ne!(a.hash, b.hash);
        assert!(a.literals.is_empty());
    }

    #[test]
    fn volatile_builtins_are_flagged() {
        assert!(fingerprint("SELECT CURRENT_DATE FROM T").unwrap().volatile);
        assert!(fingerprint("SELECT current_timestamp").unwrap().volatile);
        assert!(!fingerprint("SELECT A FROM T").unwrap().volatile);
    }

    #[test]
    fn spans_support_splicing() {
        let sql = "SELECT 'it''s', 42 FROM T WHERE X = 7";
        let fp = fingerprint(sql).unwrap();
        let texts: Vec<String> = fp.literals.iter().map(|l| l.text.clone()).collect();
        assert_eq!(texts, vec!["'it''s'", "42", "7"]);
        // Identity splice reproduces the input.
        assert_eq!(splice_source(sql, &fp.literals, &texts), sql);
        // Replacement splice.
        let reps = vec!["'no'".to_string(), "1".to_string(), "2".to_string()];
        assert_eq!(
            splice_source(sql, &fp.literals, &reps),
            "SELECT 'no', 1 FROM T WHERE X = 2"
        );
    }

    #[test]
    fn redaction_replaces_literals_with_class_tags() {
        assert_eq!(
            redact_literals("SELECT NAME FROM T WHERE ID = 42 AND CITY = 'Ber''lin'"),
            "SELECT NAME FROM T WHERE ID = ? AND CITY = '?'"
        );
        // No literals: text passes through.
        assert_eq!(redact_literals("SELECT A FROM T"), "SELECT A FROM T");
        // Unlexable text is dropped entirely rather than stored raw.
        let redacted = redact_literals("SELECT 'unterminated");
        assert!(!redacted.contains("unterminated"), "{redacted}");
    }

    #[test]
    fn named_and_positional_params_fingerprint_by_name() {
        let a = fingerprint("SELECT * FROM T WHERE A = :p1").unwrap();
        let b = fingerprint("SELECT * FROM T WHERE A = :p2").unwrap();
        let q = fingerprint("SELECT * FROM T WHERE A = ?").unwrap();
        assert_ne!(a.hash, b.hash);
        assert_ne!(a.hash, q.hash);
        assert!(a.literals.is_empty());
    }
}
