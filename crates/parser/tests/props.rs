//! Property tests for the lexer/parser: total functions over arbitrary
//! input (errors, never panics), and identifier/literal round-trips.

use proptest::prelude::*;

use hyperq_parser::lexer::tokenize;
use hyperq_parser::{parse_statements, Dialect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(input in ".{0,200}") {
        let _ = parse_statements(&input, Dialect::Teradata);
        let _ = parse_statements(&input, Dialect::Ansi);
    }

    #[test]
    fn parser_never_panics_on_sql_shaped_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("SEL".to_string()),
                Just("FROM".to_string()), Just("WHERE".to_string()),
                Just("GROUP".to_string()), Just("BY".to_string()),
                Just("QUALIFY".to_string()), Just("ORDER".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()),
                Just("=".to_string()), Just("AND".to_string()),
                Just("T1".to_string()), Just("C1".to_string()),
                Just("42".to_string()), Just("'x'".to_string()),
            ],
            0..30,
        )
    ) {
        let soup = words.join(" ");
        let _ = parse_statements(&soup, Dialect::Teradata);
    }

    #[test]
    fn string_literal_round_trips(content in "[a-zA-Z0-9 ']{0,30}") {
        let sql = format!("SELECT '{}' FROM T", content.replace('\'', "''"));
        let parsed = hyperq_parser::parse_one(&sql, Dialect::Ansi).unwrap();
        let debug = format!("{:?}", parsed.stmt);
        // The unescaped content must be preserved in the AST.
        prop_assert!(debug.contains(&format!("{:?}", content)), "{debug}");
    }

    #[test]
    fn integer_literals_preserved(n in 0u64..1_000_000_000_000) {
        let sql = format!("SELECT {n} FROM T");
        let parsed = hyperq_parser::parse_one(&sql, Dialect::Ansi).unwrap();
        let needle = format!("\"{n}\"");
        let debug = format!("{:?}", parsed.stmt);
        prop_assert!(debug.contains(&needle), "missing literal in AST");
    }

    #[test]
    fn where_expression_depth_is_handled(depth in 1usize..30) {
        // Deeply nested parentheses parse without stack issues at sane depth.
        let mut expr = "1".to_string();
        for _ in 0..depth {
            expr = format!("({expr} + 1)");
        }
        let sql = format!("SELECT * FROM T WHERE A = {expr}");
        prop_assert!(parse_statements(&sql, Dialect::Ansi).is_ok());
    }
}
