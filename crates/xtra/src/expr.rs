//! Scalar expression trees of the XTRA algebra.
//!
//! Expressions cover the constructs named in the paper: arithmetic and
//! comparisons (`arith`, `comp`), boolean connectives (`boolexpr`), column
//! identifiers (`ident`), constants (`const`), `extract`, aggregate and
//! window function references, and the subquery family — including the
//! *quantified vector comparison* `subq(ANY, GT, [GROSS, NET])` central to
//! the paper's Example 2.

use std::fmt;

use crate::datum::Datum;
use crate::rel::RelExpr;
use crate::types::SqlType;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Teradata `MOD` infix operator (tracked feature T3).
    Mod,
    /// Teradata `**` exponentiation (tracked feature T4).
    Pow,
}

impl ArithOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
            ArithOp::Pow => "**",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with sides exchanged (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    pub fn paper_name(&self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LTE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GTE",
        }
    }
}

/// Boolean connectives (n-ary, as in the paper's `boolexpr(AND)` node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    And,
    Or,
}

/// Fields extractable from dates/timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateField {
    Year,
    Month,
    Day,
    Hour,
    Minute,
    Second,
}

impl DateField {
    pub fn name(&self) -> &'static str {
        match self {
            DateField::Year => "YEAR",
            DateField::Month => "MONTH",
            DateField::Day => "DAY",
            DateField::Hour => "HOUR",
            DateField::Minute => "MINUTE",
            DateField::Second => "SECOND",
        }
    }
}

/// Built-in scalar functions in their *normalized* (XTRA) form. Dialect
/// spellings (`CHARS`, `SUBSTR`, `INDEX`, `ZEROIFNULL`, …) are translated to
/// these during parsing/binding and serialized back out per target dialect.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Upper,
    Lower,
    Trim,
    Ltrim,
    Rtrim,
    /// `SUBSTRING(str, start [, len])`, 1-based.
    Substring,
    /// ANSI `CHAR_LENGTH`; Teradata spells it `CHARS`/`CHARACTERS` (T5).
    CharLength,
    /// ANSI `POSITION(sub IN str)`; Teradata spells it `INDEX(str, sub)` (T7).
    Position,
    Coalesce,
    NullIf,
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Exp,
    Ln,
    Power,
    Mod,
    Concat,
    /// Add whole months with day clamping; Teradata `ADD_MONTHS` (T9).
    AddMonths,
    /// Add days; the normalized form of Teradata date±integer arithmetic
    /// for targets without native date arithmetic (X6).
    DateAddDays,
    CurrentDate,
    CurrentTimestamp,
    /// Escape hatch for functions the IR does not model; carried through
    /// and serialized verbatim.
    Other(String),
}

impl ScalarFunc {
    pub fn name(&self) -> &str {
        match self {
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Trim => "TRIM",
            ScalarFunc::Ltrim => "LTRIM",
            ScalarFunc::Rtrim => "RTRIM",
            ScalarFunc::Substring => "SUBSTRING",
            ScalarFunc::CharLength => "CHAR_LENGTH",
            ScalarFunc::Position => "POSITION",
            ScalarFunc::Coalesce => "COALESCE",
            ScalarFunc::NullIf => "NULLIF",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Round => "ROUND",
            ScalarFunc::Floor => "FLOOR",
            ScalarFunc::Ceil => "CEIL",
            ScalarFunc::Sqrt => "SQRT",
            ScalarFunc::Exp => "EXP",
            ScalarFunc::Ln => "LN",
            ScalarFunc::Power => "POWER",
            ScalarFunc::Mod => "MOD",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::AddMonths => "ADD_MONTHS",
            ScalarFunc::DateAddDays => "DATE_ADD_DAYS",
            ScalarFunc::CurrentDate => "CURRENT_DATE",
            ScalarFunc::CurrentTimestamp => "CURRENT_TIMESTAMP",
            ScalarFunc::Other(n) => n,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountStar => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// Window function kinds computed by the [`crate::rel::RelExpr::Window`]
/// operator.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFuncKind {
    Rank,
    DenseRank,
    RowNumber,
    /// An aggregate evaluated over the window partition (`SUM(x) OVER (...)`).
    Agg(AggFunc),
}

impl WindowFuncKind {
    pub fn name(&self) -> &'static str {
        match self {
            WindowFuncKind::Rank => "RANK",
            WindowFuncKind::DenseRank => "DENSE_RANK",
            WindowFuncKind::RowNumber => "ROW_NUMBER",
            WindowFuncKind::Agg(a) => a.name(),
        }
    }
}

/// One sort key: expression, direction, and NULL placement.
///
/// `nulls_first: None` means "dialect default" — a deliberate modeling of
/// the paper's warning (§2.1) that the default NULL ordering differs between
/// systems and silently compromises correctness; the transformer makes it
/// explicit for the target.
#[derive(Debug, Clone, PartialEq)]
pub struct SortExpr {
    pub expr: ScalarExpr,
    pub desc: bool,
    pub nulls_first: Option<bool>,
}

impl SortExpr {
    pub fn asc(expr: ScalarExpr) -> Self {
        SortExpr { expr, desc: false, nulls_first: None }
    }
    pub fn desc(expr: ScalarExpr) -> Self {
        SortExpr { expr, desc: true, nulls_first: None }
    }
}

/// A window computation appended by the `window` operator, e.g. the paper's
/// `window(RANK, DESC, AMOUNT)` producing column `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    pub func: WindowFuncKind,
    /// Argument for aggregate window functions; `None` for RANK/ROW_NUMBER.
    pub arg: Option<ScalarExpr>,
    pub partition_by: Vec<ScalarExpr>,
    pub order_by: Vec<SortExpr>,
    /// Output column name in the operator's schema.
    pub output: String,
}

impl WindowExpr {
    /// Output type of the window function.
    pub fn ty(&self) -> SqlType {
        match &self.func {
            WindowFuncKind::Rank | WindowFuncKind::DenseRank | WindowFuncKind::RowNumber => {
                SqlType::Integer
            }
            WindowFuncKind::Agg(agg) => {
                agg_result_type(*agg, self.arg.as_ref().map(ScalarExpr::ty))
            }
        }
    }
}

/// Quantifier of a quantified subquery comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    Any,
    All,
}

impl Quantifier {
    pub fn name(&self) -> &'static str {
        match self {
            Quantifier::Any => "ANY",
            Quantifier::All => "ALL",
        }
    }
}

/// Result type of an aggregate given its argument type.
pub fn agg_result_type(func: AggFunc, arg: Option<SqlType>) -> SqlType {
    match func {
        AggFunc::Count | AggFunc::CountStar => SqlType::Integer,
        AggFunc::Sum => match arg {
            Some(SqlType::Double) => SqlType::Double,
            Some(SqlType::Decimal { scale, .. }) => SqlType::Decimal { precision: 38, scale },
            Some(SqlType::Integer) => SqlType::Integer,
            Some(t) => t,
            None => SqlType::Unknown,
        },
        AggFunc::Min | AggFunc::Max => arg.unwrap_or(SqlType::Unknown),
        AggFunc::Avg => match arg {
            Some(SqlType::Decimal { scale, .. }) => SqlType::Decimal {
                precision: 38,
                scale: (scale + 6).min(30),
            },
            _ => SqlType::Double,
        },
    }
}

/// A scalar expression in XTRA.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Bound column reference (`ident` in the paper's trees). The binder
    /// annotates the resolved type; the qualifier is the range variable.
    Column {
        qualifier: Option<String>,
        name: String,
        ty: SqlType,
    },
    /// Constant (`const`).
    Literal(Datum, SqlType),
    /// Binary arithmetic (`arith`).
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// Unary minus.
    Neg(Box<ScalarExpr>),
    /// Comparison (`comp`).
    Cmp {
        op: CmpOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// N-ary AND/OR (`boolexpr`).
    BoolExpr { op: BoolOp, args: Vec<ScalarExpr> },
    Not(Box<ScalarExpr>),
    IsNull { expr: Box<ScalarExpr>, negated: bool },
    Like {
        expr: Box<ScalarExpr>,
        pattern: Box<ScalarExpr>,
        negated: bool,
    },
    InList {
        expr: Box<ScalarExpr>,
        list: Vec<ScalarExpr>,
        negated: bool,
    },
    Between {
        expr: Box<ScalarExpr>,
        low: Box<ScalarExpr>,
        high: Box<ScalarExpr>,
        negated: bool,
    },
    Case {
        /// `CASE operand WHEN …` simple form; `None` for searched CASE.
        operand: Option<Box<ScalarExpr>>,
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_expr: Option<Box<ScalarExpr>>,
    },
    Cast { expr: Box<ScalarExpr>, ty: SqlType },
    /// `extract(FIELD, expr)`.
    Extract {
        field: DateField,
        expr: Box<ScalarExpr>,
    },
    /// Built-in scalar function call.
    Func { func: ScalarFunc, args: Vec<ScalarExpr> },
    /// Aggregate reference — valid only directly under an `Aggregate`
    /// operator's agg list.
    Agg {
        func: AggFunc,
        distinct: bool,
        arg: Option<Box<ScalarExpr>>,
    },
    /// Scalar subquery producing a single value.
    ScalarSubquery(Box<RelExpr>),
    /// `[NOT] EXISTS (subquery)` — the shape the vector-comparison rewrite
    /// targets (paper Figure 6/7).
    Exists {
        subquery: Box<RelExpr>,
        negated: bool,
    },
    /// `(e1, …, ek) [NOT] IN (subquery)`.
    InSubquery {
        exprs: Vec<ScalarExpr>,
        subquery: Box<RelExpr>,
        negated: bool,
    },
    /// Quantified (possibly *vector*) comparison:
    /// `(e1, …, ek) op ANY/ALL (subquery)` — the paper's
    /// `subq(ANY, GT, [GROSS, NET])` node.
    QuantifiedCmp {
        left: Vec<ScalarExpr>,
        op: CmpOp,
        quantifier: Quantifier,
        subquery: Box<RelExpr>,
    },
}

impl ScalarExpr {
    /// Convenience constructors ------------------------------------------------
    pub fn column(qualifier: Option<&str>, name: &str, ty: SqlType) -> ScalarExpr {
        ScalarExpr::Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
            ty,
        }
    }

    pub fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Literal(Datum::Int(v), SqlType::Integer)
    }

    pub fn string(s: &str) -> ScalarExpr {
        ScalarExpr::Literal(Datum::str(s), SqlType::Varchar(None))
    }

    pub fn null() -> ScalarExpr {
        ScalarExpr::Literal(Datum::Null, SqlType::Unknown)
    }

    pub fn boolean(b: bool) -> ScalarExpr {
        ScalarExpr::Literal(Datum::Bool(b), SqlType::Boolean)
    }

    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp { op, left: Box::new(left), right: Box::new(right) }
    }

    pub fn arith(op: ArithOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Arith { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Flattening AND constructor.
    pub fn and(args: Vec<ScalarExpr>) -> ScalarExpr {
        let mut flat = Vec::with_capacity(args.len());
        for a in args {
            match a {
                ScalarExpr::BoolExpr { op: BoolOp::And, args } => flat.extend(args),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ScalarExpr::boolean(true),
            1 => flat.into_iter().next().expect("len checked"),
            _ => ScalarExpr::BoolExpr { op: BoolOp::And, args: flat },
        }
    }

    pub fn or(args: Vec<ScalarExpr>) -> ScalarExpr {
        let mut flat = Vec::with_capacity(args.len());
        for a in args {
            match a {
                ScalarExpr::BoolExpr { op: BoolOp::Or, args } => flat.extend(args),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ScalarExpr::boolean(false),
            1 => flat.into_iter().next().expect("len checked"),
            _ => ScalarExpr::BoolExpr { op: BoolOp::Or, args: flat },
        }
    }

    /// Derived type of this expression.
    pub fn ty(&self) -> SqlType {
        match self {
            ScalarExpr::Column { ty, .. } => ty.clone(),
            ScalarExpr::Literal(_, ty) => ty.clone(),
            ScalarExpr::Arith { op, left, right } => {
                let (lt, rt) = (left.ty(), right.ty());
                match (op, &lt, &rt) {
                    (ArithOp::Sub, SqlType::Date, SqlType::Date) => SqlType::Integer,
                    (ArithOp::Add | ArithOp::Sub, SqlType::Date, SqlType::Integer) => SqlType::Date,
                    (ArithOp::Add, SqlType::Integer, SqlType::Date) => SqlType::Date,
                    (ArithOp::Add | ArithOp::Sub, SqlType::Date, SqlType::Interval) => SqlType::Date,
                    (ArithOp::Add | ArithOp::Sub, SqlType::Timestamp, SqlType::Interval) => {
                        SqlType::Timestamp
                    }
                    (ArithOp::Pow, _, _) => SqlType::Double,
                    (ArithOp::Div, SqlType::Integer, SqlType::Integer) => SqlType::Integer,
                    _ => lt.common_supertype(&rt).unwrap_or(SqlType::Unknown),
                }
            }
            ScalarExpr::Neg(e) => e.ty(),
            ScalarExpr::Cmp { .. }
            | ScalarExpr::BoolExpr { .. }
            | ScalarExpr::Not(_)
            | ScalarExpr::IsNull { .. }
            | ScalarExpr::Like { .. }
            | ScalarExpr::InList { .. }
            | ScalarExpr::Between { .. }
            | ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::QuantifiedCmp { .. } => SqlType::Boolean,
            ScalarExpr::Case { branches, else_expr, .. } => {
                let mut ty = SqlType::Unknown;
                for (_, r) in branches {
                    ty = ty.common_supertype(&r.ty()).unwrap_or(SqlType::Unknown);
                }
                if let Some(e) = else_expr {
                    ty = ty.common_supertype(&e.ty()).unwrap_or(ty);
                }
                ty
            }
            ScalarExpr::Cast { ty, .. } => ty.clone(),
            ScalarExpr::Extract { .. } => SqlType::Integer,
            ScalarExpr::Func { func, args } => match func {
                ScalarFunc::Upper
                | ScalarFunc::Lower
                | ScalarFunc::Trim
                | ScalarFunc::Ltrim
                | ScalarFunc::Rtrim
                | ScalarFunc::Substring
                | ScalarFunc::Concat => SqlType::Varchar(None),
                ScalarFunc::CharLength | ScalarFunc::Position | ScalarFunc::Mod => {
                    SqlType::Integer
                }
                ScalarFunc::Coalesce | ScalarFunc::NullIf => {
                    args.first().map_or(SqlType::Unknown, ScalarExpr::ty)
                }
                ScalarFunc::Abs | ScalarFunc::Round | ScalarFunc::Floor | ScalarFunc::Ceil => {
                    args.first().map_or(SqlType::Unknown, ScalarExpr::ty)
                }
                ScalarFunc::Sqrt | ScalarFunc::Exp | ScalarFunc::Ln | ScalarFunc::Power => {
                    SqlType::Double
                }
                ScalarFunc::AddMonths | ScalarFunc::DateAddDays | ScalarFunc::CurrentDate => {
                    SqlType::Date
                }
                ScalarFunc::CurrentTimestamp => SqlType::Timestamp,
                ScalarFunc::Other(_) => SqlType::Unknown,
            },
            ScalarExpr::Agg { func, arg, .. } => {
                agg_result_type(*func, arg.as_ref().map(|a| a.ty()))
            }
            ScalarExpr::ScalarSubquery(rel) => rel
                .schema()
                .fields
                .first()
                .map_or(SqlType::Unknown, |f| f.ty.clone()),
        }
    }

    /// Visit this expression and every descendant (including into
    /// subqueries), pre-order.
    pub fn visit(&self, exprv: &mut dyn FnMut(&ScalarExpr), relv: &mut dyn FnMut(&RelExpr)) {
        exprv(self);
        match self {
            ScalarExpr::Column { .. } | ScalarExpr::Literal(..) => {}
            ScalarExpr::Arith { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
                left.visit(exprv, relv);
                right.visit(exprv, relv);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.visit(exprv, relv),
            ScalarExpr::BoolExpr { args, .. } => {
                for a in args {
                    a.visit(exprv, relv);
                }
            }
            ScalarExpr::IsNull { expr, .. } => expr.visit(exprv, relv),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.visit(exprv, relv);
                pattern.visit(exprv, relv);
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.visit(exprv, relv);
                for e in list {
                    e.visit(exprv, relv);
                }
            }
            ScalarExpr::Between { expr, low, high, .. } => {
                expr.visit(exprv, relv);
                low.visit(exprv, relv);
                high.visit(exprv, relv);
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    o.visit(exprv, relv);
                }
                for (c, r) in branches {
                    c.visit(exprv, relv);
                    r.visit(exprv, relv);
                }
                if let Some(e) = else_expr {
                    e.visit(exprv, relv);
                }
            }
            ScalarExpr::Cast { expr, .. } | ScalarExpr::Extract { expr, .. } => {
                expr.visit(exprv, relv);
            }
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.visit(exprv, relv);
                }
            }
            ScalarExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(exprv, relv);
                }
            }
            ScalarExpr::ScalarSubquery(rel) => rel.visit(exprv, relv),
            ScalarExpr::Exists { subquery, .. } => subquery.visit(exprv, relv),
            ScalarExpr::InSubquery { exprs, subquery, .. } => {
                for e in exprs {
                    e.visit(exprv, relv);
                }
                subquery.visit(exprv, relv);
            }
            ScalarExpr::QuantifiedCmp { left, subquery, .. } => {
                for e in left {
                    e.visit(exprv, relv);
                }
                subquery.visit(exprv, relv);
            }
        }
    }

    /// Bottom-up rewrite: children (and subqueries) first, then `exprf` on
    /// the resulting node. Subquery relational trees are rewritten with
    /// `relf`/`exprf` via [`RelExpr::rewrite`].
    pub fn rewrite(
        self,
        relf: &mut dyn FnMut(RelExpr) -> RelExpr,
        exprf: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
    ) -> ScalarExpr {
        let node = match self {
            e @ (ScalarExpr::Column { .. } | ScalarExpr::Literal(..)) => e,
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op,
                left: Box::new(left.rewrite(relf, exprf)),
                right: Box::new(right.rewrite(relf, exprf)),
            },
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.rewrite(relf, exprf))),
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op,
                left: Box::new(left.rewrite(relf, exprf)),
                right: Box::new(right.rewrite(relf, exprf)),
            },
            ScalarExpr::BoolExpr { op, args } => ScalarExpr::BoolExpr {
                op,
                args: args.into_iter().map(|a| a.rewrite(relf, exprf)).collect(),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.rewrite(relf, exprf))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.rewrite(relf, exprf)),
                negated,
            },
            ScalarExpr::Like { expr, pattern, negated } => ScalarExpr::Like {
                expr: Box::new(expr.rewrite(relf, exprf)),
                pattern: Box::new(pattern.rewrite(relf, exprf)),
                negated,
            },
            ScalarExpr::InList { expr, list, negated } => ScalarExpr::InList {
                expr: Box::new(expr.rewrite(relf, exprf)),
                list: list.into_iter().map(|e| e.rewrite(relf, exprf)).collect(),
                negated,
            },
            ScalarExpr::Between { expr, low, high, negated } => ScalarExpr::Between {
                expr: Box::new(expr.rewrite(relf, exprf)),
                low: Box::new(low.rewrite(relf, exprf)),
                high: Box::new(high.rewrite(relf, exprf)),
                negated,
            },
            ScalarExpr::Case { operand, branches, else_expr } => ScalarExpr::Case {
                operand: operand.map(|o| Box::new(o.rewrite(relf, exprf))),
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.rewrite(relf, exprf), r.rewrite(relf, exprf)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.rewrite(relf, exprf))),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.rewrite(relf, exprf)),
                ty,
            },
            ScalarExpr::Extract { field, expr } => ScalarExpr::Extract {
                field,
                expr: Box::new(expr.rewrite(relf, exprf)),
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func,
                args: args.into_iter().map(|a| a.rewrite(relf, exprf)).collect(),
            },
            ScalarExpr::Agg { func, distinct, arg } => ScalarExpr::Agg {
                func,
                distinct,
                arg: arg.map(|a| Box::new(a.rewrite(relf, exprf))),
            },
            ScalarExpr::ScalarSubquery(rel) => {
                ScalarExpr::ScalarSubquery(Box::new(rel.rewrite(relf, exprf)))
            }
            ScalarExpr::Exists { subquery, negated } => ScalarExpr::Exists {
                subquery: Box::new(subquery.rewrite(relf, exprf)),
                negated,
            },
            ScalarExpr::InSubquery { exprs, subquery, negated } => ScalarExpr::InSubquery {
                exprs: exprs.into_iter().map(|e| e.rewrite(relf, exprf)).collect(),
                subquery: Box::new(subquery.rewrite(relf, exprf)),
                negated,
            },
            ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } => {
                ScalarExpr::QuantifiedCmp {
                    left: left.into_iter().map(|e| e.rewrite(relf, exprf)).collect(),
                    op,
                    quantifier,
                    subquery: Box::new(subquery.rewrite(relf, exprf)),
                }
            }
        };
        exprf(node)
    }

    /// Visit this node and its descendants *without* crossing subquery
    /// boundaries (subquery relational bodies are opaque). Used by the
    /// binder's aggregate assembly, where an inner query's aggregates must
    /// not be captured by the outer aggregate.
    pub fn visit_no_subquery(&self, f: &mut dyn FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Column { .. }
            | ScalarExpr::Literal(..)
            | ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists { .. } => {}
            ScalarExpr::Arith { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
                left.visit_no_subquery(f);
                right.visit_no_subquery(f);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.visit_no_subquery(f),
            ScalarExpr::BoolExpr { args, .. } => {
                for a in args {
                    a.visit_no_subquery(f);
                }
            }
            ScalarExpr::IsNull { expr, .. }
            | ScalarExpr::Cast { expr, .. }
            | ScalarExpr::Extract { expr, .. } => expr.visit_no_subquery(f),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.visit_no_subquery(f);
                pattern.visit_no_subquery(f);
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.visit_no_subquery(f);
                for e in list {
                    e.visit_no_subquery(f);
                }
            }
            ScalarExpr::Between { expr, low, high, .. } => {
                expr.visit_no_subquery(f);
                low.visit_no_subquery(f);
                high.visit_no_subquery(f);
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    o.visit_no_subquery(f);
                }
                for (c, r) in branches {
                    c.visit_no_subquery(f);
                    r.visit_no_subquery(f);
                }
                if let Some(e) = else_expr {
                    e.visit_no_subquery(f);
                }
            }
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.visit_no_subquery(f);
                }
            }
            ScalarExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_no_subquery(f);
                }
            }
            ScalarExpr::InSubquery { exprs, .. } => {
                for e in exprs {
                    e.visit_no_subquery(f);
                }
            }
            ScalarExpr::QuantifiedCmp { left, .. } => {
                for e in left {
                    e.visit_no_subquery(f);
                }
            }
        }
    }

    /// Bottom-up rewrite *without* crossing subquery boundaries: subquery
    /// nodes pass through untouched (their scalar left-hand sides *are*
    /// rewritten).
    pub fn rewrite_no_subquery(
        self,
        f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
    ) -> ScalarExpr {
        let node = match self {
            e @ (ScalarExpr::Column { .. }
            | ScalarExpr::Literal(..)
            | ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists { .. }) => e,
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op,
                left: Box::new(left.rewrite_no_subquery(f)),
                right: Box::new(right.rewrite_no_subquery(f)),
            },
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.rewrite_no_subquery(f))),
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op,
                left: Box::new(left.rewrite_no_subquery(f)),
                right: Box::new(right.rewrite_no_subquery(f)),
            },
            ScalarExpr::BoolExpr { op, args } => ScalarExpr::BoolExpr {
                op,
                args: args.into_iter().map(|a| a.rewrite_no_subquery(f)).collect(),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.rewrite_no_subquery(f))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.rewrite_no_subquery(f)),
                negated,
            },
            ScalarExpr::Like { expr, pattern, negated } => ScalarExpr::Like {
                expr: Box::new(expr.rewrite_no_subquery(f)),
                pattern: Box::new(pattern.rewrite_no_subquery(f)),
                negated,
            },
            ScalarExpr::InList { expr, list, negated } => ScalarExpr::InList {
                expr: Box::new(expr.rewrite_no_subquery(f)),
                list: list.into_iter().map(|e| e.rewrite_no_subquery(f)).collect(),
                negated,
            },
            ScalarExpr::Between { expr, low, high, negated } => ScalarExpr::Between {
                expr: Box::new(expr.rewrite_no_subquery(f)),
                low: Box::new(low.rewrite_no_subquery(f)),
                high: Box::new(high.rewrite_no_subquery(f)),
                negated,
            },
            ScalarExpr::Case { operand, branches, else_expr } => ScalarExpr::Case {
                operand: operand.map(|o| Box::new(o.rewrite_no_subquery(f))),
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.rewrite_no_subquery(f), r.rewrite_no_subquery(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.rewrite_no_subquery(f))),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.rewrite_no_subquery(f)),
                ty,
            },
            ScalarExpr::Extract { field, expr } => ScalarExpr::Extract {
                field,
                expr: Box::new(expr.rewrite_no_subquery(f)),
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func,
                args: args.into_iter().map(|a| a.rewrite_no_subquery(f)).collect(),
            },
            ScalarExpr::Agg { func, distinct, arg } => ScalarExpr::Agg {
                func,
                distinct,
                arg: arg.map(|a| Box::new(a.rewrite_no_subquery(f))),
            },
            ScalarExpr::InSubquery { exprs, subquery, negated } => ScalarExpr::InSubquery {
                exprs: exprs.into_iter().map(|e| e.rewrite_no_subquery(f)).collect(),
                subquery,
                negated,
            },
            ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } => {
                ScalarExpr::QuantifiedCmp {
                    left: left.into_iter().map(|e| e.rewrite_no_subquery(f)).collect(),
                    op,
                    quantifier,
                    subquery,
                }
            }
        };
        f(node)
    }

    /// True if the tree contains an aggregate reference *outside* of any
    /// subquery (used by the binder to decide whether a scalar projection
    /// implies aggregation).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ScalarExpr::Agg { .. } => true,
            ScalarExpr::Column { .. }
            | ScalarExpr::Literal(..)
            | ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists { .. } => false,
            ScalarExpr::Arith { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.contains_aggregate(),
            ScalarExpr::BoolExpr { args, .. } => args.iter().any(ScalarExpr::contains_aggregate),
            ScalarExpr::IsNull { expr, .. }
            | ScalarExpr::Cast { expr, .. }
            | ScalarExpr::Extract { expr, .. } => expr.contains_aggregate(),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(ScalarExpr::contains_aggregate)
            }
            ScalarExpr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                operand.as_ref().is_some_and(|o| o.contains_aggregate())
                    || branches
                        .iter()
                        .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr
                        .as_ref()
                        .is_some_and(|e| e.contains_aggregate())
            }
            ScalarExpr::Func { args, .. } => args.iter().any(ScalarExpr::contains_aggregate),
            ScalarExpr::InSubquery { exprs, .. } => {
                exprs.iter().any(ScalarExpr::contains_aggregate)
            }
            ScalarExpr::QuantifiedCmp { left, .. } => {
                left.iter().any(ScalarExpr::contains_aggregate)
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    /// Compact single-line rendering for diagnostics (not target SQL — that
    /// is the serializer's job).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { qualifier, name, .. } => {
                if let Some(q) = qualifier {
                    write!(f, "{q}.{name}")
                } else {
                    write!(f, "{name}")
                }
            }
            ScalarExpr::Literal(d, _) => write!(f, "{d}"),
            ScalarExpr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
            ScalarExpr::Cmp { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::BoolExpr { op, args } => {
                let sep = match op {
                    BoolOp::And => " AND ",
                    BoolOp::Or => " OR ",
                };
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, "{sep}")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            ScalarExpr::Between { expr, low, high, negated } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::Case { .. } => write!(f, "CASE(..)"),
            ScalarExpr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            ScalarExpr::Extract { field, expr } => {
                write!(f, "EXTRACT({} FROM {expr})", field.name())
            }
            ScalarExpr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Agg { func, distinct, arg } => {
                write!(f, "{}(", func.name())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a})"),
                    None => write!(f, "*)"),
                }
            }
            ScalarExpr::ScalarSubquery(_) => write!(f, "(subquery)"),
            ScalarExpr::Exists { negated, .. } => {
                write!(f, "{}EXISTS(subquery)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InSubquery { negated, .. } => {
                write!(f, "{}IN(subquery)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::QuantifiedCmp { op, quantifier, .. } => {
                write!(f, "{} {}(subquery)", op.symbol(), quantifier.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
    }

    #[test]
    fn and_constructor_flattens() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::and(vec![ScalarExpr::boolean(true), ScalarExpr::boolean(false)]),
            ScalarExpr::boolean(true),
        ]);
        match e {
            ScalarExpr::BoolExpr { op: BoolOp::And, args } => assert_eq!(args.len(), 3),
            other => panic!("expected flat AND, got {other:?}"),
        }
    }

    #[test]
    fn and_of_one_collapses() {
        let e = ScalarExpr::and(vec![ScalarExpr::boolean(true)]);
        assert_eq!(e, ScalarExpr::boolean(true));
    }

    #[test]
    fn date_minus_date_types_as_integer() {
        let d = ScalarExpr::column(None, "D", SqlType::Date);
        let e = ScalarExpr::arith(ArithOp::Sub, d.clone(), d);
        assert_eq!(e.ty(), SqlType::Integer);
    }

    #[test]
    fn date_plus_int_types_as_date() {
        let d = ScalarExpr::column(None, "D", SqlType::Date);
        let e = ScalarExpr::arith(ArithOp::Add, d, ScalarExpr::int(3));
        assert_eq!(e.ty(), SqlType::Date);
    }

    #[test]
    fn avg_of_decimal_widens_scale() {
        let t = agg_result_type(
            AggFunc::Avg,
            Some(SqlType::Decimal { precision: 15, scale: 2 }),
        );
        assert_eq!(t, SqlType::Decimal { precision: 38, scale: 8 });
    }

    #[test]
    fn rewrite_is_bottom_up() {
        // Replace every integer literal with literal+1; the outer Arith must
        // see already-rewritten children.
        let e = ScalarExpr::arith(ArithOp::Add, ScalarExpr::int(1), ScalarExpr::int(2));
        let mut relf = |r: RelExpr| r;
        let mut exprf = |e: ScalarExpr| match e {
            ScalarExpr::Literal(Datum::Int(v), t) => ScalarExpr::Literal(Datum::Int(v + 1), t),
            other => other,
        };
        let out = e.rewrite(&mut relf, &mut exprf);
        assert_eq!(
            out,
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::int(2), ScalarExpr::int(3))
        );
    }

    #[test]
    fn contains_aggregate_ignores_subqueries() {
        let sub = RelExpr::Values { rows: vec![], schema: crate::Schema::empty() };
        let e = ScalarExpr::Exists { subquery: Box::new(sub), negated: false };
        assert!(!e.contains_aggregate());
        let agg = ScalarExpr::Agg { func: AggFunc::CountStar, distinct: false, arg: None };
        assert!(ScalarExpr::and(vec![e, ScalarExpr::cmp(CmpOp::Gt, agg, ScalarExpr::int(0))])
            .contains_aggregate());
    }
}
