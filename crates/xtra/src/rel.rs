//! Relational operators of the XTRA algebra and statement-level plans.
//!
//! The operator set mirrors the paper's trees (Figures 5–6): `get`,
//! `select`, `project`, `window`, `join`, aggregate, sort, limit and set
//! operations, plus `values` and a derived-table `alias` node. Every
//! operator derives its output [`Schema`] structurally, so no side catalog
//! is needed once a tree is bound.

use crate::expr::{ScalarExpr, SortExpr, WindowExpr};
use crate::schema::{Field, Schema};
use crate::types::SqlType;

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
    /// Semi join (EXISTS decorrelation); engine-internal — never produced
    /// by the binder nor serialized.
    Semi,
    /// Anti join (NOT EXISTS decorrelation); engine-internal.
    Anti,
}

impl JoinKind {
    pub fn name(&self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER",
            JoinKind::Left => "LEFT",
            JoinKind::Right => "RIGHT",
            JoinKind::Full => "FULL",
            JoinKind::Cross => "CROSS",
            JoinKind::Semi => "SEMI",
            JoinKind::Anti => "ANTI",
        }
    }
}

/// Set operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn name(&self) -> &'static str {
        match self {
            SetOpKind::Union => "UNION",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Except => "EXCEPT",
        }
    }
}

/// Grouping specification of an aggregate.
///
/// `Sets` holds index lists into the aggregate's `group_by` vector and
/// models `ROLLUP`/`CUBE`/`GROUPING SETS` (tracked feature X8); the
/// transformer expands it into a `UNION ALL` of simple groupings for
/// targets without native support (Table 2, "OLAP grouping extensions").
#[derive(Debug, Clone, PartialEq)]
pub enum Grouping {
    /// Plain `GROUP BY` over all `group_by` expressions.
    Simple,
    /// Explicit grouping sets, each a set of indices into `group_by`.
    Sets(Vec<Vec<usize>>),
}

impl Grouping {
    /// The grouping sets for `ROLLUP(e0, …, en-1)`.
    pub fn rollup(n: usize) -> Grouping {
        Grouping::Sets((0..=n).rev().map(|k| (0..k).collect()).collect())
    }

    /// The grouping sets for `CUBE(e0, …, en-1)` (all subsets).
    pub fn cube(n: usize) -> Grouping {
        let mut sets = Vec::with_capacity(1 << n);
        for mask in (0..(1u32 << n)).rev() {
            sets.push((0..n).filter(|i| mask & (1 << i) != 0).collect());
        }
        sets.sort_by_key(|s: &Vec<usize>| std::cmp::Reverse(s.len()));
        Grouping::Sets(sets)
    }
}

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// Base table access (`get(SALES)`); carries the bound schema.
    Get {
        table: String,
        alias: Option<String>,
        schema: Schema,
    },
    /// Literal rows (`VALUES`), also used for single-row `SELECT` without
    /// FROM.
    Values {
        rows: Vec<Vec<ScalarExpr>>,
        schema: Schema,
    },
    /// Filter (`select` in the paper's trees).
    Select {
        input: Box<RelExpr>,
        predicate: ScalarExpr,
    },
    /// Projection with output names.
    Project {
        input: Box<RelExpr>,
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Window computation appending one column per [`WindowExpr`].
    Window {
        input: Box<RelExpr>,
        exprs: Vec<WindowExpr>,
    },
    Join {
        kind: JoinKind,
        left: Box<RelExpr>,
        right: Box<RelExpr>,
        condition: Option<ScalarExpr>,
    },
    /// Hash aggregate; `group_by` pairs carry output names, `aggs` hold
    /// `ScalarExpr::Agg` trees with output names.
    Aggregate {
        input: Box<RelExpr>,
        group_by: Vec<(ScalarExpr, String)>,
        grouping: Grouping,
        aggs: Vec<(ScalarExpr, String)>,
    },
    Distinct { input: Box<RelExpr> },
    Sort {
        input: Box<RelExpr>,
        keys: Vec<SortExpr>,
    },
    /// `LIMIT`/`TOP`; `with_ties` models Teradata `QUALIFY RANK() <= n`
    /// tie-preserving semantics when lowered to a limit.
    Limit {
        input: Box<RelExpr>,
        limit: Option<u64>,
        offset: u64,
        with_ties: bool,
    },
    SetOp {
        kind: SetOpKind,
        all: bool,
        left: Box<RelExpr>,
        right: Box<RelExpr>,
    },
    /// Derived-table alias: re-qualifies (and optionally renames) the
    /// input's columns. Schema precomputed by the binder.
    Alias {
        input: Box<RelExpr>,
        alias: String,
        schema: Schema,
    },
}

impl RelExpr {
    /// Structurally derive the output schema.
    pub fn schema(&self) -> Schema {
        match self {
            RelExpr::Get { schema, .. }
            | RelExpr::Values { schema, .. }
            | RelExpr::Alias { schema, .. } => schema.clone(),
            RelExpr::Select { input, .. }
            | RelExpr::Distinct { input }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. } => input.schema(),
            RelExpr::Project { input, exprs } => {
                let input_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| Field {
                            qualifier: None,
                            name: name.clone(),
                            ty: e.ty(),
                            // Plain columns and non-null literals keep their
                            // nullability (the NOT IN decorrelation guard
                            // depends on this); everything else is
                            // conservatively nullable.
                            nullable: match e {
                                ScalarExpr::Column { qualifier, name, .. } => input_schema
                                    .try_resolve(qualifier.as_deref(), name)
                                    .ok()
                                    .flatten()
                                    .is_none_or(|i| input_schema.fields[i].nullable),
                                ScalarExpr::Literal(d, _) => d.is_null(),
                                _ => true,
                            },
                        })
                        .collect(),
                )
            }
            RelExpr::Window { input, exprs } => {
                let mut schema = input.schema();
                for w in exprs {
                    schema.fields.push(Field {
                        qualifier: None,
                        name: w.output.clone(),
                        ty: w.ty(),
                        nullable: true,
                    });
                }
                schema
            }
            RelExpr::Join { kind, left, right, .. } => {
                let mut l = left.schema();
                let mut r = right.schema();
                // Outer joins make the non-preserved side nullable.
                match kind {
                    JoinKind::Left => r.fields.iter_mut().for_each(|f| f.nullable = true),
                    JoinKind::Right => l.fields.iter_mut().for_each(|f| f.nullable = true),
                    JoinKind::Full => {
                        l.fields.iter_mut().for_each(|f| f.nullable = true);
                        r.fields.iter_mut().for_each(|f| f.nullable = true);
                    }
                    JoinKind::Inner | JoinKind::Cross => {}
                    // Semi/anti joins output only the left side.
                    JoinKind::Semi | JoinKind::Anti => return l,
                }
                l.join(&r)
            }
            RelExpr::Aggregate { group_by, aggs, .. } => {
                // Aggregate output columns are unqualified; the binder
                // rewrites references above the aggregate accordingly, which
                // keeps the grouping-sets expansion (a UNION ALL of
                // projections) schema-compatible.
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|(e, name)| Field {
                        qualifier: None,
                        name: name.clone(),
                        ty: e.ty(),
                        nullable: true,
                    })
                    .collect();
                for (agg, name) in aggs {
                    fields.push(Field {
                        qualifier: None,
                        name: name.clone(),
                        ty: agg.ty(),
                        nullable: true,
                    });
                }
                Schema::new(fields)
            }
            RelExpr::SetOp { left, right, .. } => {
                let l = left.schema();
                let r = right.schema();
                Schema::new(
                    l.fields
                        .iter()
                        .zip(r.fields.iter())
                        .map(|(lf, rf)| Field {
                            qualifier: None,
                            name: lf.name.clone(),
                            ty: lf
                                .ty
                                .common_supertype(&rf.ty)
                                .unwrap_or(SqlType::Unknown),
                            nullable: lf.nullable || rf.nullable,
                        })
                        .collect(),
                )
            }
        }
    }

    /// Visit this operator, every descendant operator, and every expression
    /// they contain (pre-order; descends into subqueries).
    pub fn visit(&self, exprv: &mut dyn FnMut(&ScalarExpr), relv: &mut dyn FnMut(&RelExpr)) {
        relv(self);
        match self {
            RelExpr::Get { .. } => {}
            RelExpr::Values { rows, .. } => {
                for row in rows {
                    for e in row {
                        e.visit(exprv, relv);
                    }
                }
            }
            RelExpr::Select { input, predicate } => {
                input.visit(exprv, relv);
                predicate.visit(exprv, relv);
            }
            RelExpr::Project { input, exprs } => {
                for (e, _) in exprs {
                    e.visit(exprv, relv);
                }
                input.visit(exprv, relv);
            }
            RelExpr::Window { input, exprs } => {
                for w in exprs {
                    if let Some(a) = &w.arg {
                        a.visit(exprv, relv);
                    }
                    for p in &w.partition_by {
                        p.visit(exprv, relv);
                    }
                    for k in &w.order_by {
                        k.expr.visit(exprv, relv);
                    }
                }
                input.visit(exprv, relv);
            }
            RelExpr::Join { left, right, condition, .. } => {
                if let Some(c) = condition {
                    c.visit(exprv, relv);
                }
                left.visit(exprv, relv);
                right.visit(exprv, relv);
            }
            RelExpr::Aggregate { input, group_by, aggs, .. } => {
                for (e, _) in group_by.iter().chain(aggs.iter()) {
                    e.visit(exprv, relv);
                }
                input.visit(exprv, relv);
            }
            RelExpr::Distinct { input } => input.visit(exprv, relv),
            RelExpr::Sort { input, keys } => {
                for k in keys {
                    k.expr.visit(exprv, relv);
                }
                input.visit(exprv, relv);
            }
            RelExpr::Limit { input, .. } => input.visit(exprv, relv),
            RelExpr::SetOp { left, right, .. } => {
                left.visit(exprv, relv);
                right.visit(exprv, relv);
            }
            RelExpr::Alias { input, .. } => input.visit(exprv, relv),
        }
    }

    /// Bottom-up rewrite of the whole tree: inputs first, then contained
    /// expressions (via [`ScalarExpr::rewrite`], which descends into
    /// subqueries), then `relf` on the node itself.
    ///
    /// This single traversal is the substrate of the Transformer's
    /// fixed-point loop (paper §4.3).
    pub fn rewrite(
        self,
        relf: &mut dyn FnMut(RelExpr) -> RelExpr,
        exprf: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
    ) -> RelExpr {
        let node = match self {
            g @ RelExpr::Get { .. } => g,
            RelExpr::Values { rows, schema } => RelExpr::Values {
                rows: rows
                    .into_iter()
                    .map(|row| row.into_iter().map(|e| e.rewrite(relf, exprf)).collect())
                    .collect(),
                schema,
            },
            RelExpr::Select { input, predicate } => RelExpr::Select {
                input: Box::new(input.rewrite(relf, exprf)),
                predicate: predicate.rewrite(relf, exprf),
            },
            RelExpr::Project { input, exprs } => RelExpr::Project {
                input: Box::new(input.rewrite(relf, exprf)),
                exprs: exprs
                    .into_iter()
                    .map(|(e, n)| (e.rewrite(relf, exprf), n))
                    .collect(),
            },
            RelExpr::Window { input, exprs } => RelExpr::Window {
                input: Box::new(input.rewrite(relf, exprf)),
                exprs: exprs
                    .into_iter()
                    .map(|w| WindowExpr {
                        func: w.func,
                        arg: w.arg.map(|a| a.rewrite(relf, exprf)),
                        partition_by: w
                            .partition_by
                            .into_iter()
                            .map(|p| p.rewrite(relf, exprf))
                            .collect(),
                        order_by: w
                            .order_by
                            .into_iter()
                            .map(|k| SortExpr {
                                expr: k.expr.rewrite(relf, exprf),
                                ..k
                            })
                            .collect(),
                        output: w.output,
                    })
                    .collect(),
            },
            RelExpr::Join { kind, left, right, condition } => RelExpr::Join {
                kind,
                left: Box::new(left.rewrite(relf, exprf)),
                right: Box::new(right.rewrite(relf, exprf)),
                condition: condition.map(|c| c.rewrite(relf, exprf)),
            },
            RelExpr::Aggregate { input, group_by, grouping, aggs } => RelExpr::Aggregate {
                input: Box::new(input.rewrite(relf, exprf)),
                group_by: group_by
                    .into_iter()
                    .map(|(e, n)| (e.rewrite(relf, exprf), n))
                    .collect(),
                grouping,
                aggs: aggs
                    .into_iter()
                    .map(|(e, n)| (e.rewrite(relf, exprf), n))
                    .collect(),
            },
            RelExpr::Distinct { input } => RelExpr::Distinct {
                input: Box::new(input.rewrite(relf, exprf)),
            },
            RelExpr::Sort { input, keys } => RelExpr::Sort {
                input: Box::new(input.rewrite(relf, exprf)),
                keys: keys
                    .into_iter()
                    .map(|k| SortExpr {
                        expr: k.expr.rewrite(relf, exprf),
                        ..k
                    })
                    .collect(),
            },
            RelExpr::Limit { input, limit, offset, with_ties } => RelExpr::Limit {
                input: Box::new(input.rewrite(relf, exprf)),
                limit,
                offset,
                with_ties,
            },
            RelExpr::SetOp { kind, all, left, right } => RelExpr::SetOp {
                kind,
                all,
                left: Box::new(left.rewrite(relf, exprf)),
                right: Box::new(right.rewrite(relf, exprf)),
            },
            RelExpr::Alias { input, alias, schema } => RelExpr::Alias {
                input: Box::new(input.rewrite(relf, exprf)),
                alias,
                schema,
            },
        };
        relf(node)
    }

    /// Names of all base tables referenced anywhere in the tree.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut tables = Vec::new();
        self.visit(&mut |_| {}, &mut |r| {
            if let RelExpr::Get { table, .. } = r {
                if !tables.iter().any(|t| t == table) {
                    tables.push(table.clone());
                }
            }
        });
        tables
    }
}

/// An `UPDATE` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub column: String,
    pub value: ScalarExpr,
}

/// A bound statement: the unit handed from the binder/transformer to the
/// serializer and on to the backend.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    Query(RelExpr),
    Insert {
        table: String,
        /// Empty means "all columns in table order".
        columns: Vec<String>,
        source: RelExpr,
    },
    Update {
        table: String,
        alias: Option<String>,
        assignments: Vec<Assignment>,
        predicate: Option<ScalarExpr>,
    },
    Delete {
        table: String,
        alias: Option<String>,
        predicate: Option<ScalarExpr>,
    },
    CreateTable {
        def: crate::catalog::TableDef,
        source: Option<RelExpr>,
    },
    DropTable { name: String, if_exists: bool },
    CreateView { def: crate::catalog::ViewDef },
    DropView { name: String, if_exists: bool },
}

impl Plan {
    /// Rewrite every relational tree and expression in the statement.
    pub fn rewrite(
        self,
        relf: &mut dyn FnMut(RelExpr) -> RelExpr,
        exprf: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
    ) -> Plan {
        match self {
            Plan::Query(rel) => Plan::Query(rel.rewrite(relf, exprf)),
            Plan::Insert { table, columns, source } => Plan::Insert {
                table,
                columns,
                source: source.rewrite(relf, exprf),
            },
            Plan::Update { table, alias, assignments, predicate } => Plan::Update {
                table,
                alias,
                assignments: assignments
                    .into_iter()
                    .map(|a| Assignment {
                        column: a.column,
                        value: a.value.rewrite(relf, exprf),
                    })
                    .collect(),
                predicate: predicate.map(|p| p.rewrite(relf, exprf)),
            },
            Plan::Delete { table, alias, predicate } => Plan::Delete {
                table,
                alias,
                predicate: predicate.map(|p| p.rewrite(relf, exprf)),
            },
            Plan::CreateTable { def, source } => Plan::CreateTable {
                def,
                source: source.map(|s| s.rewrite(relf, exprf)),
            },
            other @ (Plan::DropTable { .. } | Plan::CreateView { .. } | Plan::DropView { .. }) => {
                other
            }
        }
    }

    /// Visit every relational node and expression in the statement.
    pub fn visit(&self, exprv: &mut dyn FnMut(&ScalarExpr), relv: &mut dyn FnMut(&RelExpr)) {
        match self {
            Plan::Query(rel) => rel.visit(exprv, relv),
            Plan::Insert { source, .. } => source.visit(exprv, relv),
            Plan::Update { assignments, predicate, .. } => {
                for a in assignments {
                    a.value.visit(exprv, relv);
                }
                if let Some(p) = predicate {
                    p.visit(exprv, relv);
                }
            }
            Plan::Delete { predicate, .. } => {
                if let Some(p) = predicate {
                    p.visit(exprv, relv);
                }
            }
            Plan::CreateTable { source, .. } => {
                if let Some(s) = source {
                    s.visit(exprv, relv);
                }
            }
            Plan::DropTable { .. } | Plan::CreateView { .. } | Plan::DropView { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp};

    fn get(table: &str, cols: &[(&str, SqlType)]) -> RelExpr {
        RelExpr::Get {
            table: table.to_string(),
            alias: None,
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Field::new(Some(table), n, t.clone(), true))
                    .collect(),
            ),
        }
    }

    #[test]
    fn project_schema_uses_output_names() {
        let g = get("T", &[("A", SqlType::Integer)]);
        let p = RelExpr::Project {
            input: Box::new(g),
            exprs: vec![(
                ScalarExpr::column(Some("T"), "A", SqlType::Integer),
                "X".to_string(),
            )],
        };
        let s = p.schema();
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "X");
        assert_eq!(s.fields[0].ty, SqlType::Integer);
    }

    #[test]
    fn left_join_nullability() {
        let l = get("L", &[("A", SqlType::Integer)]);
        let r = RelExpr::Get {
            table: "R".into(),
            alias: None,
            schema: Schema::new(vec![Field::new(Some("R"), "B", SqlType::Integer, false)]),
        };
        let j = RelExpr::Join {
            kind: JoinKind::Left,
            left: Box::new(l),
            right: Box::new(r),
            condition: None,
        };
        let s = j.schema();
        assert!(s.fields[1].nullable, "right side of LEFT JOIN must be nullable");
    }

    #[test]
    fn rollup_sets() {
        match Grouping::rollup(2) {
            Grouping::Sets(sets) => {
                assert_eq!(sets, vec![vec![0, 1], vec![0], vec![]]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn cube_sets_count() {
        match Grouping::cube(3) {
            Grouping::Sets(sets) => assert_eq!(sets.len(), 8),
            _ => panic!(),
        }
    }

    #[test]
    fn referenced_tables_descends_into_subqueries() {
        let outer = get("SALES", &[("AMOUNT", SqlType::Integer)]);
        let inner = get("SALES_HISTORY", &[("GROSS", SqlType::Integer)]);
        let pred = ScalarExpr::Exists {
            subquery: Box::new(inner),
            negated: false,
        };
        let sel = RelExpr::Select { input: Box::new(outer), predicate: pred };
        let tables = sel.referenced_tables();
        assert_eq!(tables, vec!["SALES".to_string(), "SALES_HISTORY".to_string()]);
    }

    #[test]
    fn aggregate_schema_names() {
        let g = get("T", &[("A", SqlType::Integer), ("B", SqlType::Integer)]);
        let agg = RelExpr::Aggregate {
            input: Box::new(g),
            group_by: vec![(
                ScalarExpr::column(Some("T"), "A", SqlType::Integer),
                "A".to_string(),
            )],
            grouping: Grouping::Simple,
            aggs: vec![(
                ScalarExpr::Agg {
                    func: AggFunc::Sum,
                    distinct: false,
                    arg: Some(Box::new(ScalarExpr::column(
                        Some("T"),
                        "B",
                        SqlType::Integer,
                    ))),
                },
                "TOTAL".to_string(),
            )],
        };
        let s = agg.schema();
        assert_eq!(s.fields[0].name, "A");
        assert_eq!(s.fields[1].name, "TOTAL");
        assert_eq!(s.fields[1].ty, SqlType::Integer);
    }

    #[test]
    fn plan_rewrite_reaches_predicates() {
        let g = get("T", &[("A", SqlType::Integer)]);
        let plan = Plan::Delete {
            table: "T".into(),
            alias: None,
            predicate: Some(ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::column(Some("T"), "A", SqlType::Integer),
                ScalarExpr::int(1),
            )),
        };
        let _ = g;
        let mut seen = 0;
        let rewritten = plan.rewrite(&mut |r| r, &mut |e| {
            seen += 1;
            e
        });
        assert!(seen >= 3, "should visit column, literal and comparison");
        match rewritten {
            Plan::Delete { predicate: Some(_), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
