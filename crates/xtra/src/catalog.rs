//! Catalog metadata: table/view definitions and the provider interface the
//! binder resolves names against.
//!
//! The paper's binder performs "metadata lookup" (§4.2); this module defines
//! what it looks up. It also carries the *sidecar* properties the emulation
//! layer needs — SET-table semantics, global temporary tables, non-constant
//! column defaults, case-insensitive columns (Table 2, rows "SET tables",
//! "Unsupported column properties") — which the middle tier must remember
//! because the target database cannot represent them.

use crate::expr::ScalarExpr;
use crate::schema::{Field, Schema};
use crate::types::SqlType;

/// What kind of table this is, in the *source* system's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Ordinary persistent table.
    Permanent,
    /// Session-scoped temporary table (also the emulation vehicle for
    /// recursion WorkTable/TempTable, paper §6).
    Temporary,
    /// Teradata GLOBAL TEMPORARY: persistent definition, per-session
    /// contents. Tracked feature E7.
    GlobalTemporary,
}

/// One column of a table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: SqlType,
    pub nullable: bool,
    /// Default value; may be non-constant (e.g. `CURRENT_DATE`), which many
    /// targets reject — kept here so the middle tier can inject it (E9).
    pub default: Option<ScalarExpr>,
    /// Teradata `NOT CASESPECIFIC` comparison semantics (E9).
    pub case_insensitive: bool,
}

impl ColumnDef {
    pub fn new(name: &str, ty: SqlType, nullable: bool) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty,
            nullable,
            default: None,
            case_insensitive: false,
        }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Fully-qualified, dialect-normalized name (`DB.TABLE` or `TABLE`).
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Teradata `SET` semantics: duplicate rows are silently discarded on
    /// insert (tracked feature E8). `false` = MULTISET.
    pub set_semantics: bool,
    pub kind: TableKind,
}

impl TableDef {
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Self {
        TableDef {
            name: name.to_string(),
            columns,
            set_semantics: false,
            kind: TableKind::Permanent,
        }
    }

    /// The schema exposed when this table is scanned under `alias` (or its
    /// own unqualified name).
    pub fn schema(&self, alias: Option<&str>) -> Schema {
        let qualifier = alias.map_or_else(|| self.base_name().to_string(), str::to_string);
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field {
                    qualifier: Some(qualifier.clone()),
                    name: c.name.clone(),
                    ty: c.ty.clone(),
                    nullable: c.nullable,
                })
                .collect(),
        )
    }

    /// Last component of the qualified name.
    pub fn base_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// A view definition. The body is stored as *source-dialect SQL text*, as
/// real catalogs do; the binder re-binds it on reference, which is also how
/// DML-on-view emulation (E6) recovers the base table.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    pub name: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    pub body_sql: String,
}

/// Name resolution interface used by the binder.
///
/// Implemented by the engine's catalog (for direct execution) and by
/// Hyper-Q's session-scoped shadow catalog (which layers emulated objects —
/// global temporary tables, macros, views — over the backend's).
pub trait MetadataProvider {
    /// Look up a table by (possibly qualified) name, already normalized to
    /// upper case.
    fn table(&self, name: &str) -> Option<TableDef>;
    /// Look up a view by normalized name.
    fn view(&self, name: &str) -> Option<ViewDef>;
}

/// A trivial in-memory provider for tests and for the binder's unit tests.
#[derive(Debug, Default, Clone)]
pub struct MemoryCatalog {
    pub tables: Vec<TableDef>,
    pub views: Vec<ViewDef>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_table(mut self, def: TableDef) -> Self {
        self.tables.push(def);
        self
    }

    pub fn with_view(mut self, def: ViewDef) -> Self {
        self.views.push(def);
        self
    }
}

impl MetadataProvider for MemoryCatalog {
    fn table(&self, name: &str) -> Option<TableDef> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name) || t.base_name().eq_ignore_ascii_case(name))
            .cloned()
    }

    fn view(&self, name: &str) -> Option<ViewDef> {
        self.views
            .iter()
            .find(|v| v.name.eq_ignore_ascii_case(name))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> TableDef {
        TableDef::new(
            "SALES",
            vec![
                ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ColumnDef::new("SALES_DATE", SqlType::Date, true),
            ],
        )
    }

    #[test]
    fn table_schema_qualified_by_alias() {
        let t = sales();
        let s = t.schema(Some("S1"));
        assert_eq!(s.resolve(Some("S1"), "AMOUNT"), Ok(0));
        assert!(s.resolve(Some("SALES"), "AMOUNT").is_err());
        let s2 = t.schema(None);
        assert_eq!(s2.resolve(Some("SALES"), "AMOUNT"), Ok(0));
    }

    #[test]
    fn memory_catalog_lookup_ignores_case_and_qualification() {
        let cat = MemoryCatalog::new().with_table(TableDef::new("DB1.SALES", vec![]));
        assert!(cat.table("db1.sales").is_some());
        assert!(cat.table("SALES").is_some());
        assert!(cat.table("OTHER").is_none());
    }

    #[test]
    fn base_name_strips_database() {
        assert_eq!(TableDef::new("DB1.SALES", vec![]).base_name(), "SALES");
        assert_eq!(TableDef::new("SALES", vec![]).base_name(), "SALES");
    }
}
