//! Static validation of XTRA trees: the PlanValidator.
//!
//! The binder is supposed to emit well-formed trees and every transformer
//! rule is supposed to preserve well-formedness — but without a checker,
//! a regression only surfaces when the target rejects the serialized SQL,
//! or worse, silently returns wrong results. [`validate_plan`] walks any
//! [`Plan`]/[`RelExpr`] and checks the structural invariant catalog:
//!
//! * every column reference resolves in its operator's input schema
//!   (correlated subqueries resolve against enclosing scopes),
//! * no ambiguous references and no duplicate range-variable aliases,
//! * projection / aggregate / window shape: non-empty projections,
//!   aggregate expressions contain an aggregate, grouping expressions do
//!   not, aggregates never appear outside an `Aggregate` operator,
//! * grouping-set indices stay inside the `group_by` list,
//! * set-operation branches have compatible arity and column types,
//! * subquery arity (scalar subqueries produce one column, `IN`/quantified
//!   comparisons match the subquery's width),
//! * expression typing is consistent (comparisons across incompatible type
//!   classes, non-boolean predicates, arithmetic with no result type),
//! * engine-internal `Semi`/`Anti` joins never escape toward a serializer.
//!
//! The checks are deliberately tolerant of `Unknown` types and of the
//! widenings the type lattice performs; a violation means the tree is
//! structurally wrong, not merely imprecisely typed.

use std::fmt;

use crate::expr::ScalarExpr;
use crate::rel::{Grouping, JoinKind, Plan, RelExpr};
use crate::schema::Schema;
use crate::types::SqlType;

/// The invariant a [`Violation`] breaks. The name doubles as the metric
/// label for per-invariant violation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A column reference resolves in no visible scope.
    UnresolvedColumn,
    /// A column reference matches two columns of the same scope.
    AmbiguousColumn,
    /// Expression typing is inconsistent (incomparable comparison operands,
    /// non-boolean predicate, arithmetic without a result type, or a column
    /// annotation that drifted from the schema it resolves into).
    TypeMismatch,
    /// A projection with no output columns.
    EmptyProjection,
    /// An aggregate reference outside an `Aggregate` operator's agg list,
    /// or inside a grouping expression.
    MisplacedAggregate,
    /// An `Aggregate` agg item that contains no aggregate function.
    MissingAggregate,
    /// A grouping-set index outside the `group_by` list.
    GroupingSetBounds,
    /// Set-operation branches with different column counts.
    SetOpArity,
    /// Set-operation branches whose column types have no common supertype.
    SetOpType,
    /// Two join-visible columns share the same qualified name, so any
    /// reference to them is unresolvable.
    DuplicateAlias,
    /// An engine-internal `Semi`/`Anti` join reached a validation boundary
    /// it must never escape (binder output, serializer input).
    InternalJoin,
    /// A `VALUES` row whose width differs from the operator schema.
    ValuesShape,
    /// A derived-table alias whose schema width differs from its input.
    AliasArity,
    /// A window computation without an output column name.
    WindowShape,
    /// Subquery width mismatch: scalar subqueries must produce one column,
    /// `IN`/quantified comparisons must match the subquery's width.
    SubqueryShape,
    /// An `INSERT`/`CTAS` column list whose width differs from its source.
    InsertArity,
    /// A rewrite rule changed the plan's output schema (names or types).
    /// Emitted by the rule auditor, never by [`validate_plan`] itself.
    RuleSchemaDrift,
    /// Serializer round-trip produced a different output schema.
    /// Emitted by the round-trip auditor, never by [`validate_plan`].
    RoundTrip,
}

impl Invariant {
    /// Stable snake_case name, used as the metric label value.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::UnresolvedColumn => "unresolved_column",
            Invariant::AmbiguousColumn => "ambiguous_column",
            Invariant::TypeMismatch => "type_mismatch",
            Invariant::EmptyProjection => "empty_projection",
            Invariant::MisplacedAggregate => "misplaced_aggregate",
            Invariant::MissingAggregate => "missing_aggregate",
            Invariant::GroupingSetBounds => "grouping_set_bounds",
            Invariant::SetOpArity => "setop_arity",
            Invariant::SetOpType => "setop_type",
            Invariant::DuplicateAlias => "duplicate_alias",
            Invariant::InternalJoin => "internal_join",
            Invariant::ValuesShape => "values_shape",
            Invariant::AliasArity => "alias_arity",
            Invariant::WindowShape => "window_shape",
            Invariant::SubqueryShape => "subquery_shape",
            Invariant::InsertArity => "insert_arity",
            Invariant::RuleSchemaDrift => "rule_schema_drift",
            Invariant::RoundTrip => "roundtrip",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, attributed to the operator it was found on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub invariant: Invariant,
    /// Operator kind the violation anchors to (`project`, `join`, …).
    pub operator: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.operator, self.message)
    }
}

/// The result of validating one plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True if any violation breaks the given invariant.
    pub fn has(&self, invariant: Invariant) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "plan validation: clean");
        }
        write!(f, "plan validation: {} violation(s)", self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Validation options.
#[derive(Debug, Clone, Default)]
pub struct ValidateOptions {
    /// Permit `Semi`/`Anti` joins (the engine's own decorrelated plans use
    /// them internally; pipeline plans must not).
    pub allow_internal_joins: bool,
}

/// Validate a statement-level plan against the invariant catalog.
pub fn validate_plan(plan: &Plan, opts: &ValidateOptions) -> ValidationReport {
    let mut w = Walker { opts, outer: Vec::new(), unknown_scope: 0, out: Vec::new() };
    match plan {
        Plan::Query(rel) => w.rel(rel),
        Plan::Insert { columns, source, .. } => {
            w.rel(source);
            if !columns.is_empty() && columns.len() != source.schema().len() {
                w.push(
                    Invariant::InsertArity,
                    "insert",
                    format!(
                        "column list names {} columns, source produces {}",
                        columns.len(),
                        source.schema().len()
                    ),
                );
            }
        }
        Plan::Update { assignments, predicate, .. } => {
            // The target table's schema is not part of the plan, so column
            // references here cannot be resolved statically; shape and
            // typing checks still apply.
            w.unknown_scope += 1;
            let empty = Schema::empty();
            for a in assignments {
                w.expr(&a.value, &empty, "update", false);
            }
            if let Some(p) = predicate {
                w.predicate(p, &empty, "update");
            }
            w.unknown_scope -= 1;
        }
        Plan::Delete { predicate, .. } => {
            if let Some(p) = predicate {
                w.unknown_scope += 1;
                w.predicate(p, &Schema::empty(), "delete");
                w.unknown_scope -= 1;
            }
        }
        Plan::CreateTable { def, source } => {
            if let Some(s) = source {
                w.rel(s);
                if def.columns.len() != s.schema().len() {
                    w.push(
                        Invariant::InsertArity,
                        "create_table",
                        format!(
                            "table {} defines {} columns, source produces {}",
                            def.name,
                            def.columns.len(),
                            s.schema().len()
                        ),
                    );
                }
            }
        }
        Plan::DropTable { .. } | Plan::CreateView { .. } | Plan::DropView { .. } => {}
    }
    ValidationReport { violations: w.out }
}

/// Validate a bare relational tree (no statement context).
pub fn validate_rel(rel: &RelExpr, opts: &ValidateOptions) -> ValidationReport {
    let mut w = Walker { opts, outer: Vec::new(), unknown_scope: 0, out: Vec::new() };
    w.rel(rel);
    ValidationReport { violations: w.out }
}

/// The output schema a statement produces, when it has one (queries and
/// the relational sources of `INSERT`/`CTAS`). Used by the rule auditor to
/// check schema preservation across rewrites.
pub fn plan_output_schema(plan: &Plan) -> Option<Schema> {
    match plan {
        Plan::Query(rel) => Some(rel.schema()),
        Plan::Insert { source, .. } => Some(source.schema()),
        Plan::CreateTable { source: Some(s), .. } => Some(s.schema()),
        _ => None,
    }
}

/// Rough comparability classes for comparison operands; the validator only
/// flags comparisons across classes with no defined semantics anywhere in
/// the pipeline (Teradata compares dates to their integer encoding, and
/// string literals coerce to dates, so those pairs pass).
#[derive(PartialEq, Eq, Clone, Copy)]
enum TypeClass {
    Numeric,
    Text,
    Temporal,
    Boolean,
    Other,
}

fn type_class(ty: &SqlType) -> TypeClass {
    match ty {
        SqlType::Integer | SqlType::Double | SqlType::Decimal { .. } => TypeClass::Numeric,
        SqlType::Varchar(_) | SqlType::Char(_) => TypeClass::Text,
        SqlType::Date | SqlType::Timestamp => TypeClass::Temporal,
        SqlType::Boolean => TypeClass::Boolean,
        SqlType::Interval | SqlType::Period(_) | SqlType::Unknown => TypeClass::Other,
    }
}

fn comparable(l: &SqlType, r: &SqlType) -> bool {
    let (cl, cr) = (type_class(l), type_class(r));
    match (cl, cr) {
        (TypeClass::Other, _) | (_, TypeClass::Other) => true,
        _ if cl == cr => true,
        // Teradata integer-coded dates (the comp_date_to_int feature).
        (TypeClass::Temporal, TypeClass::Numeric) | (TypeClass::Numeric, TypeClass::Temporal) => {
            true
        }
        // String literals coerce to dates/timestamps.
        (TypeClass::Temporal, TypeClass::Text) | (TypeClass::Text, TypeClass::Temporal) => true,
        _ => false,
    }
}

struct Walker<'a> {
    opts: &'a ValidateOptions,
    /// Enclosing scopes for correlated subqueries, innermost last.
    outer: Vec<Schema>,
    /// Depth of scopes whose schema is statically unknown (DML predicates);
    /// while non-zero, resolution failures are not violations.
    unknown_scope: usize,
    out: Vec<Violation>,
}

impl Walker<'_> {
    fn push(&mut self, invariant: Invariant, operator: &'static str, message: String) {
        self.out.push(Violation { invariant, operator, message });
    }

    fn rel(&mut self, rel: &RelExpr) {
        match rel {
            RelExpr::Get { .. } => {}
            RelExpr::Values { rows, schema } => {
                let empty = Schema::empty();
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != schema.len() {
                        self.push(
                            Invariant::ValuesShape,
                            "values",
                            format!(
                                "row {i} has {} expressions, schema has {} columns",
                                row.len(),
                                schema.len()
                            ),
                        );
                    }
                    for e in row {
                        self.expr(e, &empty, "values", false);
                    }
                }
            }
            RelExpr::Select { input, predicate } => {
                self.rel(input);
                self.predicate(predicate, &input.schema(), "select");
            }
            RelExpr::Project { input, exprs } => {
                self.rel(input);
                if exprs.is_empty() {
                    self.push(
                        Invariant::EmptyProjection,
                        "project",
                        "projection has no output columns".into(),
                    );
                }
                let scope = input.schema();
                for (e, _) in exprs {
                    self.expr(e, &scope, "project", false);
                }
            }
            RelExpr::Window { input, exprs } => {
                self.rel(input);
                let scope = input.schema();
                for w in exprs {
                    if w.output.is_empty() {
                        self.push(
                            Invariant::WindowShape,
                            "window",
                            "window computation has no output name".into(),
                        );
                    }
                    if let Some(a) = &w.arg {
                        self.expr(a, &scope, "window", false);
                    }
                    for p in &w.partition_by {
                        self.expr(p, &scope, "window", false);
                    }
                    for k in &w.order_by {
                        self.expr(&k.expr, &scope, "window", false);
                    }
                }
            }
            RelExpr::Join { kind, left, right, condition } => {
                self.rel(left);
                self.rel(right);
                if matches!(kind, JoinKind::Semi | JoinKind::Anti)
                    && !self.opts.allow_internal_joins
                {
                    self.push(
                        Invariant::InternalJoin,
                        "join",
                        format!("engine-internal {} join escaped the pipeline", kind.name()),
                    );
                }
                let scope = left.schema().join(&right.schema());
                self.duplicate_aliases(&scope);
                if let Some(c) = condition {
                    self.predicate(c, &scope, "join");
                }
            }
            RelExpr::Aggregate { input, group_by, grouping, aggs } => {
                self.rel(input);
                let scope = input.schema();
                for (e, name) in group_by {
                    if e.contains_aggregate() {
                        self.push(
                            Invariant::MisplacedAggregate,
                            "aggregate",
                            format!("grouping expression {name} contains an aggregate"),
                        );
                    }
                    self.expr(e, &scope, "aggregate", false);
                }
                for (e, name) in aggs {
                    if !e.contains_aggregate() {
                        self.push(
                            Invariant::MissingAggregate,
                            "aggregate",
                            format!("aggregate item {name} contains no aggregate function"),
                        );
                    }
                    self.expr(e, &scope, "aggregate", true);
                }
                if let Grouping::Sets(sets) = grouping {
                    for set in sets {
                        for &i in set {
                            if i >= group_by.len() {
                                self.push(
                                    Invariant::GroupingSetBounds,
                                    "aggregate",
                                    format!(
                                        "grouping set references column {i}, group list has {}",
                                        group_by.len()
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            RelExpr::Distinct { input } | RelExpr::Limit { input, .. } => self.rel(input),
            RelExpr::Sort { input, keys } => {
                self.rel(input);
                let scope = input.schema();
                for k in keys {
                    self.expr(&k.expr, &scope, "sort", false);
                }
            }
            RelExpr::SetOp { kind, left, right, .. } => {
                self.rel(left);
                self.rel(right);
                let (l, r) = (left.schema(), right.schema());
                if l.len() != r.len() {
                    self.push(
                        Invariant::SetOpArity,
                        "setop",
                        format!(
                            "{} branches produce {} and {} columns",
                            kind.name(),
                            l.len(),
                            r.len()
                        ),
                    );
                } else {
                    for (lf, rf) in l.fields.iter().zip(r.fields.iter()) {
                        if lf.ty.common_supertype(&rf.ty).is_none() {
                            self.push(
                                Invariant::SetOpType,
                                "setop",
                                format!(
                                    "{} column {} has incompatible branch types {} and {}",
                                    kind.name(),
                                    lf.name,
                                    lf.ty,
                                    rf.ty
                                ),
                            );
                        }
                    }
                }
            }
            RelExpr::Alias { input, alias, schema } => {
                self.rel(input);
                if schema.len() != input.schema().len() {
                    self.push(
                        Invariant::AliasArity,
                        "alias",
                        format!(
                            "alias {alias} exposes {} columns, input produces {}",
                            schema.len(),
                            input.schema().len()
                        ),
                    );
                }
            }
        }
    }

    /// Flag qualified names visible twice in one scope: any reference to
    /// them is inherently ambiguous, so the binder must have aliased them
    /// apart.
    fn duplicate_aliases(&mut self, scope: &Schema) {
        for (i, f) in scope.fields.iter().enumerate() {
            let Some(q) = &f.qualifier else { continue };
            let dup = scope.fields[..i].iter().any(|g| {
                g.name.eq_ignore_ascii_case(&f.name)
                    && g.qualifier
                        .as_deref()
                        .is_some_and(|gq| gq.eq_ignore_ascii_case(q))
            });
            if dup {
                self.push(
                    Invariant::DuplicateAlias,
                    "join",
                    format!("column {q}.{} is visible twice in the join output", f.name),
                );
            }
        }
    }

    /// Check a filter/join condition: normal expression checks plus "the
    /// predicate is boolean".
    fn predicate(&mut self, p: &ScalarExpr, scope: &Schema, op: &'static str) {
        let ty = p.ty();
        if !matches!(ty, SqlType::Boolean | SqlType::Unknown) {
            self.push(
                Invariant::TypeMismatch,
                op,
                format!("predicate {p} has non-boolean type {ty}"),
            );
        }
        self.expr(p, scope, op, false);
    }

    /// Check one expression against `scope`. `allow_agg` is true only for
    /// the top of an `Aggregate` operator's agg items.
    fn expr(&mut self, e: &ScalarExpr, scope: &Schema, op: &'static str, allow_agg: bool) {
        match e {
            ScalarExpr::Column { qualifier, name, ty } => {
                self.column(qualifier.as_deref(), name, ty, scope, op);
            }
            ScalarExpr::Literal(..) => {}
            ScalarExpr::Arith { left, right, .. } => {
                self.expr(left, scope, op, allow_agg);
                self.expr(right, scope, op, allow_agg);
                let (lt, rt) = (left.ty(), right.ty());
                if lt != SqlType::Unknown && rt != SqlType::Unknown && e.ty() == SqlType::Unknown
                {
                    self.push(
                        Invariant::TypeMismatch,
                        op,
                        format!("arithmetic {e} over {lt} and {rt} has no result type"),
                    );
                }
            }
            ScalarExpr::Neg(inner) | ScalarExpr::Not(inner) => {
                self.expr(inner, scope, op, allow_agg);
            }
            ScalarExpr::Cmp { left, right, .. } => {
                self.expr(left, scope, op, allow_agg);
                self.expr(right, scope, op, allow_agg);
                let (lt, rt) = (left.ty(), right.ty());
                if !comparable(&lt, &rt) {
                    self.push(
                        Invariant::TypeMismatch,
                        op,
                        format!("comparison {e} over incomparable types {lt} and {rt}"),
                    );
                }
            }
            ScalarExpr::BoolExpr { args, .. } => {
                for a in args {
                    self.expr(a, scope, op, allow_agg);
                }
            }
            ScalarExpr::IsNull { expr, .. } => self.expr(expr, scope, op, allow_agg),
            ScalarExpr::Like { expr, pattern, .. } => {
                self.expr(expr, scope, op, allow_agg);
                self.expr(pattern, scope, op, allow_agg);
            }
            ScalarExpr::InList { expr, list, .. } => {
                self.expr(expr, scope, op, allow_agg);
                for i in list {
                    self.expr(i, scope, op, allow_agg);
                }
            }
            ScalarExpr::Between { expr, low, high, .. } => {
                self.expr(expr, scope, op, allow_agg);
                self.expr(low, scope, op, allow_agg);
                self.expr(high, scope, op, allow_agg);
            }
            ScalarExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    self.expr(o, scope, op, allow_agg);
                }
                for (c, r) in branches {
                    self.expr(c, scope, op, allow_agg);
                    self.expr(r, scope, op, allow_agg);
                }
                if let Some(el) = else_expr {
                    self.expr(el, scope, op, allow_agg);
                }
            }
            ScalarExpr::Cast { expr, .. } | ScalarExpr::Extract { expr, .. } => {
                self.expr(expr, scope, op, allow_agg);
            }
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    self.expr(a, scope, op, allow_agg);
                }
            }
            ScalarExpr::Agg { arg, .. } => {
                if !allow_agg {
                    self.push(
                        Invariant::MisplacedAggregate,
                        op,
                        format!("aggregate {e} outside an Aggregate operator"),
                    );
                }
                if let Some(a) = arg {
                    // No aggregates inside aggregate arguments.
                    self.expr(a, scope, op, false);
                }
            }
            ScalarExpr::ScalarSubquery(sub) => {
                let width = sub.schema().len();
                if width != 1 {
                    self.push(
                        Invariant::SubqueryShape,
                        op,
                        format!("scalar subquery produces {width} columns"),
                    );
                }
                self.subquery(sub, scope);
            }
            ScalarExpr::Exists { subquery, .. } => self.subquery(subquery, scope),
            ScalarExpr::InSubquery { exprs, subquery, .. } => {
                for x in exprs {
                    self.expr(x, scope, op, allow_agg);
                }
                let width = subquery.schema().len();
                if width != exprs.len() {
                    self.push(
                        Invariant::SubqueryShape,
                        op,
                        format!(
                            "IN compares {} expressions against a {width}-column subquery",
                            exprs.len()
                        ),
                    );
                }
                self.subquery(subquery, scope);
            }
            ScalarExpr::QuantifiedCmp { left, subquery, .. } => {
                for x in left {
                    self.expr(x, scope, op, allow_agg);
                }
                let width = subquery.schema().len();
                if width != left.len() {
                    self.push(
                        Invariant::SubqueryShape,
                        op,
                        format!(
                            "quantified comparison of {} expressions against a \
                             {width}-column subquery",
                            left.len()
                        ),
                    );
                }
                self.subquery(subquery, scope);
            }
        }
    }

    /// Descend into a subquery, making the current scope visible as an
    /// enclosing (correlation) scope.
    fn subquery(&mut self, sub: &RelExpr, scope: &Schema) {
        self.outer.push(scope.clone());
        self.rel(sub);
        self.outer.pop();
    }

    fn column(
        &mut self,
        qualifier: Option<&str>,
        name: &str,
        ty: &SqlType,
        scope: &Schema,
        op: &'static str,
    ) {
        match scope.try_resolve(qualifier, name) {
            Ok(Some(i)) => self.column_type(&scope.fields[i].ty, ty, qualifier, name, op),
            Err(msg) => {
                if self.unknown_scope == 0 {
                    self.push(Invariant::AmbiguousColumn, op, msg);
                }
            }
            Ok(None) => {
                // Fall through to enclosing scopes, innermost first.
                for outer in self.outer.iter().rev() {
                    match outer.try_resolve(qualifier, name) {
                        Ok(Some(i)) => {
                            let field_ty = outer.fields[i].ty.clone();
                            self.column_type(&field_ty, ty, qualifier, name, op);
                            return;
                        }
                        Err(msg) => {
                            if self.unknown_scope == 0 {
                                self.push(Invariant::AmbiguousColumn, op, msg);
                            }
                            return;
                        }
                        Ok(None) => {}
                    }
                }
                if self.unknown_scope == 0 {
                    let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
                    self.push(
                        Invariant::UnresolvedColumn,
                        op,
                        format!("column {q}{name} not found in scope {scope}"),
                    );
                }
            }
        }
    }

    /// A resolved column's annotated type must stay inside the lattice of
    /// the schema field it resolves to.
    fn column_type(
        &mut self,
        field_ty: &SqlType,
        ty: &SqlType,
        qualifier: Option<&str>,
        name: &str,
        op: &'static str,
    ) {
        if field_ty.common_supertype(ty).is_none() {
            let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
            self.push(
                Invariant::TypeMismatch,
                op,
                format!("column {q}{name} annotated {ty}, schema says {field_ty}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::Field;

    fn get(table: &str, cols: &[(&str, SqlType)]) -> RelExpr {
        RelExpr::Get {
            table: table.to_string(),
            alias: None,
            schema: Schema::new(
                cols.iter()
                    .map(|(n, t)| Field::new(Some(table), n, t.clone(), true))
                    .collect(),
            ),
        }
    }

    fn col(q: &str, n: &str, t: SqlType) -> ScalarExpr {
        ScalarExpr::column(Some(q), n, t)
    }

    #[test]
    fn clean_tree_validates_clean() {
        let plan = Plan::Query(RelExpr::Project {
            input: Box::new(RelExpr::Select {
                input: Box::new(get("T", &[("A", SqlType::Integer), ("B", SqlType::Date)])),
                predicate: ScalarExpr::cmp(
                    CmpOp::Gt,
                    col("T", "A", SqlType::Integer),
                    ScalarExpr::int(5),
                ),
            }),
            exprs: vec![(col("T", "B", SqlType::Date), "B".into())],
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unresolved_column_is_flagged() {
        let plan = Plan::Query(RelExpr::Project {
            input: Box::new(get("T", &[("A", SqlType::Integer)])),
            exprs: vec![(col("T", "NOPE", SqlType::Integer), "X".into())],
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::UnresolvedColumn), "{report}");
    }

    #[test]
    fn correlated_subquery_resolves_against_outer_scope() {
        let inner = RelExpr::Select {
            input: Box::new(get("H", &[("X", SqlType::Integer)])),
            predicate: ScalarExpr::cmp(
                CmpOp::Eq,
                col("H", "X", SqlType::Integer),
                col("T", "A", SqlType::Integer), // correlated
            ),
        };
        let plan = Plan::Query(RelExpr::Select {
            input: Box::new(get("T", &[("A", SqlType::Integer)])),
            predicate: ScalarExpr::Exists { subquery: Box::new(inner), negated: false },
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn semi_join_rejected_by_default() {
        let plan = Plan::Query(RelExpr::Join {
            kind: JoinKind::Semi,
            left: Box::new(get("L", &[("A", SqlType::Integer)])),
            right: Box::new(get("R", &[("B", SqlType::Integer)])),
            condition: None,
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::InternalJoin), "{report}");
        let relaxed = validate_plan(
            &plan,
            &ValidateOptions { allow_internal_joins: true },
        );
        assert!(!relaxed.has(Invariant::InternalJoin), "{relaxed}");
    }

    #[test]
    fn setop_arity_mismatch_flagged() {
        let plan = Plan::Query(RelExpr::SetOp {
            kind: crate::rel::SetOpKind::Union,
            all: true,
            left: Box::new(get("L", &[("A", SqlType::Integer), ("B", SqlType::Integer)])),
            right: Box::new(get("R", &[("A", SqlType::Integer)])),
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::SetOpArity), "{report}");
    }

    #[test]
    fn misplaced_aggregate_flagged() {
        let agg = ScalarExpr::Agg {
            func: crate::expr::AggFunc::CountStar,
            distinct: false,
            arg: None,
        };
        let plan = Plan::Query(RelExpr::Project {
            input: Box::new(get("T", &[("A", SqlType::Integer)])),
            exprs: vec![(agg, "N".into())],
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::MisplacedAggregate), "{report}");
    }

    #[test]
    fn grouping_set_bounds_checked() {
        let plan = Plan::Query(RelExpr::Aggregate {
            input: Box::new(get("T", &[("A", SqlType::Integer)])),
            group_by: vec![(col("T", "A", SqlType::Integer), "A".into())],
            grouping: Grouping::Sets(vec![vec![0], vec![7]]),
            aggs: vec![],
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::GroupingSetBounds), "{report}");
    }

    #[test]
    fn duplicate_join_aliases_flagged() {
        let plan = Plan::Query(RelExpr::Join {
            kind: JoinKind::Inner,
            left: Box::new(get("T", &[("A", SqlType::Integer)])),
            right: Box::new(get("T", &[("A", SqlType::Integer)])),
            condition: Some(ScalarExpr::boolean(true)),
        });
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.has(Invariant::DuplicateAlias), "{report}");
    }

    #[test]
    fn update_predicate_columns_are_not_resolvable_statically() {
        let plan = Plan::Update {
            table: "T".into(),
            alias: None,
            assignments: vec![crate::rel::Assignment {
                column: "A".into(),
                value: ScalarExpr::int(1),
            }],
            predicate: Some(ScalarExpr::cmp(
                CmpOp::Eq,
                col("T", "A", SqlType::Integer),
                ScalarExpr::int(2),
            )),
        };
        let report = validate_plan(&plan, &ValidateOptions::default());
        assert!(report.is_clean(), "{report}");
    }
}
