//! # hyperq-xtra — the eXtended Relational Algebra
//!
//! This crate defines the language-agnostic query representation at the heart
//! of the Hyper-Q reproduction, called **XTRA** in the paper (§4.2): a uniform
//! algebraic model in which "the output of a given operator depends on the
//! operator's inputs as well as the operator's type".
//!
//! It contains:
//!
//! * [`types::SqlType`] — the SQL type lattice shared by frontend and backend,
//!   including the Teradata-specific `PERIOD` compound type,
//! * [`datum::Datum`] — runtime values with SQL comparison/arithmetic
//!   semantics, including an exact fixed-point [`datum::Decimal`],
//! * [`expr::ScalarExpr`] — scalar expression trees (comparisons, arithmetic,
//!   functions, aggregates, window references, and the quantified *vector*
//!   subquery construct of the paper's Example 2),
//! * [`rel::RelExpr`] — relational operators (`get`, `select`, `project`,
//!   `window`, `join`, `aggregate`, …) and [`rel::Plan`] — statement-level
//!   plans (queries, DML, DDL),
//! * [`schema`] / [`catalog`] — schemas, table metadata and the
//!   [`catalog::MetadataProvider`] trait the binder resolves names against,
//! * [`display`] — a tree printer producing the `+-select |-window(...)`
//!   notation used in the paper's Figures 4–6.
//!
//! The crate is deliberately free of parsing, binding and execution logic so
//! that every other component (binder, transformer, serializer, engine, wire
//! format) can depend on it without cycles.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod datum;
pub mod display;
pub mod expr;
pub mod feature;
pub mod rel;
pub mod schema;
pub mod types;
pub mod validate;

pub use catalog::{ColumnDef, MetadataProvider, TableDef, TableKind, ViewDef};
pub use datum::{Datum, Decimal, Interval};
pub use feature::{Component, Feature, FeatureClass, FeatureSet};
pub use expr::{
    AggFunc, ArithOp, BoolOp, CmpOp, DateField, Quantifier, ScalarExpr, ScalarFunc, SortExpr,
    WindowExpr, WindowFuncKind,
};
pub use rel::{Assignment, Grouping, JoinKind, Plan, RelExpr, SetOpKind};
pub use schema::{Field, Schema};
pub use types::SqlType;
pub use validate::{
    plan_output_schema, validate_plan, validate_rel, Invariant, ValidateOptions,
    ValidationReport, Violation,
};

/// A materialized row of values: the unit of data exchanged between the
/// engine, the TDF format and the result converter.
pub type Row = Vec<Datum>;

/// Errors shared across the pipeline for value-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value error: {}", self.0)
    }
}

impl std::error::Error for ValueError {}
