//! Relational schemas: ordered, optionally qualified, typed column lists.

use std::fmt;

use crate::types::SqlType;

/// One output column of a relational operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Range-variable qualifier (table alias) the column is visible under.
    pub qualifier: Option<String>,
    /// Column name, normalized to upper case by the binder.
    pub name: String,
    pub ty: SqlType,
    pub nullable: bool,
}

impl Field {
    pub fn new(qualifier: Option<&str>, name: &str, ty: SqlType, nullable: bool) -> Self {
        Field {
            qualifier: qualifier.map(std::string::ToString::to_string),
            name: name.to_string(),
            ty,
            nullable,
        }
    }

    /// Does `qualifier.name` (or bare `name`) refer to this field?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered list of fields; the output description of every [`crate::rel::RelExpr`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// Returns `Err` with a descriptive message on ambiguity (two distinct
    /// unqualified matches) or absence, mirroring a real binder's
    /// diagnostics.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, String> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if let Some(prev) = found {
                    // Same qualifier+name appearing twice (e.g. after a
                    // self-join both sides expose T.C): ambiguous.
                    return Err(format!(
                        "ambiguous column reference {}{name} (columns {prev} and {i})",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default()
                    ));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            format!(
                "column {}{name} not found",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            )
        })
    }

    /// Like [`Schema::resolve`], but distinguishes "not found" (`Ok(None)`)
    /// from ambiguity (`Err`). The binder uses this to fall through to
    /// outer scopes and select-list aliases.
    pub fn try_resolve(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<Option<usize>, String> {
        match self.resolve(qualifier, name) {
            Ok(i) => Ok(Some(i)),
            Err(e) if e.starts_with("ambiguous") => Err(e),
            Err(_) => Ok(None),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Re-qualify every field under a new range variable (derived-table
    /// alias), optionally renaming columns (`FROM (...) AS T (a, b, c)` —
    /// the "column names in a derived table alias" feature of Figure 2).
    pub fn with_alias(&self, alias: &str, column_names: Option<&[String]>) -> Result<Schema, String> {
        if let Some(names) = column_names {
            if names.len() != self.fields.len() {
                return Err(format!(
                    "derived table alias {alias} lists {} columns, query produces {}",
                    names.len(),
                    self.fields.len()
                ));
            }
        }
        Ok(Schema {
            fields: self
                .fields
                .iter()
                .enumerate()
                .map(|(i, f)| Field {
                    qualifier: Some(alias.to_string()),
                    name: column_names.map_or_else(|| f.name.clone(), |n| n[i].clone()),
                    ty: f.ty.clone(),
                    nullable: f.nullable,
                })
                .collect(),
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if let Some(q) = &field.qualifier {
                write!(f, "{q}.")?;
            }
            write!(f, "{} {}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(Some("S"), "AMOUNT", SqlType::Integer, true),
            Field::new(Some("S"), "SALES_DATE", SqlType::Date, true),
            Field::new(Some("H"), "AMOUNT", SqlType::Integer, true),
        ])
    }

    #[test]
    fn qualified_resolution() {
        let s = schema();
        assert_eq!(s.resolve(Some("S"), "AMOUNT"), Ok(0));
        assert_eq!(s.resolve(Some("H"), "amount"), Ok(2));
        assert_eq!(s.resolve(Some("S"), "SALES_DATE"), Ok(1));
    }

    #[test]
    fn unqualified_ambiguity_detected() {
        let s = schema();
        assert!(s.resolve(None, "AMOUNT").is_err());
        assert_eq!(s.resolve(None, "SALES_DATE"), Ok(1));
    }

    #[test]
    fn missing_column_reported() {
        let err = schema().resolve(Some("S"), "NET").unwrap_err();
        assert!(err.contains("S.NET"), "{err}");
    }

    #[test]
    fn alias_renames_and_requalifies() {
        let s = schema()
            .with_alias("T", Some(&["A".into(), "B".into(), "C".into()]))
            .unwrap();
        assert_eq!(s.resolve(Some("T"), "B"), Ok(1));
        assert!(s.resolve(Some("S"), "AMOUNT").is_err());
    }

    #[test]
    fn alias_arity_mismatch_is_error() {
        assert!(schema().with_alias("T", Some(&["A".into()])).is_err());
    }
}
