//! Paper-style tree rendering of XTRA expressions.
//!
//! Produces the notation used in the paper's Figures 5 and 6, e.g.:
//!
//! ```text
//! +-select
//! |-window(RANK, DESC, AMOUNT)
//! | +-select
//! | |-get (SALES)
//! | +-boolexpr(AND)
//! |   ...
//! +-comp(LTE)
//!   |-ident(AMOUNT)
//!   +-const(10)
//! ```
//!
//! Used by tests that reproduce the paper's worked example trees and by
//! `EXPLAIN`-style diagnostics.

use crate::expr::ScalarExpr;
use crate::rel::{Grouping, RelExpr};

/// A generic labelled tree, the common rendering form for relational and
/// scalar nodes.
#[derive(Debug, Clone)]
pub struct TreeNode {
    pub label: String,
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    fn leaf(label: impl Into<String>) -> TreeNode {
        TreeNode { label: label.into(), children: Vec::new() }
    }

    fn node(label: impl Into<String>, children: Vec<TreeNode>) -> TreeNode {
        TreeNode { label: label.into(), children }
    }
}

/// Render a relational tree in the paper's notation.
pub fn render_rel(rel: &RelExpr) -> String {
    render(&rel_node(rel))
}

/// Render a scalar expression tree in the paper's notation.
pub fn render_expr(expr: &ScalarExpr) -> String {
    render(&expr_node(expr))
}

fn render(root: &TreeNode) -> String {
    let mut out = String::new();
    out.push_str("+-");
    out.push_str(&root.label);
    out.push('\n');
    render_children(&root.children, "", &mut out);
    out
}

fn render_children(children: &[TreeNode], prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        out.push_str(prefix);
        out.push_str(if last { "+-" } else { "|-" });
        out.push_str(&child.label);
        out.push('\n');
        let child_prefix = format!("{prefix}{} ", if last { " " } else { "|" });
        render_children(&child.children, &child_prefix, out);
    }
}

fn rel_node(rel: &RelExpr) -> TreeNode {
    match rel {
        RelExpr::Get { table, alias, .. } => match alias {
            Some(a) if !a.eq_ignore_ascii_case(table) => {
                TreeNode::leaf(format!("get ({table} '{a}')"))
            }
            _ => TreeNode::leaf(format!("get ({table})")),
        },
        RelExpr::Values { rows, .. } => TreeNode::leaf(format!("values ({} rows)", rows.len())),
        RelExpr::Select { input, predicate } => TreeNode::node(
            "select",
            vec![rel_node(input), expr_node(predicate)],
        ),
        RelExpr::Project { input, exprs } => {
            let mut children = vec![rel_node(input)];
            for (e, name) in exprs {
                children.push(TreeNode::node(
                    format!("as '{name}'"),
                    vec![expr_node(e)],
                ));
            }
            TreeNode::node("project", children)
        }
        RelExpr::Window { input, exprs } => {
            // The paper prints the single-function case inline:
            // window(RANK, DESC, AMOUNT).
            if exprs.len() == 1 {
                let w = &exprs[0];
                let mut parts = vec![w.func.name().to_string()];
                for k in &w.order_by {
                    if k.desc {
                        parts.push("DESC".into());
                    }
                    parts.push(k.expr.to_string());
                }
                if let Some(a) = &w.arg {
                    parts.push(a.to_string());
                }
                for p in &w.partition_by {
                    parts.push(format!("PARTITION {p}"));
                }
                TreeNode::node(
                    format!("window({})", parts.join(", ")),
                    vec![rel_node(input)],
                )
            } else {
                let mut children = vec![rel_node(input)];
                for w in exprs {
                    children.push(TreeNode::leaf(format!(
                        "winfunc({}, '{}')",
                        w.func.name(),
                        w.output
                    )));
                }
                TreeNode::node("window", children)
            }
        }
        RelExpr::Join { kind, left, right, condition } => {
            let mut children = vec![rel_node(left), rel_node(right)];
            if let Some(c) = condition {
                children.push(expr_node(c));
            }
            TreeNode::node(format!("join({})", kind.name()), children)
        }
        RelExpr::Aggregate { input, group_by, grouping, aggs } => {
            let mut children = vec![rel_node(input)];
            for (e, name) in group_by {
                children.push(TreeNode::node(format!("groupby '{name}'"), vec![expr_node(e)]));
            }
            for (e, name) in aggs {
                children.push(TreeNode::node(format!("agg '{name}'"), vec![expr_node(e)]));
            }
            let label = match grouping {
                Grouping::Simple => "gbagg".to_string(),
                Grouping::Sets(sets) => format!("gbagg(sets={})", sets.len()),
            };
            TreeNode::node(label, children)
        }
        RelExpr::Distinct { input } => TreeNode::node("distinct", vec![rel_node(input)]),
        RelExpr::Sort { input, keys } => {
            let desc: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                .collect();
            TreeNode::node(format!("sort({})", desc.join(", ")), vec![rel_node(input)])
        }
        RelExpr::Limit { input, limit, offset, with_ties } => {
            let mut label = match limit {
                Some(n) => format!("limit({n}"),
                None => "limit(ALL".to_string(),
            };
            if *offset > 0 {
                label.push_str(&format!(", offset {offset}"));
            }
            if *with_ties {
                label.push_str(", with ties");
            }
            label.push(')');
            TreeNode::node(label, vec![rel_node(input)])
        }
        RelExpr::SetOp { kind, all, left, right } => TreeNode::node(
            format!("{}{}", kind.name().to_lowercase(), if *all { "_all" } else { "" }),
            vec![rel_node(left), rel_node(right)],
        ),
        RelExpr::Alias { input, alias, .. } => {
            TreeNode::node(format!("alias '{alias}'"), vec![rel_node(input)])
        }
    }
}

fn expr_node(expr: &ScalarExpr) -> TreeNode {
    match expr {
        ScalarExpr::Column { qualifier, name, .. } => match qualifier {
            Some(q) => TreeNode::leaf(format!("ident({q}.{name})")),
            None => TreeNode::leaf(format!("ident({name})")),
        },
        ScalarExpr::Literal(d, _) => TreeNode::leaf(format!("const({d})")),
        ScalarExpr::Arith { op, left, right } => TreeNode::node(
            format!("arith({})", op.symbol()),
            vec![expr_node(left), expr_node(right)],
        ),
        ScalarExpr::Neg(e) => TreeNode::node("arith(neg)", vec![expr_node(e)]),
        ScalarExpr::Cmp { op, left, right } => TreeNode::node(
            format!("comp({})", op.paper_name()),
            vec![expr_node(left), expr_node(right)],
        ),
        ScalarExpr::BoolExpr { op, args } => TreeNode::node(
            format!("boolexpr({:?})", op).to_uppercase().replace("BOOLEXPR", "boolexpr"),
            args.iter().map(expr_node).collect(),
        ),
        ScalarExpr::Not(e) => TreeNode::node("not", vec![expr_node(e)]),
        ScalarExpr::IsNull { expr, negated } => TreeNode::node(
            if *negated { "isnotnull" } else { "isnull" },
            vec![expr_node(expr)],
        ),
        ScalarExpr::Like { expr, pattern, negated } => TreeNode::node(
            if *negated { "notlike" } else { "like" },
            vec![expr_node(expr), expr_node(pattern)],
        ),
        ScalarExpr::InList { expr, list, negated } => {
            let mut children = vec![expr_node(expr)];
            children.extend(list.iter().map(expr_node));
            TreeNode::node(if *negated { "notin" } else { "in" }, children)
        }
        ScalarExpr::Between { expr, low, high, negated } => TreeNode::node(
            if *negated { "notbetween" } else { "between" },
            vec![expr_node(expr), expr_node(low), expr_node(high)],
        ),
        ScalarExpr::Case { operand, branches, else_expr } => {
            let mut children = Vec::new();
            if let Some(o) = operand {
                children.push(expr_node(o));
            }
            for (c, r) in branches {
                children.push(TreeNode::node("when", vec![expr_node(c), expr_node(r)]));
            }
            if let Some(e) = else_expr {
                children.push(TreeNode::node("else", vec![expr_node(e)]));
            }
            TreeNode::node("case", children)
        }
        ScalarExpr::Cast { expr, ty } => {
            TreeNode::node(format!("cast({ty})"), vec![expr_node(expr)])
        }
        ScalarExpr::Extract { field, expr } => TreeNode::node(
            format!("extract({}, {})", field.name(), expr),
            vec![],
        ),
        ScalarExpr::Func { func, args } => TreeNode::node(
            format!("func({})", func.name()),
            args.iter().map(expr_node).collect(),
        ),
        ScalarExpr::Agg { func, distinct, arg } => {
            let label = format!(
                "agg({}{})",
                func.name(),
                if *distinct { ", DISTINCT" } else { "" }
            );
            TreeNode::node(label, arg.iter().map(|a| expr_node(a)).collect())
        }
        ScalarExpr::ScalarSubquery(rel) => TreeNode::node("subq(SCALAR)", vec![rel_node(rel)]),
        ScalarExpr::Exists { subquery, negated } => TreeNode::node(
            if *negated { "subq(NOT EXISTS)" } else { "subq(EXISTS)" },
            vec![rel_node(subquery)],
        ),
        ScalarExpr::InSubquery { exprs, subquery, negated } => {
            let mut children: Vec<TreeNode> = exprs.iter().map(expr_node).collect();
            children.push(rel_node(subquery));
            TreeNode::node(if *negated { "subq(NOT IN)" } else { "subq(IN)" }, children)
        }
        ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } => {
            let cols: Vec<String> = left.iter().map(std::string::ToString::to_string).collect();
            let mut children = vec![rel_node(subquery)];
            children.push(TreeNode::node(
                "list",
                left.iter().map(expr_node).collect(),
            ));
            TreeNode::node(
                format!(
                    "subq({}, {}, [{}])",
                    quantifier.name(),
                    op.paper_name(),
                    cols.join(", ")
                ),
                children,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::{Field, Schema};
    use crate::types::SqlType;

    #[test]
    fn renders_paper_like_tree() {
        let get = RelExpr::Get {
            table: "SALES".into(),
            alias: None,
            schema: Schema::new(vec![Field::new(
                Some("SALES"),
                "AMOUNT",
                SqlType::Integer,
                true,
            )]),
        };
        let sel = RelExpr::Select {
            input: Box::new(get),
            predicate: ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer),
                ScalarExpr::int(10),
            ),
        };
        let out = render_rel(&sel);
        assert!(out.starts_with("+-select\n"), "{out}");
        assert!(out.contains("|-get (SALES)"), "{out}");
        assert!(out.contains("+-comp(GT)"), "{out}");
        assert!(out.contains("ident(SALES.AMOUNT)"), "{out}");
        assert!(out.contains("const(10)"), "{out}");
    }

    #[test]
    fn nested_prefixes_are_aligned() {
        let leaf = RelExpr::Values { rows: vec![], schema: Schema::empty() };
        let inner = RelExpr::Distinct { input: Box::new(leaf) };
        let outer = RelExpr::Distinct { input: Box::new(inner) };
        let out = render_rel(&outer);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "+-distinct");
        assert_eq!(lines[1], "+-distinct");
        assert_eq!(lines[2], "  +-values (0 rows)");
    }
}
