//! The SQL type system shared by the frontend dialect, XTRA and the backend
//! engine.
//!
//! The paper's desiderata (§3.1) call for "support for a variety of data
//! types, including ODBC types, as well as user-defined types or compound
//! data types, e.g., PERIOD". We model the scalar types needed by the
//! evaluation workloads (TPC-H plus the customer-workload features) and the
//! Teradata `PERIOD` compound type, which the emulation layer splits into a
//! begin/end column pair (Table 2, "Unsupported column properties").

use std::fmt;

/// A SQL data type.
///
/// `Unknown` is the type of an untyped `NULL` literal before binding; the
/// binder replaces it through coercion wherever context determines a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// Boolean truth value.
    Boolean,
    /// 64-bit signed integer. Teradata BYTEINT/SMALLINT/INTEGER/BIGINT all
    /// map here; width is preserved only as metadata on the column.
    Integer,
    /// IEEE-754 double precision (`FLOAT`/`REAL`/`DOUBLE PRECISION`).
    Double,
    /// Exact fixed-point decimal with the given precision and scale.
    Decimal { precision: u8, scale: u8 },
    /// Calendar date (no time component).
    Date,
    /// Date and time with microsecond resolution, no time zone.
    Timestamp,
    /// Variable-length character string; `None` means unbounded.
    Varchar(Option<u32>),
    /// Fixed-length character string, blank padded on comparison.
    Char(u32),
    /// Year-month / day interval.
    Interval,
    /// Teradata-style `PERIOD(inner)` compound type: a closed-open time
    /// range. Few targets support it; the emulation layer decomposes it.
    Period(Box<SqlType>),
    /// The type of an unbound `NULL`; coerces to anything.
    Unknown,
}

impl SqlType {
    /// True for types on which arithmetic is defined.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            SqlType::Integer | SqlType::Double | SqlType::Decimal { .. }
        )
    }

    /// True for character types.
    pub fn is_character(&self) -> bool {
        matches!(self, SqlType::Varchar(_) | SqlType::Char(_))
    }

    /// True for date/time types.
    pub fn is_temporal(&self) -> bool {
        matches!(self, SqlType::Date | SqlType::Timestamp)
    }

    /// The common supertype of two types under implicit SQL coercion, or
    /// `None` if the pair is incomparable without an explicit rewrite.
    ///
    /// Note that DATE vs INTEGER deliberately has *no* common supertype:
    /// Teradata permits that comparison through its internal integer date
    /// encoding, and Hyper-Q must rewrite it (paper §5.2) rather than rely on
    /// coercion.
    pub fn common_supertype(&self, other: &SqlType) -> Option<SqlType> {
        use SqlType::*;
        if self == other {
            return Some(self.clone());
        }
        match (self, other) {
            (Unknown, t) | (t, Unknown) => Some(t.clone()),
            (Integer, Double) | (Double, Integer) => Some(Double),
            (Decimal { .. }, Double) | (Double, Decimal { .. }) => Some(Double),
            (Integer, Decimal { precision, scale })
            | (Decimal { precision, scale }, Integer) => Some(Decimal {
                precision: (*precision).max(19),
                scale: *scale,
            }),
            (Decimal { precision: p1, scale: s1 }, Decimal { precision: p2, scale: s2 }) => {
                let scale = (*s1).max(*s2);
                let int_digits = (p1 - s1).max(p2 - s2);
                Some(Decimal {
                    precision: (int_digits + scale).min(38),
                    scale,
                })
            }
            (Varchar(a), Varchar(b)) => Some(Varchar(match (a, b) {
                (Some(a), Some(b)) => Some(*a.max(b)),
                _ => None,
            })),
            (Char(a), Varchar(b)) | (Varchar(b), Char(a)) => {
                Some(Varchar(b.map(|b| b.max(*a))))
            }
            (Char(a), Char(b)) => Some(Char(*a.max(b))),
            (Date, Timestamp) | (Timestamp, Date) => Some(Timestamp),
            _ => None,
        }
    }

    /// Default decimal type used when precision is unspecified.
    pub fn default_decimal() -> SqlType {
        SqlType::Decimal {
            precision: 18,
            scale: 2,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Boolean => write!(f, "BOOLEAN"),
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Double => write!(f, "DOUBLE PRECISION"),
            SqlType::Decimal { precision, scale } => {
                write!(f, "DECIMAL({precision},{scale})")
            }
            SqlType::Date => write!(f, "DATE"),
            SqlType::Timestamp => write!(f, "TIMESTAMP"),
            SqlType::Varchar(Some(n)) => write!(f, "VARCHAR({n})"),
            SqlType::Varchar(None) => write!(f, "VARCHAR"),
            SqlType::Char(n) => write!(f, "CHAR({n})"),
            SqlType::Interval => write!(f, "INTERVAL"),
            SqlType::Period(inner) => write!(f, "PERIOD({inner})"),
            SqlType::Unknown => write!(f, "UNKNOWN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(SqlType::Integer.is_numeric());
        assert!(SqlType::Double.is_numeric());
        assert!(SqlType::Decimal { precision: 10, scale: 2 }.is_numeric());
        assert!(!SqlType::Date.is_numeric());
        assert!(!SqlType::Varchar(None).is_numeric());
    }

    #[test]
    fn supertype_int_double() {
        assert_eq!(
            SqlType::Integer.common_supertype(&SqlType::Double),
            Some(SqlType::Double)
        );
    }

    #[test]
    fn supertype_decimal_widening() {
        let a = SqlType::Decimal { precision: 10, scale: 2 };
        let b = SqlType::Decimal { precision: 12, scale: 4 };
        assert_eq!(
            a.common_supertype(&b),
            Some(SqlType::Decimal { precision: 12, scale: 4 })
        );
    }

    #[test]
    fn date_int_incomparable_without_rewrite() {
        // The whole point of the comp_date_to_int transformation (paper §5.2):
        // coercion alone cannot bridge DATE and INTEGER.
        assert_eq!(SqlType::Date.common_supertype(&SqlType::Integer), None);
    }

    #[test]
    fn unknown_coerces_to_anything() {
        assert_eq!(
            SqlType::Unknown.common_supertype(&SqlType::Date),
            Some(SqlType::Date)
        );
    }

    #[test]
    fn char_varchar_supertype() {
        assert_eq!(
            SqlType::Char(5).common_supertype(&SqlType::Varchar(Some(3))),
            Some(SqlType::Varchar(Some(5)))
        );
    }

    #[test]
    fn display_round_trips_names() {
        assert_eq!(
            SqlType::Decimal { precision: 15, scale: 2 }.to_string(),
            "DECIMAL(15,2)"
        );
        assert_eq!(
            SqlType::Period(Box::new(SqlType::Date)).to_string(),
            "PERIOD(DATE)"
        );
    }
}
