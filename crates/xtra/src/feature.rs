//! The 27 tracked non-standard features (paper §7.1).
//!
//! "We instrumented Hyper-Q's query rewrite engine to track a selection of
//! 27 commonly used non-standard features observed in customer workloads
//! from each of the three categories presented in Section 2.1 (translation,
//! transformation, and features that require emulation in the mid tier; we
//! chose 9 features of each class)."
//!
//! Every feature carries its rewrite synopsis and implementing component,
//! which makes this registry the single source for regenerating the paper's
//! Table 2 and for the Figure 8 instrumentation.

use std::fmt;

/// Difficulty class of a rewrite (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureClass {
    /// Keyword/function-name level; "often highly localized" rewrites.
    Translation,
    /// Requires full structural understanding: name resolution, type
    /// derivation, non-local restructuring.
    Transformation,
    /// Missing functionality realized by multiple requests plus state kept
    /// in the middle tier.
    Emulation,
}

impl FeatureClass {
    pub const ALL: [FeatureClass; 3] = [
        FeatureClass::Translation,
        FeatureClass::Transformation,
        FeatureClass::Emulation,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            FeatureClass::Translation => "Translation",
            FeatureClass::Transformation => "Transformation",
            FeatureClass::Emulation => "Emulation",
        }
    }
}

impl fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which pipeline component implements a feature's rewrite (Table 2's
/// "Component" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    Parser,
    Binder,
    Transformer,
    Serializer,
    Emulator,
    BinderTransformer,
}

impl Component {
    pub fn name(&self) -> &'static str {
        match self {
            Component::Parser => "Parser",
            Component::Binder => "Binder",
            Component::Transformer => "Transformer",
            Component::Serializer => "Serializer",
            Component::Emulator => "Emulator (mid-tier)",
            Component::BinderTransformer => "Binder/Transformer",
        }
    }
}

/// One of the 27 tracked features: 9 per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    // --- Translation (T1–T9) ---
    /// `SEL`/`DEL`/`INS`/`UPD` keyword shortcuts.
    KeywordShortcut,
    /// Keyword comparison operators `EQ`, `NE`, `LT`, `LE`, `GT`, `GE`.
    KeywordComparison,
    /// Infix `MOD` operator.
    ModOperator,
    /// `**` exponentiation operator.
    ExponentOperator,
    /// `CHARS`/`CHARACTERS` string-length functions.
    CharsFunction,
    /// `ZEROIFNULL`/`NULLIFZERO`.
    ZeroIfNull,
    /// `INDEX(string, substring)`.
    IndexFunction,
    /// `SUBSTR` spelling of `SUBSTRING`.
    SubstrFunction,
    /// `ADD_MONTHS` date function.
    AddMonths,
    // --- Transformation (X1–X9) ---
    /// `QUALIFY` clause combining window functions with predicates.
    Qualify,
    /// Implicit joins: tables referenced outside the `FROM` clause.
    ImplicitJoin,
    /// Named expressions referenced within the same SELECT list
    /// ("chained projections").
    NamedExprReference,
    /// Ordinals in `GROUP BY`/`ORDER BY`.
    OrdinalGroupBy,
    /// DATE–INTEGER comparison through Teradata's internal date encoding.
    DateIntComparison,
    /// Date ± integer arithmetic.
    DateArithmetic,
    /// Quantified *vector* subquery comparison `(a, b) > ANY (SELECT …)`.
    VectorSubquery,
    /// `ROLLUP`/`CUBE`/`GROUPING SETS`.
    GroupingExtensions,
    /// Teradata window shorthand `RANK(expr DESC)` and non-standard clause
    /// order (`ORDER BY` before `WHERE`).
    NonAnsiWindowSyntax,
    // --- Emulation (E1–E9) ---
    /// `WITH RECURSIVE` common table expressions.
    RecursiveQuery,
    /// `CREATE MACRO`/`EXECUTE` parameterized statement sequences.
    MacroStatement,
    /// Stored procedure `CALL` semantics.
    StoredProcedureCall,
    /// `MERGE INTO` upsert.
    MergeStatement,
    /// Informational commands: `HELP SESSION`, `HELP TABLE`.
    HelpCommand,
    /// DML against view objects.
    DmlOnView,
    /// `CREATE GLOBAL TEMPORARY TABLE`.
    GlobalTempTable,
    /// `SET` table duplicate-row elimination on insert.
    SetTableSemantics,
    /// Column properties the target cannot express: non-constant defaults,
    /// `NOT CASESPECIFIC`, `PERIOD` columns.
    ColumnProperties,
}

impl Feature {
    /// All 27 features in registry order (T1–T9, X1–X9, E1–E9).
    pub const ALL: [Feature; 27] = [
        Feature::KeywordShortcut,
        Feature::KeywordComparison,
        Feature::ModOperator,
        Feature::ExponentOperator,
        Feature::CharsFunction,
        Feature::ZeroIfNull,
        Feature::IndexFunction,
        Feature::SubstrFunction,
        Feature::AddMonths,
        Feature::Qualify,
        Feature::ImplicitJoin,
        Feature::NamedExprReference,
        Feature::OrdinalGroupBy,
        Feature::DateIntComparison,
        Feature::DateArithmetic,
        Feature::VectorSubquery,
        Feature::GroupingExtensions,
        Feature::NonAnsiWindowSyntax,
        Feature::RecursiveQuery,
        Feature::MacroStatement,
        Feature::StoredProcedureCall,
        Feature::MergeStatement,
        Feature::HelpCommand,
        Feature::DmlOnView,
        Feature::GlobalTempTable,
        Feature::SetTableSemantics,
        Feature::ColumnProperties,
    ];

    pub fn class(&self) -> FeatureClass {
        use Feature::*;
        match self {
            KeywordShortcut | KeywordComparison | ModOperator | ExponentOperator
            | CharsFunction | ZeroIfNull | IndexFunction | SubstrFunction | AddMonths => {
                FeatureClass::Translation
            }
            Qualify | ImplicitJoin | NamedExprReference | OrdinalGroupBy | DateIntComparison
            | DateArithmetic | VectorSubquery | GroupingExtensions | NonAnsiWindowSyntax => {
                FeatureClass::Transformation
            }
            RecursiveQuery | MacroStatement | StoredProcedureCall | MergeStatement
            | HelpCommand | DmlOnView | GlobalTempTable | SetTableSemantics
            | ColumnProperties => FeatureClass::Emulation,
        }
    }

    /// Short identifier (T1…E9).
    pub fn code(&self) -> &'static str {
        use Feature::*;
        match self {
            KeywordShortcut => "T1",
            KeywordComparison => "T2",
            ModOperator => "T3",
            ExponentOperator => "T4",
            CharsFunction => "T5",
            ZeroIfNull => "T6",
            IndexFunction => "T7",
            SubstrFunction => "T8",
            AddMonths => "T9",
            Qualify => "X1",
            ImplicitJoin => "X2",
            NamedExprReference => "X3",
            OrdinalGroupBy => "X4",
            DateIntComparison => "X5",
            DateArithmetic => "X6",
            VectorSubquery => "X7",
            GroupingExtensions => "X8",
            NonAnsiWindowSyntax => "X9",
            RecursiveQuery => "E1",
            MacroStatement => "E2",
            StoredProcedureCall => "E3",
            MergeStatement => "E4",
            HelpCommand => "E5",
            DmlOnView => "E6",
            GlobalTempTable => "E7",
            SetTableSemantics => "E8",
            ColumnProperties => "E9",
        }
    }

    /// Human-readable name (Table 2's "Feature" column).
    pub fn title(&self) -> &'static str {
        use Feature::*;
        match self {
            KeywordShortcut => "SEL/DEL/INS/UPD",
            KeywordComparison => "Keyword comparison operators",
            ModOperator => "MOD operator",
            ExponentOperator => "** exponentiation",
            CharsFunction => "CHARS/CHARACTERS",
            ZeroIfNull => "ZEROIFNULL/NULLIFZERO",
            IndexFunction => "INDEX function",
            SubstrFunction => "SUBSTR",
            AddMonths => "ADD_MONTHS",
            Qualify => "QUALIFY",
            ImplicitJoin => "Implicit joins",
            NamedExprReference => "Chained projections",
            OrdinalGroupBy => "Ordinal GROUP BY / ORDER BY",
            DateIntComparison => "Date-Integer comparison",
            DateArithmetic => "Date arithmetics",
            VectorSubquery => "Vector subquery comparison",
            GroupingExtensions => "OLAP grouping extensions",
            NonAnsiWindowSyntax => "Teradata window syntax / clause order",
            RecursiveQuery => "Recursive queries",
            MacroStatement => "Macros",
            StoredProcedureCall => "Stored procedure calls",
            MergeStatement => "MERGE",
            HelpCommand => "HELP commands",
            DmlOnView => "DML on views",
            GlobalTempTable => "Global temporary tables",
            SetTableSemantics => "SET table semantics",
            ColumnProperties => "Unsupported column properties",
        }
    }

    /// Synopsis of the implemented rewrite (Table 2's "Hyper-Q
    /// implementation" column).
    pub fn rewrite_synopsis(&self) -> &'static str {
        use Feature::*;
        match self {
            KeywordShortcut => "Replace by the corresponding non-abbreviated keyword",
            KeywordComparison => "Replace by the corresponding symbolic operator",
            ModOperator => "Replace by % operator or MOD() function per target",
            ExponentOperator => "Replace by POWER() function",
            CharsFunction => "Replace by CHAR_LENGTH",
            ZeroIfNull => "Replace by COALESCE(x,0) / NULLIF(x,0)",
            IndexFunction => "Replace by POSITION(sub IN str)",
            SubstrFunction => "Replace by SUBSTRING",
            AddMonths => "Serialize per target (ADD_MONTHS / DATEADD / interval arithmetic)",
            Qualify => {
                "Add a window operator computing the functions and transform the \
                 predicate to refer to the computed columns"
            }
            ImplicitJoin => "Expand FROM clause with referenced tables",
            NamedExprReference => "Replace the referenced name by its definition",
            OrdinalGroupBy => "Replace column positions by the corresponding expression",
            DateIntComparison => {
                "Expand the date side into DAY + MONTH*100 + (YEAR-1900)*10000"
            }
            DateArithmetic => "Replace by DATE_ADD_DAYS / interval addition per target",
            VectorSubquery => {
                "Replace quantified vector comparison with an equivalent existential \
                 correlated subquery"
            }
            GroupingExtensions => "Expand to a UNION ALL over simple GROUP BYs",
            NonAnsiWindowSyntax => {
                "Normalize RANK(expr DESC) to ANSI RANK() OVER (ORDER BY expr DESC); \
                 reorder clauses during parsing"
            }
            RecursiveQuery => {
                "Drive recursion from the mid-tier with WorkTable/TempTable temporary \
                 tables until fixed point"
            }
            MacroStatement => "Store definition in DTM catalog; expand body with bound parameters",
            StoredProcedureCall => "Break control flow into a sequence of SQL requests",
            MergeStatement => "Execute as UPDATE followed by guarded INSERT in one transaction",
            HelpCommand => "Answer from mid-tier session state without contacting the target",
            DmlOnView => "Express DML operation on the base table of the view",
            GlobalTempTable => "Create per-session temp table from DTM-cataloged definition",
            SetTableSemantics => "Guard INSERT with anti-join dedup against existing rows",
            ColumnProperties => {
                "Store properties in DTM catalog and apply when the column is referenced"
            }
        }
    }

    /// Which component implements the rewrite (Table 2's "Component").
    pub fn component(&self) -> Component {
        use Feature::*;
        match self {
            KeywordShortcut | KeywordComparison | NonAnsiWindowSyntax => Component::Parser,
            ModOperator | ExponentOperator | CharsFunction | ZeroIfNull | IndexFunction
            | SubstrFunction => Component::Parser,
            AddMonths | DateArithmetic => Component::Serializer,
            Qualify => Component::Parser,
            ImplicitJoin | NamedExprReference | OrdinalGroupBy => Component::Binder,
            DateIntComparison | GroupingExtensions => Component::Transformer,
            VectorSubquery => Component::Serializer,
            RecursiveQuery | MacroStatement | StoredProcedureCall | MergeStatement
            | HelpCommand | GlobalTempTable | SetTableSemantics => Component::Emulator,
            DmlOnView => Component::Binder,
            ColumnProperties => Component::BinderTransformer,
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.title(), self.code())
    }
}

/// A set of tracked features, observed while processing one statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureSet {
    bits: u32,
}

impl FeatureSet {
    pub fn new() -> Self {
        Self::default()
    }

    fn bit(f: Feature) -> u32 {
        1 << Feature::ALL.iter().position(|x| *x == f).expect("feature in ALL")
    }

    pub fn insert(&mut self, f: Feature) {
        self.bits |= Self::bit(f);
    }

    pub fn contains(&self, f: Feature) -> bool {
        self.bits & Self::bit(f) != 0
    }

    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    pub fn union(&mut self, other: &FeatureSet) {
        self.bits |= other.bits;
    }

    pub fn iter(&self) -> impl Iterator<Item = Feature> + '_ {
        Feature::ALL.iter().copied().filter(|f| self.contains(*f))
    }

    /// Does the set contain any feature of the given class?
    pub fn has_class(&self, class: FeatureClass) -> bool {
        self.iter().any(|f| f.class() == class)
    }

    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_features_per_class() {
        for class in FeatureClass::ALL {
            let n = Feature::ALL.iter().filter(|f| f.class() == class).count();
            assert_eq!(n, 9, "{class} must have exactly 9 features as in the paper");
        }
    }

    #[test]
    fn codes_are_unique_and_class_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for f in Feature::ALL {
            assert!(seen.insert(f.code()), "duplicate code {}", f.code());
            let prefix = match f.class() {
                FeatureClass::Translation => 'T',
                FeatureClass::Transformation => 'X',
                FeatureClass::Emulation => 'E',
            };
            assert!(f.code().starts_with(prefix), "{f:?}");
        }
    }

    #[test]
    fn feature_set_operations() {
        let mut s = FeatureSet::new();
        assert!(s.is_empty());
        s.insert(Feature::Qualify);
        s.insert(Feature::MergeStatement);
        s.insert(Feature::Qualify); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(Feature::Qualify));
        assert!(!s.contains(Feature::ModOperator));
        assert!(s.has_class(FeatureClass::Transformation));
        assert!(s.has_class(FeatureClass::Emulation));
        assert!(!s.has_class(FeatureClass::Translation));
        let collected: Vec<Feature> = s.iter().collect();
        assert_eq!(collected, vec![Feature::Qualify, Feature::MergeStatement]);
    }

    #[test]
    fn union_merges() {
        let mut a = FeatureSet::new();
        a.insert(Feature::ModOperator);
        let mut b = FeatureSet::new();
        b.insert(Feature::Qualify);
        a.union(&b);
        assert_eq!(a.len(), 2);
    }
}
