//! Runtime values with SQL semantics.
//!
//! [`Datum`] is the single value representation used by the engine's
//! evaluator, the TDF wire format and the result converter. It provides SQL
//! three-valued comparison, numeric coercion along the
//! `INTEGER → DECIMAL → DOUBLE` lattice, exact fixed-point decimals and the
//! proleptic-Gregorian date arithmetic that the Teradata date/integer
//! rewrites depend on.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::types::SqlType;
use crate::ValueError;

/// Exact fixed-point decimal: `mantissa * 10^-scale`.
///
/// Used for all `DECIMAL(p,s)` arithmetic (TPC-H prices and discounts must
/// not accumulate floating-point error). 128-bit mantissa covers precision
/// up to 38 digits as in most warehouses.
#[derive(Debug, Clone, Copy)]
pub struct Decimal {
    pub mantissa: i128,
    pub scale: u8,
}

impl Decimal {
    pub fn new(mantissa: i128, scale: u8) -> Self {
        Decimal { mantissa, scale }
    }

    pub fn from_int(v: i64) -> Self {
        Decimal { mantissa: v as i128, scale: 0 }
    }

    /// Parse a decimal literal such as `-12.345`.
    pub fn parse(s: &str) -> Result<Self, ValueError> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(ValueError(format!("invalid decimal literal {s:?}")));
        }
        let mut mantissa: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ValueError(format!("invalid decimal literal {s:?}")))?;
            mantissa = mantissa
                .checked_mul(10)
                .and_then(|m| m.checked_add(d as i128))
                .ok_or_else(|| ValueError(format!("decimal literal overflow {s:?}")))?;
        }
        if frac_part.len() > 38 {
            return Err(ValueError(format!("decimal scale too large in {s:?}")));
        }
        Ok(Decimal {
            mantissa: if neg { -mantissa } else { mantissa },
            scale: frac_part.len() as u8,
        })
    }

    /// Rescale to exactly `scale` digits after the point (rounding half away
    /// from zero when reducing scale).
    pub fn rescale(&self, scale: u8) -> Decimal {
        match scale.cmp(&self.scale) {
            Ordering::Equal => *self,
            Ordering::Greater => {
                let factor = 10i128.pow((scale - self.scale) as u32);
                Decimal { mantissa: self.mantissa * factor, scale }
            }
            Ordering::Less => {
                let factor = 10i128.pow((self.scale - scale) as u32);
                let half = factor / 2;
                let adjust = if self.mantissa >= 0 { half } else { -half };
                Decimal { mantissa: (self.mantissa + adjust) / factor, scale }
            }
        }
    }

    /// Strip trailing zero fraction digits; canonical form for hashing.
    pub fn normalize(&self) -> Decimal {
        let mut m = self.mantissa;
        let mut s = self.scale;
        while s > 0 && m % 10 == 0 {
            m /= 10;
            s -= 1;
        }
        Decimal { mantissa: m, scale: s }
    }

    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }

    /// Truncate toward zero to an integer.
    pub fn to_i64(&self) -> i64 {
        (self.mantissa / 10i128.pow(self.scale as u32)) as i64
    }

    fn align(a: &Decimal, b: &Decimal) -> (i128, i128, u8) {
        let scale = a.scale.max(b.scale);
        (a.rescale(scale).mantissa, b.rescale(scale).mantissa, scale)
    }

    pub fn add(&self, other: &Decimal) -> Decimal {
        let (a, b, s) = Self::align(self, other);
        Decimal { mantissa: a + b, scale: s }
    }

    pub fn sub(&self, other: &Decimal) -> Decimal {
        let (a, b, s) = Self::align(self, other);
        Decimal { mantissa: a - b, scale: s }
    }

    pub fn mul(&self, other: &Decimal) -> Decimal {
        let scale = self.scale + other.scale;
        let d = Decimal { mantissa: self.mantissa * other.mantissa, scale };
        // Keep scales bounded so repeated multiplication cannot overflow.
        if scale > 12 { d.rescale(12) } else { d }
    }

    pub fn div(&self, other: &Decimal) -> Result<Decimal, ValueError> {
        if other.mantissa == 0 {
            return Err(ValueError("division by zero".into()));
        }
        // Compute at 6 extra digits of scale, standard warehouse practice.
        let target = (self.scale.max(other.scale) + 6).min(30);
        let num = self.mantissa * 10i128.pow((target + other.scale - self.scale) as u32);
        Ok(Decimal { mantissa: num / other.mantissa, scale: target })
    }

    pub fn neg(&self) -> Decimal {
        Decimal { mantissa: -self.mantissa, scale: self.scale }
    }

    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    pub fn cmp_decimal(&self, other: &Decimal) -> Ordering {
        let (a, b, _) = Self::align(self, other);
        a.cmp(&b)
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_decimal(other) == Ordering::Equal
    }
}
impl Eq for Decimal {}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let neg = self.mantissa < 0;
        let abs = self.mantissa.unsigned_abs();
        let factor = 10u128.pow(self.scale as u32);
        let int = abs / factor;
        let frac = abs % factor;
        write!(
            f,
            "{}{}.{:0width$}",
            if neg { "-" } else { "" },
            int,
            frac,
            width = self.scale as usize
        )
    }
}

/// Year-month + day interval value (`INTERVAL '3' MONTH`, `INTERVAL '7' DAY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    pub months: i32,
    pub days: i32,
}

impl Interval {
    pub fn months(n: i32) -> Self {
        Interval { months: n, days: 0 }
    }
    pub fn days(n: i32) -> Self {
        Interval { months: 0, days: n }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.months, self.days) {
            (m, 0) => write!(f, "INTERVAL '{m}' MONTH"),
            (0, d) => write!(f, "INTERVAL '{d}' DAY"),
            (m, d) => write!(f, "INTERVAL '{m}' MONTH '{d}' DAY"),
        }
    }
}

// ---------------------------------------------------------------------------
// Civil date arithmetic (proleptic Gregorian), after Howard Hinnant's
// `days_from_civil` / `civil_from_days` algorithms.
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for the given civil date.
pub fn date_from_ymd(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m as i64) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil (year, month, day) for days since 1970-01-01.
pub fn ymd_from_date(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Add `n` calendar months, clamping the day-of-month (Teradata
/// `ADD_MONTHS` semantics: `ADD_MONTHS('2020-01-31', 1)` → `2020-02-29`).
pub fn add_months(days: i32, n: i32) -> i32 {
    let (y, m, d) = ymd_from_date(days);
    let total = y as i64 * 12 + (m as i64 - 1) + n as i64;
    let ny = total.div_euclid(12) as i32;
    let nm = total.rem_euclid(12) as u32 + 1;
    let nd = d.min(days_in_month(ny, nm));
    date_from_ymd(ny, nm, nd)
}

/// Teradata internal integer encoding of a date:
/// `(year - 1900) * 10000 + month * 100 + day` (paper §5, Example 2:
/// `1140101` encodes `2014-01-01`).
pub fn teradata_int_from_date(days: i32) -> i64 {
    let (y, m, d) = ymd_from_date(days);
    ((y as i64) - 1900) * 10_000 + (m as i64) * 100 + d as i64
}

/// Inverse of [`teradata_int_from_date`]; returns `None` for an encoding
/// that does not name a valid civil date.
pub fn date_from_teradata_int(v: i64) -> Option<i32> {
    let d = (v % 100) as u32;
    let m = ((v / 100) % 100) as u32;
    let y = (v / 10_000) as i32 + 1900;
    if m == 0 || m > 12 || d == 0 || d > days_in_month(y, m) {
        return None;
    }
    Some(date_from_ymd(y, m, d))
}

/// Parse `YYYY-MM-DD` or `YYYY/MM/DD`.
pub fn parse_date(s: &str) -> Result<i32, ValueError> {
    let parts: Vec<&str> = s.split(['-', '/']).collect();
    if parts.len() != 3 {
        return Err(ValueError(format!("invalid date literal {s:?}")));
    }
    let y: i32 = parts[0]
        .trim()
        .parse()
        .map_err(|_| ValueError(format!("invalid date literal {s:?}")))?;
    let m: u32 = parts[1]
        .trim()
        .parse()
        .map_err(|_| ValueError(format!("invalid date literal {s:?}")))?;
    let d: u32 = parts[2]
        .trim()
        .parse()
        .map_err(|_| ValueError(format!("invalid date literal {s:?}")))?;
    if m == 0 || m > 12 || d == 0 || d > days_in_month(y, m) {
        return Err(ValueError(format!("date out of range {s:?}")));
    }
    Ok(date_from_ymd(y, m, d))
}

/// Parse `YYYY-MM-DD[ HH:MM:SS[.ffffff]]` into microseconds since epoch.
pub fn parse_timestamp(s: &str) -> Result<i64, ValueError> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let days = parse_date(date_part)? as i64;
    let mut micros = days * 86_400_000_000;
    if let Some(t) = time_part {
        let mut it = t.split(':');
        let h: i64 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ValueError(format!("invalid timestamp {s:?}")))?;
        let m: i64 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ValueError(format!("invalid timestamp {s:?}")))?;
        let sec_str = it.next().unwrap_or("0");
        let (sec, frac) = match sec_str.split_once('.') {
            Some((sec, frac)) => {
                let mut f = frac.to_string();
                while f.len() < 6 {
                    f.push('0');
                }
                (
                    sec.parse::<i64>()
                        .map_err(|_| ValueError(format!("invalid timestamp {s:?}")))?,
                    f[..6]
                        .parse::<i64>()
                        .map_err(|_| ValueError(format!("invalid timestamp {s:?}")))?,
                )
            }
            None => (
                sec_str
                    .parse::<i64>()
                    .map_err(|_| ValueError(format!("invalid timestamp {s:?}")))?,
                0,
            ),
        };
        micros += ((h * 60 + m) * 60 + sec) * 1_000_000 + frac;
    }
    Ok(micros)
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = ymd_from_date(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Format microseconds-since-epoch as `YYYY-MM-DD HH:MM:SS[.ffffff]`.
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(86_400_000_000);
    let rem = micros.rem_euclid(86_400_000_000);
    let (y, m, d) = ymd_from_date(days as i32);
    let secs = rem / 1_000_000;
    let frac = rem % 1_000_000;
    let (h, mi, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
    if frac == 0 {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    } else {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}.{frac:06}")
    }
}

// ---------------------------------------------------------------------------
// Datum
// ---------------------------------------------------------------------------

/// A runtime SQL value.
///
/// Strings use `Arc<str>` so that row cloning during joins and conversion is
/// a reference-count bump rather than a heap copy (result conversion is
/// deliberately parallel, paper §4.6, so values must be `Send + Sync`).
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Dec(Decimal),
    Date(i32),
    Timestamp(i64),
    Str(Arc<str>),
    Interval(Interval),
}

impl Datum {
    pub fn str(s: impl AsRef<str>) -> Datum {
        Datum::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The natural type of this value.
    pub fn sql_type(&self) -> SqlType {
        match self {
            Datum::Null => SqlType::Unknown,
            Datum::Bool(_) => SqlType::Boolean,
            Datum::Int(_) => SqlType::Integer,
            Datum::Double(_) => SqlType::Double,
            Datum::Dec(d) => SqlType::Decimal { precision: 38, scale: d.scale },
            Datum::Date(_) => SqlType::Date,
            Datum::Timestamp(_) => SqlType::Timestamp,
            Datum::Str(_) => SqlType::Varchar(None),
            Datum::Interval(_) => SqlType::Interval,
        }
    }

    /// SQL comparison: `None` when either side is NULL or the pair is
    /// incomparable. Numerics compare across representations; `CHAR`
    /// blank-padding is normalized by trimming trailing spaces.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        use Datum::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Dec(b)) => Some(Decimal::from_int(*a).cmp_decimal(b)),
            (Dec(a), Int(b)) => Some(a.cmp_decimal(&Decimal::from_int(*b))),
            (Dec(a), Dec(b)) => Some(a.cmp_decimal(b)),
            (Dec(a), Double(b)) => a.to_f64().partial_cmp(b),
            (Double(a), Dec(b)) => a.partial_cmp(&b.to_f64()),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Date(a), Timestamp(b)) => {
                Some((*a as i64 * 86_400_000_000).cmp(b))
            }
            (Timestamp(a), Date(b)) => {
                Some(a.cmp(&(*b as i64 * 86_400_000_000)))
            }
            (Str(a), Str(b)) => {
                Some(a.trim_end_matches(' ').cmp(b.trim_end_matches(' ')))
            }
            (Interval(a), Interval(b)) => {
                Some((a.months * 30 + a.days).cmp(&(b.months * 30 + b.days)))
            }
            _ => None,
        }
    }

    /// SQL equality (three-valued collapses to `false` on NULL for use in
    /// join/group keys, which treat NULLs per the caller's policy).
    pub fn sql_eq(&self, other: &Datum) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    fn numeric_pair(&self, other: &Datum) -> Option<NumericPair> {
        use Datum::*;
        Some(match (self, other) {
            (Int(a), Int(b)) => NumericPair::Int(*a, *b),
            (Double(a), Double(b)) => NumericPair::Double(*a, *b),
            (Int(a), Double(b)) => NumericPair::Double(*a as f64, *b),
            (Double(a), Int(b)) => NumericPair::Double(*a, *b as f64),
            (Dec(a), Dec(b)) => NumericPair::Dec(*a, *b),
            (Int(a), Dec(b)) => NumericPair::Dec(Decimal::from_int(*a), *b),
            (Dec(a), Int(b)) => NumericPair::Dec(*a, Decimal::from_int(*b)),
            (Dec(a), Double(b)) => NumericPair::Double(a.to_f64(), *b),
            (Double(a), Dec(b)) => NumericPair::Double(*a, b.to_f64()),
            _ => return None,
        })
    }

    /// SQL `+`, with date/interval support (`DATE + n` adds days, matching
    /// Teradata date arithmetic before the DATEADD rewrite).
    pub fn add(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match (self, other) {
            (Date(d), Int(n)) | (Int(n), Date(d)) => {
                return Ok(Date(d + *n as i32));
            }
            (Date(d), Interval(iv)) | (Interval(iv), Date(d)) => {
                return Ok(Date(add_months(*d, iv.months) + iv.days));
            }
            (Timestamp(t), Interval(iv)) | (Interval(iv), Timestamp(t)) => {
                let days = t.div_euclid(86_400_000_000) as i32;
                let rem = t.rem_euclid(86_400_000_000);
                let nd = add_months(days, iv.months) + iv.days;
                return Ok(Timestamp(nd as i64 * 86_400_000_000 + rem));
            }
            (Interval(a), Interval(b)) => {
                return Ok(Interval(self::Interval {
                    months: a.months + b.months,
                    days: a.days + b.days,
                }));
            }
            _ => {}
        }
        match self.numeric_pair(other) {
            Some(NumericPair::Int(a, b)) => a
                .checked_add(b)
                .map(Int)
                .ok_or_else(|| ValueError("integer overflow in +".into())),
            Some(NumericPair::Double(a, b)) => Ok(Double(a + b)),
            Some(NumericPair::Dec(a, b)) => Ok(Dec(a.add(&b))),
            None => Err(ValueError(format!(
                "cannot add {} and {}",
                self.sql_type(),
                other.sql_type()
            ))),
        }
    }

    /// SQL `-`, with `DATE - DATE` returning days and `DATE - n` subtracting
    /// days.
    pub fn sub(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match (self, other) {
            (Date(a), Date(b)) => return Ok(Int((a - b) as i64)),
            (Date(d), Int(n)) => return Ok(Date(d - *n as i32)),
            (Date(d), Interval(iv)) => {
                return Ok(Date(add_months(*d, -iv.months) - iv.days));
            }
            (Timestamp(t), Interval(iv)) => {
                let days = t.div_euclid(86_400_000_000) as i32;
                let rem = t.rem_euclid(86_400_000_000);
                let nd = add_months(days, -iv.months) - iv.days;
                return Ok(Timestamp(nd as i64 * 86_400_000_000 + rem));
            }
            _ => {}
        }
        match self.numeric_pair(other) {
            Some(NumericPair::Int(a, b)) => a
                .checked_sub(b)
                .map(Int)
                .ok_or_else(|| ValueError("integer overflow in -".into())),
            Some(NumericPair::Double(a, b)) => Ok(Double(a - b)),
            Some(NumericPair::Dec(a, b)) => Ok(Dec(a.sub(&b))),
            None => Err(ValueError(format!(
                "cannot subtract {} from {}",
                other.sql_type(),
                self.sql_type()
            ))),
        }
    }

    pub fn mul(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match self.numeric_pair(other) {
            Some(NumericPair::Int(a, b)) => a
                .checked_mul(b)
                .map(Int)
                .ok_or_else(|| ValueError("integer overflow in *".into())),
            Some(NumericPair::Double(a, b)) => Ok(Double(a * b)),
            Some(NumericPair::Dec(a, b)) => Ok(Dec(a.mul(&b))),
            None => Err(ValueError(format!(
                "cannot multiply {} and {}",
                self.sql_type(),
                other.sql_type()
            ))),
        }
    }

    pub fn div(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match self.numeric_pair(other) {
            Some(NumericPair::Int(a, b)) => {
                if b == 0 {
                    Err(ValueError("division by zero".into()))
                } else {
                    Ok(Int(a / b))
                }
            }
            Some(NumericPair::Double(a, b)) => {
                if b == 0.0 {
                    Err(ValueError("division by zero".into()))
                } else {
                    Ok(Double(a / b))
                }
            }
            Some(NumericPair::Dec(a, b)) => a.div(&b).map(Dec),
            None => Err(ValueError(format!(
                "cannot divide {} by {}",
                self.sql_type(),
                other.sql_type()
            ))),
        }
    }

    pub fn rem(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        match self.numeric_pair(other) {
            Some(NumericPair::Int(a, b)) => {
                if b == 0 {
                    Err(ValueError("division by zero in MOD".into()))
                } else {
                    Ok(Int(a % b))
                }
            }
            Some(NumericPair::Double(a, b)) => Ok(Double(a % b)),
            Some(NumericPair::Dec(a, b)) => {
                let q = a.div(&b)?;
                let truncated = Decimal::from_int(q.to_i64());
                Ok(Dec(a.sub(&truncated.mul(&b))))
            }
            None => Err(ValueError(format!(
                "cannot apply MOD to {} and {}",
                self.sql_type(),
                other.sql_type()
            ))),
        }
    }

    pub fn pow(&self, other: &Datum) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        let base = self
            .to_f64()
            .ok_or_else(|| ValueError("non-numeric base in **".into()))?;
        let exp = other
            .to_f64()
            .ok_or_else(|| ValueError("non-numeric exponent in **".into()))?;
        Ok(Double(base.powf(exp)))
    }

    pub fn neg(&self) -> Result<Datum, ValueError> {
        use Datum::*;
        match self {
            Null => Ok(Null),
            Int(v) => Ok(Int(-v)),
            Double(v) => Ok(Double(-v)),
            Dec(d) => Ok(Dec(d.neg())),
            other => Err(ValueError(format!("cannot negate {}", other.sql_type()))),
        }
    }

    pub fn to_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(v) => Some(*v as f64),
            Datum::Double(v) => Some(*v),
            Datum::Dec(d) => Some(d.to_f64()),
            _ => None,
        }
    }

    pub fn to_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            Datum::Double(v) => Some(*v as i64),
            Datum::Dec(d) => Some(d.to_i64()),
            _ => None,
        }
    }

    /// SQL `CAST(self AS ty)`.
    pub fn cast_to(&self, ty: &SqlType) -> Result<Datum, ValueError> {
        use Datum::*;
        if self.is_null() {
            return Ok(Null);
        }
        let fail = || {
            ValueError(format!(
                "cannot cast {} value to {}",
                self.sql_type(),
                ty
            ))
        };
        Ok(match ty {
            SqlType::Boolean => match self {
                Bool(b) => Bool(*b),
                Int(v) => Bool(*v != 0),
                _ => return Err(fail()),
            },
            SqlType::Integer => match self {
                Int(v) => Int(*v),
                Double(v) => Int(*v as i64),
                Dec(d) => Int(d.to_i64()),
                Str(s) => Int(s.trim().parse().map_err(|_| fail())?),
                Date(d) => Int(teradata_int_from_date(*d)),
                _ => return Err(fail()),
            },
            SqlType::Double => match self {
                Int(v) => Double(*v as f64),
                Double(v) => Double(*v),
                Dec(d) => Double(d.to_f64()),
                Str(s) => Double(s.trim().parse().map_err(|_| fail())?),
                _ => return Err(fail()),
            },
            SqlType::Decimal { scale, .. } => match self {
                Int(v) => Dec(Decimal::from_int(*v).rescale(*scale)),
                Dec(d) => Dec(d.rescale(*scale)),
                Double(v) => {
                    let m = (v * 10f64.powi(*scale as i32)).round() as i128;
                    Dec(Decimal { mantissa: m, scale: *scale })
                }
                Str(s) => Dec(Decimal::parse(s)?.rescale(*scale)),
                _ => return Err(fail()),
            },
            SqlType::Date => match self {
                Date(d) => Date(*d),
                Timestamp(t) => Date(t.div_euclid(86_400_000_000) as i32),
                Str(s) => Date(parse_date(s)?),
                Int(v) => Date(date_from_teradata_int(*v).ok_or_else(fail)?),
                _ => return Err(fail()),
            },
            SqlType::Timestamp => match self {
                Timestamp(t) => Timestamp(*t),
                Date(d) => Timestamp(*d as i64 * 86_400_000_000),
                Str(s) => Timestamp(parse_timestamp(s)?),
                _ => return Err(fail()),
            },
            SqlType::Varchar(limit) => {
                let s = self.to_sql_string();
                match limit {
                    Some(n) if s.chars().count() > *n as usize => {
                        Datum::str(s.chars().take(*n as usize).collect::<String>())
                    }
                    _ => Datum::str(s),
                }
            }
            SqlType::Char(n) => {
                let mut s = self.to_sql_string();
                let len = s.chars().count();
                if len > *n as usize {
                    s = s.chars().take(*n as usize).collect();
                } else {
                    s.extend(std::iter::repeat_n(' ', *n as usize - len));
                }
                Datum::str(s)
            }
            SqlType::Interval => match self {
                Interval(iv) => Interval(*iv),
                _ => return Err(fail()),
            },
            SqlType::Period(_) | SqlType::Unknown => return Err(fail()),
        })
    }

    /// Render the value the way the engine prints it in result sets.
    pub fn to_sql_string(&self) -> String {
        match self {
            Datum::Null => "NULL".to_string(),
            Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Datum::Int(v) => v.to_string(),
            Datum::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Datum::Dec(d) => d.to_string(),
            Datum::Date(d) => format_date(*d),
            Datum::Timestamp(t) => format_timestamp(*t),
            Datum::Str(s) => s.to_string(),
            Datum::Interval(iv) => iv.to_string(),
        }
    }
}

enum NumericPair {
    Int(i64, i64),
    Double(f64, f64),
    Dec(Decimal, Decimal),
}

/// Structural equality used by containers (hash join / group-by keys).
///
/// Normalizes across numeric representations so that the derived hash (see
/// [`Datum::hash`]) agrees: `Int(1)`, `Dec(1.00)` hash and compare equal.
/// NULLs compare equal to each other here (SQL `GROUP BY` semantics place
/// all NULLs in one group); three-valued logic lives in [`Datum::sql_cmp`].
impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        use Datum::*;
        match (self, other) {
            (Null, Null) => true,
            (Null, _) | (_, Null) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}
impl Eq for Datum {}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        use Datum::*;
        match self {
            Null => state.write_u8(0),
            Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // All numerics hash through a canonical decimal/bits form so
            // that cross-representation equality implies equal hashes.
            Int(v) => {
                state.write_u8(2);
                Decimal::from_int(*v).normalize().mantissa.hash(state);
                0u8.hash(state);
            }
            Dec(d) => {
                let n = d.normalize();
                state.write_u8(2);
                n.mantissa.hash(state);
                n.scale.hash(state);
            }
            Double(v) => {
                // A double that holds an exact small integer hashes like one.
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    state.write_u8(2);
                    Decimal::from_int(*v as i64).normalize().mantissa.hash(state);
                    0u8.hash(state);
                } else {
                    state.write_u8(3);
                    v.to_bits().hash(state);
                }
            }
            Date(d) => {
                state.write_u8(4);
                d.hash(state);
            }
            Timestamp(t) => {
                state.write_u8(5);
                t.hash(state);
            }
            Str(s) => {
                state.write_u8(6);
                s.trim_end_matches(' ').hash(state);
            }
            Interval(iv) => {
                state.write_u8(7);
                iv.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_and_display() {
        let d = Decimal::parse("-12.345").unwrap();
        assert_eq!(d.mantissa, -12345);
        assert_eq!(d.scale, 3);
        assert_eq!(d.to_string(), "-12.345");
        assert_eq!(Decimal::parse("0.07").unwrap().to_string(), "0.07");
    }

    #[test]
    fn decimal_arithmetic_is_exact() {
        let a = Decimal::parse("0.1").unwrap();
        let b = Decimal::parse("0.2").unwrap();
        assert_eq!(a.add(&b), Decimal::parse("0.3").unwrap());
        let price = Decimal::parse("901.00").unwrap();
        let disc = Decimal::parse("0.05").unwrap();
        let one = Decimal::from_int(1);
        let extended = price.mul(&one.sub(&disc));
        assert_eq!(extended, Decimal::parse("855.95").unwrap());
    }

    #[test]
    fn decimal_div_rounds() {
        let a = Decimal::from_int(1);
        let b = Decimal::from_int(3);
        let q = a.div(&b).unwrap();
        assert_eq!(q.to_string(), "0.333333");
    }

    #[test]
    fn decimal_rescale_rounds_half_away() {
        assert_eq!(
            Decimal::parse("2.345").unwrap().rescale(2),
            Decimal::parse("2.35").unwrap()
        );
        assert_eq!(
            Decimal::parse("-2.345").unwrap().rescale(2),
            Decimal::parse("-2.35").unwrap()
        );
    }

    #[test]
    fn civil_date_round_trip() {
        for (y, m, d) in [(1970, 1, 1), (2014, 1, 1), (2000, 2, 29), (1900, 3, 1), (2026, 7, 6)] {
            let days = date_from_ymd(y, m, d);
            assert_eq!(ymd_from_date(days), (y, m, d));
        }
        assert_eq!(date_from_ymd(1970, 1, 1), 0);
    }

    #[test]
    fn teradata_date_encoding_matches_paper() {
        // Paper §5: "'1140101' is the integer representation of '2014-01-01'".
        let d = date_from_ymd(2014, 1, 1);
        assert_eq!(teradata_int_from_date(d), 1_140_101);
        assert_eq!(date_from_teradata_int(1_140_101), Some(d));
        assert_eq!(date_from_teradata_int(1_141_350), None); // month 13
    }

    #[test]
    fn add_months_clamps_day() {
        let jan31 = date_from_ymd(2020, 1, 31);
        assert_eq!(ymd_from_date(add_months(jan31, 1)), (2020, 2, 29));
        assert_eq!(ymd_from_date(add_months(jan31, 13)), (2021, 2, 28));
        assert_eq!(ymd_from_date(add_months(jan31, -2)), (2019, 11, 30));
    }

    #[test]
    fn sql_cmp_nulls_and_cross_type() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Dec(Decimal::parse("2.00").unwrap())),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn char_padding_ignored_in_comparison() {
        assert!(Datum::str("abc  ").sql_eq(&Datum::str("abc")));
    }

    #[test]
    fn hash_consistent_with_eq_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        fn h(d: &Datum) -> u64 {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        }
        let a = Datum::Int(5);
        let b = Datum::Dec(Decimal::parse("5.000").unwrap());
        let c = Datum::Double(5.0);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&a), h(&c));
    }

    #[test]
    fn date_arithmetic() {
        let d = Datum::Date(date_from_ymd(2014, 1, 1));
        let plus = d.add(&Datum::Int(31)).unwrap();
        assert_eq!(plus, Datum::Date(date_from_ymd(2014, 2, 1)));
        let diff = plus.sub(&d).unwrap();
        assert_eq!(diff, Datum::Int(31));
        let iv = Datum::Interval(Interval::months(3));
        assert_eq!(
            d.add(&iv).unwrap(),
            Datum::Date(date_from_ymd(2014, 4, 1))
        );
    }

    #[test]
    fn null_propagation_in_arithmetic() {
        assert!(Datum::Null.add(&Datum::Int(1)).unwrap().is_null());
        assert!(Datum::Int(1).mul(&Datum::Null).unwrap().is_null());
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(Datum::Int(1).div(&Datum::Int(0)).is_err());
        assert!(Datum::Dec(Decimal::from_int(1))
            .div(&Datum::Dec(Decimal::from_int(0)))
            .is_err());
    }

    #[test]
    fn cast_string_to_date_and_back() {
        let d = Datum::str("2014-01-01").cast_to(&SqlType::Date).unwrap();
        assert_eq!(d, Datum::Date(date_from_ymd(2014, 1, 1)));
        assert_eq!(d.to_sql_string(), "2014-01-01");
    }

    #[test]
    fn cast_date_to_int_uses_teradata_encoding() {
        let d = Datum::Date(date_from_ymd(2014, 1, 1));
        assert_eq!(d.cast_to(&SqlType::Integer).unwrap(), Datum::Int(1_140_101));
    }

    #[test]
    fn cast_char_pads_and_truncates() {
        assert_eq!(
            Datum::str("ab").cast_to(&SqlType::Char(4)).unwrap(),
            Datum::Str(Arc::from("ab  "))
        );
        assert_eq!(
            Datum::str("abcdef").cast_to(&SqlType::Varchar(Some(3))).unwrap(),
            Datum::Str(Arc::from("abc"))
        );
    }

    #[test]
    fn timestamp_parse_format_round_trip() {
        let t = parse_timestamp("2014-01-01 12:34:56.789000").unwrap();
        assert_eq!(format_timestamp(t), "2014-01-01 12:34:56.789000");
        let t2 = parse_timestamp("2014-01-01").unwrap();
        assert_eq!(format_timestamp(t2), "2014-01-01 00:00:00");
    }
}
