//! Property-based tests for the value layer (decimals, dates, comparison
//! semantics) and the plan validator (generated trees stay clean,
//! mutated trees are flagged).

use proptest::prelude::*;

use hyperq_xtra::datum::{
    add_months, date_from_teradata_int, date_from_ymd, parse_date, teradata_int_from_date,
    ymd_from_date, Datum, Decimal,
};
use hyperq_xtra::expr::{CmpOp, ScalarExpr, SortExpr};
use hyperq_xtra::rel::RelExpr;
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;
use hyperq_xtra::validate::{validate_rel, Invariant, ValidateOptions};

proptest! {
    #[test]
    fn civil_date_round_trip(days in -700_000i32..1_000_000) {
        let (y, m, d) = ymd_from_date(days);
        prop_assert_eq!(date_from_ymd(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn teradata_int_encoding_round_trip(days in 0i32..80_000) {
        let enc = teradata_int_from_date(days);
        prop_assert_eq!(date_from_teradata_int(enc), Some(days));
    }

    #[test]
    fn teradata_encoding_is_order_preserving(a in 0i32..80_000, b in 0i32..80_000) {
        // The whole point of the paper's comp_date_to_int rewrite: the
        // integer encoding preserves date ordering.
        let (ea, eb) = (teradata_int_from_date(a), teradata_int_from_date(b));
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn date_display_parse_round_trip(days in 0i32..80_000) {
        let s = hyperq_xtra::datum::format_date(days);
        prop_assert_eq!(parse_date(&s).unwrap(), days);
    }

    #[test]
    fn add_months_inverts(days in 0i32..80_000, n in -240i32..240) {
        // Adding then subtracting months lands within clamp distance
        // (day-of-month clamping loses at most 3 days of information).
        let there = add_months(days, n);
        let back = add_months(there, -n);
        prop_assert!((days - back).abs() <= 3, "days={days} n={n} back={back}");
    }

    #[test]
    fn decimal_parse_display_round_trip(mantissa in -1_000_000_000i64..1_000_000_000, scale in 0u8..8) {
        let d = Decimal::new(mantissa as i128, scale);
        let s = d.to_string();
        let back = Decimal::parse(&s).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn decimal_add_commutes_and_associates(
        a in -1_000_000i64..1_000_000, sa in 0u8..6,
        b in -1_000_000i64..1_000_000, sb in 0u8..6,
        c in -1_000_000i64..1_000_000, sc in 0u8..6,
    ) {
        let (x, y, z) = (
            Decimal::new(a as i128, sa),
            Decimal::new(b as i128, sb),
            Decimal::new(c as i128, sc),
        );
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
    }

    #[test]
    fn decimal_cmp_matches_f64(a in -10_000_000i64..10_000_000, sa in 0u8..4,
                               b in -10_000_000i64..10_000_000, sb in 0u8..4) {
        let (x, y) = (Decimal::new(a as i128, sa), Decimal::new(b as i128, sb));
        let approx = x.to_f64().partial_cmp(&y.to_f64()).unwrap();
        // f64 is exact for these magnitudes, so orders must agree.
        prop_assert_eq!(x.cmp_decimal(&y), approx);
    }

    #[test]
    fn rescale_is_idempotent(m in -1_000_000i64..1_000_000, s in 0u8..6, target in 0u8..6) {
        let d = Decimal::new(m as i128, s);
        let once = d.rescale(target);
        prop_assert_eq!(once.rescale(target), once);
    }

    #[test]
    fn datum_hash_agrees_with_eq(a in -1000i64..1000, scale in 0u8..4) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(d: &Datum) -> u64 {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        }
        let int = Datum::Int(a);
        let dec = Datum::Dec(Decimal::new(
            a as i128 * 10i128.pow(scale as u32),
            scale,
        ));
        prop_assert_eq!(&int, &dec);
        prop_assert_eq!(h(&int), h(&dec));
    }

    #[test]
    fn sql_cmp_is_antisymmetric(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let (x, y) = (Datum::Int(a), Datum::Int(b));
        let fwd = x.sql_cmp(&y).unwrap();
        let rev = y.sql_cmp(&x).unwrap();
        prop_assert_eq!(fwd, rev.reverse());
    }

    #[test]
    fn cast_date_int_round_trip(days in 0i32..80_000) {
        let d = Datum::Date(days);
        let as_int = d.cast_to(&SqlType::Integer).unwrap();
        let back = as_int.cast_to(&SqlType::Date).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn arithmetic_null_propagation(a in -1000i64..1000) {
        let x = Datum::Int(a);
        prop_assert!(x.add(&Datum::Null).unwrap().is_null());
        prop_assert!(Datum::Null.mul(&x).unwrap().is_null());
        prop_assert!(x.sub(&Datum::Null).unwrap().is_null());
    }
}

// ---------------------------------------------------------------------------
// Plan validator properties: random operator stacks over a base table stay
// violation-free, and a dangling column reference is always flagged.

const BASE_COLS: [(&str, SqlType); 3] = [
    ("A", SqlType::Integer),
    ("B", SqlType::Integer),
    ("S", SqlType::Varchar(None)),
];

fn base_get() -> RelExpr {
    RelExpr::Get {
        table: "T".into(),
        alias: None,
        schema: Schema::new(
            BASE_COLS
                .iter()
                .map(|(name, ty)| Field {
                    qualifier: Some("T".into()),
                    name: (*name).to_string(),
                    ty: ty.clone(),
                    nullable: true,
                })
                .collect(),
        ),
    }
}

fn column(rel: &RelExpr, idx: usize) -> ScalarExpr {
    let schema = rel.schema();
    let f = &schema.fields[idx % schema.len()];
    ScalarExpr::Column {
        qualifier: f.qualifier.clone(),
        name: f.name.clone(),
        ty: f.ty.clone(),
    }
}

/// Stack one well-formed operator on `input`, driven by `pick`.
fn grow(input: RelExpr, pick: u8, n: i64) -> RelExpr {
    match pick % 5 {
        0 => {
            let pred = ScalarExpr::Cmp {
                op: CmpOp::Gt,
                left: Box::new(column(&input, 0)),
                right: Box::new(ScalarExpr::Literal(Datum::Int(n), SqlType::Integer)),
            };
            RelExpr::Select { input: Box::new(input), predicate: pred }
        }
        1 => {
            let exprs = (0..input.schema().len().max(1))
                .map(|i| (column(&input, i), format!("C{i}")))
                .collect();
            RelExpr::Project { input: Box::new(input), exprs }
        }
        2 => {
            let key = SortExpr::asc(column(&input, n.unsigned_abs() as usize));
            RelExpr::Sort { input: Box::new(input), keys: vec![key] }
        }
        3 => RelExpr::Limit {
            input: Box::new(input),
            limit: Some(n.unsigned_abs().max(1)),
            offset: 0,
            with_ties: false,
        },
        _ => RelExpr::Distinct { input: Box::new(input) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_operator_stacks_validate_clean(
        picks in proptest::collection::vec((0u8..5, -50i64..50), 0..8),
    ) {
        let mut rel = base_get();
        for (pick, n) in picks {
            rel = grow(rel, pick, n);
        }
        let report = validate_rel(&rel, &ValidateOptions::default());
        prop_assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dangling_reference_is_always_flagged(
        picks in proptest::collection::vec((0u8..5, -50i64..50), 0..6),
    ) {
        let mut rel = base_get();
        for (pick, n) in picks {
            rel = grow(rel, pick, n);
        }
        // Mutate: project a column name that resolves nowhere.
        let ghost = ScalarExpr::Column {
            qualifier: None,
            name: "NO_SUCH_COLUMN".into(),
            ty: SqlType::Integer,
        };
        let rel = RelExpr::Project {
            input: Box::new(rel),
            exprs: vec![(ghost, "G".into())],
        };
        let report = validate_rel(&rel, &ValidateOptions::default());
        prop_assert!(report.has(Invariant::UnresolvedColumn), "{report}");
    }
}
