//! The workload corpora must be valid Teradata-dialect SQL: every TPC-H
//! query and every generated customer query parses.

use hyperq_parser::{parse_one, Dialect};
use hyperq_workload::customer::{health, telco};
use hyperq_workload::tpch;

#[test]
fn all_tpch_queries_parse_as_teradata() {
    for (n, sql) in tpch::queries() {
        parse_one(sql, Dialect::Teradata)
            .unwrap_or_else(|e| panic!("Q{n} does not parse: {e}"));
    }
    assert_eq!(tpch::QUERY_COUNT, 22);
}

#[test]
fn tpch_queries_use_the_teradata_dialect_somewhere() {
    // The workload must actually exercise the frontend dialect: at least
    // the SEL shortcut everywhere, and dialect features that the ANSI
    // parser rejects in several queries.
    let mut rejected_by_ansi = 0;
    for (_, sql) in tpch::queries() {
        if parse_one(sql, Dialect::Ansi).is_err() {
            rejected_by_ansi += 1;
        }
    }
    assert_eq!(
        rejected_by_ansi, 22,
        "every query should be Teradata-flavored (SEL keyword at minimum)"
    );
}

#[test]
fn customer_workload_queries_parse() {
    for w in [health(0.05), telco(0.02)] {
        for sql in &w.hyperq_setup {
            parse_one(sql, Dialect::Teradata)
                .unwrap_or_else(|e| panic!("setup does not parse: {sql}: {e}"));
        }
        for sql in &w.distinct {
            parse_one(sql, Dialect::Teradata)
                .unwrap_or_else(|e| panic!("query does not parse: {sql}: {e}"));
        }
    }
}

#[test]
fn scaled_workloads_preserve_shares() {
    // The class shares must be stable across corpus scales (the repro runs
    // at 1.0, tests at small scales).
    for scale in [0.05, 0.2] {
        let w = health(scale);
        let d = w.distinct.len() as f64;
        let merges = w.distinct.iter().filter(|q| q.starts_with("MERGE")).count();
        assert!(merges >= 1);
        let qualifies = w.distinct.iter().filter(|q| q.contains("QUALIFY")).count();
        let share = qualifies as f64 / d;
        assert!(share > 0.05 && share < 0.15, "QUALIFY share {share} at {scale}");
    }
}
