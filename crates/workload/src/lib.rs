//! # hyperq-workload — workload substrates for the evaluation
//!
//! Two workload families, matching the paper's §7:
//!
//! * [`tpch`] — the TPC-H schema, a deterministic data generator, and the
//!   22 benchmark queries written in the **Teradata dialect** (the paper
//!   submits them "using Teradata's bteq client … through Hyper-Q", §7.2);
//! * [`customer`] — synthetic re-creations of the two customer workloads of
//!   Table 1 (Health: 39,731 queries / 3,778 distinct; Telco: 192,753 /
//!   10,446), with the 27 tracked features injected at per-class
//!   frequencies calibrated to the published Figure 8 statistics.
//!
//! Both generators are fully deterministic given a seed: the corpus itself
//! is synthetic (the real customer workloads are proprietary), but the
//! *measurement* pipeline that consumes it — Hyper-Q's instrumented rewrite
//! engine — is the real one.

#![forbid(unsafe_code)]

pub mod customer;
pub mod tpch;
