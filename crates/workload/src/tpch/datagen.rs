//! Deterministic TPC-H data generator.
//!
//! Produces the standard row-count ratios (`LINEITEM` ≈ 6,000,000 × SF) at
//! small scale factors with value distributions close enough to dbgen for
//! every query predicate to be selective in the intended way (brands,
//! containers, segments, date ranges, comment patterns for Q13/Q16,
//! country codes for Q22).

use hyperq_xtra::datum::{date_from_ymd, Datum, Decimal};
use hyperq_xtra::Row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generated rows for all eight TPC-H tables.
pub struct TpchData {
    pub region: Vec<Row>,
    pub nation: Vec<Row>,
    pub supplier: Vec<Row>,
    pub part: Vec<Row>,
    pub partsupp: Vec<Row>,
    pub customer: Vec<Row>,
    pub orders: Vec<Row>,
    pub lineitem: Vec<Row>,
}

impl TpchData {
    /// (table name, rows) pairs in load order.
    pub fn tables(self) -> Vec<(&'static str, Vec<Row>)> {
        vec![
            ("REGION", self.region),
            ("NATION", self.nation),
            ("SUPPLIER", self.supplier),
            ("PART", self.part),
            ("PARTSUPP", self.partsupp),
            ("CUSTOMER", self.customer),
            ("ORDERS", self.orders),
            ("LINEITEM", self.lineitem),
        ]
    }

    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.part.len()
            + self.partsupp.len()
            + self.customer.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYL1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_SYL2: [&str; 8] =
    ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const NAME_WORDS: [&str; 12] = [
    "almond", "antique", "aquamarine", "azure", "beige", "blanched", "blue", "blush",
    "brown", "burlywood", "chartreuse", "chiffon",
];

fn dec(cents: i128) -> Datum {
    Datum::Dec(Decimal::new(cents, 2))
}

fn s(v: impl AsRef<str>) -> Datum {
    Datum::str(v)
}

/// Generate all tables at the given scale factor (1.0 = standard TPC-H
/// sizes; use 0.01 or smaller for the in-memory substrate).
pub fn generate(scale: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_supplier = ((10_000.0 * scale) as usize).max(10);
    let n_part = ((200_000.0 * scale) as usize).max(40);
    let n_customer = ((150_000.0 * scale) as usize).max(30);
    let n_orders = ((1_500_000.0 * scale) as usize).max(100);

    let region: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Datum::Int(i as i64),
                s(name),
                s(format!("comment on region {name}")),
            ]
        })
        .collect();

    let nation: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Datum::Int(i as i64),
                s(name),
                Datum::Int(*region),
                s(format!("nation {name} commentary")),
            ]
        })
        .collect();

    let supplier: Vec<Row> = (1..=n_supplier)
        .map(|k| {
            let nationkey = rng.gen_range(0..25) as i64;
            // ~1% of suppliers carry the Q16 complaints pattern.
            let comment = if rng.gen_bool(0.01) {
                "wake Customer slyly Complaints sleep".to_string()
            } else {
                format!("supplier comment {k}")
            };
            vec![
                Datum::Int(k as i64),
                s(format!("Supplier#{k:09}")),
                s(format!("address {k}")),
                Datum::Int(nationkey),
                s(format!("{:02}-{:03}-{:03}-{:04}", nationkey + 10, k % 999, k % 997, k % 9973)),
                dec(rng.gen_range(-99_999..999_999)),
                s(comment),
            ]
        })
        .collect();

    let part: Vec<Row> = (1..=n_part)
        .map(|k| {
            let brand_m = rng.gen_range(1..=5);
            let brand_n = rng.gen_range(1..=5);
            let ty = format!(
                "{} {} {}",
                TYPE_SYL1[rng.gen_range(0..TYPE_SYL1.len())],
                TYPE_SYL2[rng.gen_range(0..TYPE_SYL2.len())],
                TYPE_SYL3[rng.gen_range(0..TYPE_SYL3.len())]
            );
            let container = format!(
                "{} {}",
                CONTAINER_SYL1[rng.gen_range(0..CONTAINER_SYL1.len())],
                CONTAINER_SYL2[rng.gen_range(0..CONTAINER_SYL2.len())]
            );
            let name = format!(
                "{} {} {}",
                NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
                NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
                NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())]
            );
            vec![
                Datum::Int(k as i64),
                s(name),
                s(format!("Manufacturer#{brand_m}")),
                s(format!("Brand#{brand_m}{brand_n}")),
                s(ty),
                Datum::Int(rng.gen_range(1..=50)),
                s(container),
                dec(90_000 + (k as i128 % 20_000) * 10),
                s(format!("part note {k}")),
            ]
        })
        .collect();

    let partsupp: Vec<Row> = (1..=n_part)
        .flat_map(|p| {
            let mut rows = Vec::with_capacity(4);
            for i in 0..4u64 {
                let suppkey = ((p as u64 + i * (n_supplier as u64 / 4 + 1)) % n_supplier as u64) + 1;
                rows.push(vec![
                    Datum::Int(p as i64),
                    Datum::Int(suppkey as i64),
                    Datum::Int(((p as u64 * 7 + i * 13) % 9999 + 1) as i64),
                    dec(((p as i128 * 31 + i as i128 * 17) % 100_000) + 100),
                    s(format!("partsupp {p}/{suppkey}")),
                ]);
            }
            rows
        })
        .collect();

    let customer: Vec<Row> = (1..=n_customer)
        .map(|k| {
            let nationkey = rng.gen_range(0..25) as i64;
            vec![
                Datum::Int(k as i64),
                s(format!("Customer#{k:09}")),
                s(format!("cust address {k}")),
                Datum::Int(nationkey),
                // Country code = nationkey + 10 (Q22 depends on this).
                s(format!("{:02}-{:03}-{:03}-{:04}", nationkey + 10, k % 999, k % 997, k % 9973)),
                dec(rng.gen_range(-99_999..999_999)),
                s(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                s(format!("customer note {k}")),
            ]
        })
        .collect();

    let epoch_1992 = date_from_ymd(1992, 1, 1);
    let mut orders: Vec<Row> = Vec::with_capacity(n_orders);
    let mut lineitem: Vec<Row> = Vec::new();
    for k in 1..=n_orders {
        let orderkey = k as i64;
        let custkey = rng.gen_range(1..=n_customer) as i64;
        let orderdate = epoch_1992 + rng.gen_range(0..2406); // 1992-01-01 .. 1998-08-02
        let n_lines = rng.gen_range(1..=7);
        let mut total: i128 = 0;
        let mut any_open = false;
        for line in 1..=n_lines {
            let partkey = rng.gen_range(1..=n_part) as i64;
            let suppkey =
                ((partkey as u64 + (line as u64 % 4) * (n_supplier as u64 / 4 + 1))
                    % n_supplier as u64) as i64
                    + 1;
            let quantity = rng.gen_range(1..=50) as i128;
            let price_per = 90_000 + (partkey as i128 % 20_000) * 10;
            let extended = quantity * price_per / 100;
            let discount = rng.gen_range(0..=10) as i128; // 0.00 .. 0.10
            let tax = rng.gen_range(0..=8) as i128;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let cutoff = date_from_ymd(1995, 6, 17);
            let (returnflag, linestatus) = if shipdate > cutoff {
                any_open = true;
                ("N", "O")
            } else if rng.gen_bool(0.5) {
                ("R", "F")
            } else {
                ("A", "F")
            };
            total += extended;
            lineitem.push(vec![
                Datum::Int(orderkey),
                Datum::Int(partkey),
                Datum::Int(suppkey),
                Datum::Int(line as i64),
                dec(quantity * 100),
                dec(extended),
                dec(discount),
                dec(tax),
                s(returnflag),
                s(linestatus),
                Datum::Date(shipdate),
                Datum::Date(commitdate),
                Datum::Date(receiptdate),
                s(INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())]),
                s(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
                s(format!("line {orderkey}/{line}")),
            ]);
        }
        // ~1% of orders carry the Q13 "special requests" pattern.
        let comment = if rng.gen_bool(0.01) {
            format!("handle special requests for order {k}")
        } else {
            format!("order note {k}")
        };
        orders.push(vec![
            Datum::Int(orderkey),
            Datum::Int(custkey),
            s(if any_open { "O" } else { "F" }),
            dec(total),
            Datum::Date(orderdate),
            s(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            s(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Datum::Int(0),
            s(comment),
        ]);
    }

    TpchData { region, nation, supplier, part, partsupp, customer, orders, lineitem }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[0], b.lineitem[0]);
        assert_eq!(a.orders.last(), b.orders.last());
    }

    #[test]
    fn ratios_roughly_standard() {
        let d = generate(0.01, 1);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.supplier.len(), 100);
        assert_eq!(d.part.len(), 2000);
        assert_eq!(d.partsupp.len(), 8000);
        assert_eq!(d.customer.len(), 1500);
        assert_eq!(d.orders.len(), 15000);
        let avg_lines = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!((1.0..=7.0).contains(&avg_lines));
    }

    #[test]
    fn q22_country_codes_present() {
        let d = generate(0.001, 7);
        // Phone numbers start with nationkey+10, i.e. 10..34.
        for row in d.customer.iter().take(20) {
            let phone = row[4].to_sql_string();
            let code: i64 = phone[..2].parse().unwrap();
            assert!((10..=34).contains(&code), "{phone}");
        }
    }

    #[test]
    fn lineitem_dates_consistent() {
        let d = generate(0.001, 9);
        for row in d.lineitem.iter().take(100) {
            let Datum::Date(ship) = row[10] else {
                panic!();
            };
            let Datum::Date(receipt) = row[12] else {
                panic!();
            };
            assert!(receipt > ship);
        }
    }
}
