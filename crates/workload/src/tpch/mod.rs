//! TPC-H substrate: schema, deterministic data generator, and the 22
//! queries in the Teradata frontend dialect.

mod datagen;
mod queries;
mod schema;

pub use datagen::{generate, TpchData};
pub use queries::{queries, query, QUERY_COUNT};
pub use schema::{ddl, TABLE_NAMES};
