//! Synthetic customer workloads (Table 1 / Figure 8 substrate).
//!
//! The real workloads — a health-sector customer with 39,731 queries (3,778
//! distinct) and a telco customer with 192,753 queries (10,446 distinct) —
//! are proprietary. These generators synthesize corpora with the published
//! marginals: total/distinct counts (Table 1), which tracked features occur
//! at all (Figure 8a), and what share of distinct queries each rewrite
//! class touches (Figure 8b). The *measurement* is performed by Hyper-Q's
//! real instrumentation; nothing here hard-codes the outputs.

mod generator;

pub use generator::{health, telco, CustomerWorkload, QueryClass, WorkloadProfile};
