//! Workload synthesis calibrated to the paper's Table 1 and Figure 8.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Published statistics of one customer workload (Table 1) plus the
/// Figure 8b calibration targets used for *generation*. Measurement always
/// happens downstream through Hyper-Q's instrumentation.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    pub name: &'static str,
    pub sector: &'static str,
    pub total_queries: u64,
    pub distinct_queries: u64,
    /// Fraction of distinct queries with ≥1 translation-class feature.
    pub translation_share: f64,
    pub transformation_share: f64,
    pub emulation_share: f64,
}

/// Which rewrite class a distinct query was drawn from during synthesis
/// (Figure 8b's categories). `Plain` queries use only standard SQL and
/// should exercise no tracked feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    Translation,
    Transformation,
    Emulation,
    Plain,
}

impl QueryClass {
    pub fn as_str(self) -> &'static str {
        match self {
            QueryClass::Translation => "translation",
            QueryClass::Transformation => "transformation",
            QueryClass::Emulation => "emulation",
            QueryClass::Plain => "plain",
        }
    }
}

/// A fully generated workload.
pub struct CustomerWorkload {
    pub profile: WorkloadProfile,
    /// DDL executed directly on the target (the content-transfer side
    /// channel, not part of the virtualized application).
    pub target_ddl: Vec<String>,
    /// Setup statements submitted through Hyper-Q (view, macro and global
    /// temporary table definitions the application created over time).
    pub hyperq_setup: Vec<String>,
    /// The distinct application queries.
    pub distinct: Vec<String>,
    /// Per-distinct-query class tag, parallel to `distinct` — ground truth
    /// for validating downstream feature measurement (the Figure 8 analog
    /// report) against what the generator actually injected.
    pub classes: Vec<QueryClass>,
    /// Replay order: indices into `distinct`, `total_queries` long.
    pub sequence: Vec<u32>,
}

impl CustomerWorkload {
    /// Replay iterator over query texts.
    pub fn replay(&self) -> impl Iterator<Item = &str> {
        self.sequence.iter().map(|&i| self.distinct[i as usize].as_str())
    }

    /// Distinct-query count per class.
    pub fn class_counts(&self) -> [(QueryClass, usize); 4] {
        let mut counts = [
            (QueryClass::Translation, 0),
            (QueryClass::Transformation, 0),
            (QueryClass::Emulation, 0),
            (QueryClass::Plain, 0),
        ];
        for c in &self.classes {
            counts.iter_mut().find(|(k, _)| k == c).unwrap().1 += 1;
        }
        counts
    }
}

/// Class tags mirroring generation order: the distinct list is built
/// class-by-class (translation, transformation, emulation, then plain
/// filler), so tags follow from the per-class counts.
fn class_tags(
    d: usize,
    n_translation: usize,
    n_transformation: usize,
    n_emulation: usize,
) -> Vec<QueryClass> {
    let mut classes = Vec::with_capacity(d);
    classes.resize(n_translation, QueryClass::Translation);
    classes.resize(n_translation + n_transformation, QueryClass::Transformation);
    classes.resize(n_translation + n_transformation + n_emulation, QueryClass::Emulation);
    classes.resize(classes.len().max(d), QueryClass::Plain);
    classes.truncate(d);
    classes
}

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale) as u64).max(1)
}

/// Build the replay sequence: every distinct query at least once, the rest
/// of the volume skewed toward a hot set (real report workloads repeat a
/// small set of parameterized queries most).
fn build_sequence(distinct: usize, total: u64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq: Vec<u32> = (0..distinct as u32).collect();
    while (seq.len() as u64) < total {
        // 80% of repeats from the first 20% of queries.
        let hot = (distinct / 5).max(1);
        let idx = if rng.gen_bool(0.8) {
            rng.gen_range(0..hot)
        } else {
            rng.gen_range(0..distinct)
        };
        seq.push(idx as u32);
    }
    seq.truncate(total as usize);
    // Deterministic shuffle.
    for i in (1..seq.len()).rev() {
        let j = rng.gen_range(0..=i);
        seq.swap(i, j);
    }
    seq
}

// ---------------------------------------------------------------------------
// Workload 1: Health (paper: 39,731 total, 3,778 distinct; Figure 8:
// translation 55.6% of features / 1.4% of queries, transformation 77.8% /
// 33.6%, emulation 33.3% / 0.2%).
// ---------------------------------------------------------------------------

/// Generate the Health workload at the given scale (1.0 = published size).
pub fn health(scale: f64) -> CustomerWorkload {
    let profile = WorkloadProfile {
        name: "Workload 1",
        sector: "Health",
        total_queries: scaled(39_731, scale),
        distinct_queries: scaled(3_778, scale),
        translation_share: 0.014,
        transformation_share: 0.336,
        emulation_share: 0.002,
    };
    let target_ddl = vec![
        "CREATE TABLE PATIENTS (PATIENT_ID INTEGER NOT NULL, NAME VARCHAR(60), \
         BIRTH_DATE DATE, REGION_CODE INTEGER)"
            .to_string(),
        "CREATE TABLE CLAIMS (CLAIM_ID INTEGER NOT NULL, PATIENT_ID INTEGER, \
         PROVIDER_ID INTEGER, CLAIM_DATE DATE, AMOUNT DECIMAL(12,2), STATUS VARCHAR(16))"
            .to_string(),
        "CREATE TABLE PROVIDERS (PROVIDER_ID INTEGER NOT NULL, PNAME VARCHAR(60), \
         SPECIALTY VARCHAR(30))"
            .to_string(),
        "CREATE TABLE VISITS (VISIT_ID INTEGER NOT NULL, PATIENT_ID INTEGER, \
         VISIT_DATE DATE, COST DECIMAL(12,2))"
            .to_string(),
    ];
    let hyperq_setup = vec![
        "CREATE VIEW ACTIVE_CLAIMS AS SELECT CLAIM_ID, PATIENT_ID, AMOUNT, STATUS \
         FROM CLAIMS WHERE STATUS = 'OPEN'"
            .to_string(),
    ];

    let d = profile.distinct_queries as usize;
    let n_translation = ((d as f64) * profile.translation_share).round() as usize;
    let n_transformation = ((d as f64) * profile.transformation_share).round() as usize;
    let n_emulation = (((d as f64) * profile.emulation_share).round() as usize).max(3);

    let mut distinct: Vec<String> = Vec::with_capacity(d);

    // Translation-affected: 5 of the 9 tracked translation features.
    for i in 0..n_translation {
        distinct.push(match i % 5 {
            0 => format!("SEL COUNT(*) FROM CLAIMS WHERE CLAIM_ID = {}", 1000 + i),
            1 => format!(
                "SELECT COUNT(*) FROM PATIENTS WHERE CHARS(NAME) > {} AND PATIENT_ID <> {}",
                3 + i % 20,
                i
            ),
            2 => format!(
                "SELECT ZEROIFNULL(AMOUNT) FROM CLAIMS WHERE CLAIM_ID = {}",
                2000 + i
            ),
            3 => format!(
                "SELECT SUBSTR(NAME, 1, {}) FROM PATIENTS WHERE PATIENT_ID = {}",
                1 + i % 8,
                i
            ),
            _ => format!(
                "SELECT ADD_MONTHS(CLAIM_DATE, {}) FROM CLAIMS WHERE CLAIM_ID = {}",
                1 + i % 12,
                3000 + i
            ),
        });
    }

    // Transformation-affected: 7 of the 9 tracked transformation features.
    for i in 0..n_transformation {
        distinct.push(match i % 7 {
            0 => format!(
                "SELECT PROVIDER_ID, AMOUNT FROM CLAIMS WHERE CLAIM_ID > {} \
                 QUALIFY RANK() OVER (ORDER BY AMOUNT DESC) <= {}",
                i,
                1 + i % 25
            ),
            1 => format!(
                "SELECT PATIENTS.NAME FROM PATIENTS \
                 WHERE PATIENTS.PATIENT_ID = CLAIMS.PATIENT_ID AND CLAIMS.AMOUNT > {}",
                100 + i
            ),
            2 => format!(
                "SELECT AMOUNT AS BASE, BASE * 1.1 AS ADJUSTED FROM CLAIMS \
                 WHERE CLAIM_ID = {}",
                i
            ),
            3 => format!(
                "SELECT PROVIDER_ID, SUM(AMOUNT) FROM CLAIMS WHERE AMOUNT > {} \
                 GROUP BY 1 ORDER BY 2 DESC",
                i
            ),
            4 => format!(
                "SELECT COUNT(*) FROM CLAIMS WHERE CLAIM_DATE > {} AND CLAIM_ID <> {}",
                1_140_101 + (i % 28) as i64,
                i
            ),
            5 => format!(
                "SELECT CLAIM_DATE + {} FROM CLAIMS WHERE CLAIM_ID = {}",
                1 + i % 30,
                i
            ),
            _ => format!(
                "SELECT AMOUNT FROM CLAIMS WHERE PROVIDER_ID <> {} \
                 QUALIFY RANK(AMOUNT DESC) <= {}",
                i,
                1 + i % 10
            ),
        });
    }

    // Emulation-affected: 3 of the 9 tracked emulation features.
    for i in 0..n_emulation {
        distinct.push(match i % 3 {
            0 => format!(
                "MERGE INTO CLAIMS C USING VISITS V ON C.PATIENT_ID = V.PATIENT_ID \
                 AND C.CLAIM_ID = {} \
                 WHEN MATCHED THEN UPDATE SET STATUS = 'REVIEWED'",
                i
            ),
            1 => format!(
                "HELP TABLE {}",
                ["CLAIMS", "PATIENTS", "PROVIDERS", "VISITS"][(i / 3) % 4]
            ),
            _ => format!(
                "UPDATE ACTIVE_CLAIMS SET STATUS = 'PAID' WHERE CLAIM_ID = {}",
                5000 + i
            ),
        });
    }

    // Plain (standard SQL) queries fill the rest.
    let mut i = 0usize;
    while distinct.len() < d {
        distinct.push(match i % 5 {
            0 => format!(
                "SELECT STATUS, COUNT(*) FROM CLAIMS WHERE AMOUNT > {} GROUP BY STATUS",
                i * 10
            ),
            1 => format!(
                "SELECT P.NAME, C.AMOUNT FROM PATIENTS P \
                 INNER JOIN CLAIMS C ON P.PATIENT_ID = C.PATIENT_ID WHERE C.CLAIM_ID = {}",
                i
            ),
            2 => format!(
                "SELECT COUNT(*) FROM VISITS WHERE COST BETWEEN {} AND {}",
                i,
                i + 250
            ),
            3 => format!(
                "SELECT SPECIALTY, COUNT(*) FROM PROVIDERS \
                 WHERE PROVIDER_ID < {} GROUP BY SPECIALTY",
                10 + i
            ),
            _ => format!(
                "SELECT AVG(AMOUNT) FROM CLAIMS WHERE STATUS = 'OPEN' AND PROVIDER_ID = {}",
                i
            ),
        });
        i += 1;
    }
    distinct.truncate(d);

    let classes = class_tags(distinct.len(), n_translation, n_transformation, n_emulation);
    let sequence = build_sequence(distinct.len(), profile.total_queries, 0x48454C54);
    CustomerWorkload { profile, target_ddl, hyperq_setup, distinct, classes, sequence }
}

// ---------------------------------------------------------------------------
// Workload 2: Telco (paper: 192,753 total, 10,446 distinct; Figure 8:
// translation 22.2% of features / 0.2% of queries, transformation 66.7% /
// 4.0%, emulation 33.3% / 79.1% — "Customer 2 has selected to wrap a large
// portion of their business logic in macros … and queries simply call
// these macros with different parameters").
// ---------------------------------------------------------------------------

/// Generate the Telco workload at the given scale.
pub fn telco(scale: f64) -> CustomerWorkload {
    let profile = WorkloadProfile {
        name: "Workload 2",
        sector: "Telco",
        total_queries: scaled(192_753, scale),
        distinct_queries: scaled(10_446, scale),
        translation_share: 0.002,
        transformation_share: 0.040,
        emulation_share: 0.791,
    };
    let target_ddl = vec![
        "CREATE TABLE SUBSCRIBERS (SUB_ID INTEGER NOT NULL, SNAME VARCHAR(60), \
         PLAN_ID INTEGER, SIGNUP_DATE DATE, REGION INTEGER)"
            .to_string(),
        "CREATE TABLE CALLS (CALL_ID INTEGER NOT NULL, SUB_ID INTEGER, CALL_DATE DATE, \
         DURATION INTEGER, CHARGE DECIMAL(12,2))"
            .to_string(),
        "CREATE TABLE PLANS (PLAN_ID INTEGER NOT NULL, PLAN_NAME VARCHAR(30), \
         MONTHLY_FEE DECIMAL(10,2))"
            .to_string(),
        "CREATE TABLE INVOICES (INVOICE_ID INTEGER NOT NULL, SUB_ID INTEGER, \
         INVOICE_DATE DATE, TOTAL DECIMAL(12,2))"
            .to_string(),
        "CREATE TABLE REFERRALS (SUB_ID INTEGER NOT NULL, REFERRED_BY INTEGER)"
            .to_string(),
    ];
    let hyperq_setup = vec![
        "CREATE MACRO USAGE_REPORT (S INTEGER) AS ( \
           SELECT CALL_DATE, COUNT(*), SUM(CHARGE) FROM CALLS WHERE SUB_ID = :S \
           GROUP BY CALL_DATE; )"
            .to_string(),
        "CREATE MACRO BILLING_SUMMARY (S INTEGER, MIN_TOTAL INTEGER DEFAULT 0) AS ( \
           SELECT INVOICE_DATE, TOTAL FROM INVOICES \
           WHERE SUB_ID = :S AND TOTAL >= :MIN_TOTAL; )"
            .to_string(),
        "CREATE MACRO PLAN_AUDIT (P INTEGER) AS ( \
           SELECT S.SNAME, PL.PLAN_NAME FROM SUBSCRIBERS S \
           INNER JOIN PLANS PL ON S.PLAN_ID = PL.PLAN_ID WHERE PL.PLAN_ID = :P; )"
            .to_string(),
        "CREATE GLOBAL TEMPORARY TABLE STAGING_CALLS (SUB_ID INTEGER, TOTAL_CHARGE \
         DECIMAL(14,2))"
            .to_string(),
    ];

    let d = profile.distinct_queries as usize;
    let n_translation = (((d as f64) * profile.translation_share).round() as usize).max(2);
    let n_transformation = ((d as f64) * profile.transformation_share).round() as usize;
    let n_emulation = ((d as f64) * profile.emulation_share).round() as usize;

    let mut distinct: Vec<String> = Vec::with_capacity(d);

    // Translation: 2 of 9 features (SEL shortcut, INDEX function).
    for i in 0..n_translation {
        distinct.push(match i % 2 {
            0 => format!("SEL COUNT(*) FROM CALLS WHERE SUB_ID = {}", 100 + i),
            _ => format!(
                "SELECT COUNT(*) FROM SUBSCRIBERS WHERE INDEX(SNAME, 'a{}') > 0 \
                 AND SUB_ID <> {}",
                i % 9,
                i
            ),
        });
    }

    // Transformation: 6 of 9 features.
    for i in 0..n_transformation {
        distinct.push(match i % 6 {
            0 => format!(
                "SELECT SUB_ID, CHARGE FROM CALLS WHERE CALL_ID > {} \
                 QUALIFY RANK() OVER (PARTITION BY SUB_ID ORDER BY CHARGE DESC) <= {}",
                i,
                1 + i % 5
            ),
            1 => format!(
                "SELECT SUBSCRIBERS.SNAME FROM SUBSCRIBERS \
                 WHERE SUBSCRIBERS.SUB_ID = CALLS.SUB_ID AND CALLS.DURATION > {}",
                i
            ),
            2 => format!(
                "SELECT CHARGE AS BASE_CHARGE, BASE_CHARGE * 1.2 AS TAXED FROM CALLS \
                 WHERE CALL_ID = {}",
                i
            ),
            3 => format!(
                "SELECT REGION, COUNT(*) FROM SUBSCRIBERS WHERE SUB_ID > {} \
                 GROUP BY 1 ORDER BY 2 DESC",
                i
            ),
            4 => format!(
                "SELECT SIGNUP_DATE + {} FROM SUBSCRIBERS WHERE SUB_ID = {}",
                1 + i % 90,
                7 * i
            ),
            _ => format!(
                "SELECT CALL_ID FROM CALLS WHERE (DURATION, CHARGE) > ANY \
                 (SELECT DURATION, CHARGE FROM CALLS WHERE SUB_ID = {})",
                200 + i
            ),
        });
    }

    // Emulation: dominated by macro executions (E2), plus global temp
    // tables (E7) and recursive referral chains (E1).
    for i in 0..n_emulation {
        distinct.push(match i % 100 {
            97 => format!(
                "INSERT INTO STAGING_CALLS SELECT SUB_ID, SUM(CHARGE) FROM CALLS \
                 WHERE SUB_ID = {} GROUP BY SUB_ID",
                i
            ),
            98 => format!(
                "WITH RECURSIVE CHAIN (SUB_ID) AS ( \
                   SELECT SUB_ID FROM REFERRALS WHERE REFERRED_BY = {} \
                   UNION ALL \
                   SELECT R.SUB_ID FROM REFERRALS R, CHAIN \
                   WHERE R.REFERRED_BY = CHAIN.SUB_ID) \
                 SELECT COUNT(*) FROM CHAIN",
                i
            ),
            99 => format!("SELECT COUNT(*) FROM STAGING_CALLS WHERE SUB_ID < {i}"),
            k if k % 3 == 0 => format!("EXEC USAGE_REPORT({})", 1000 + i),
            k if k % 3 == 1 => {
                format!("EXEC BILLING_SUMMARY({}, MIN_TOTAL = {})", 2000 + i, i % 500)
            }
            _ => format!("EXEC PLAN_AUDIT({})", 1 + i),
        });
    }

    // Plain queries fill the rest.
    let mut i = 0usize;
    while distinct.len() < d {
        distinct.push(match i % 4 {
            0 => format!(
                "SELECT REGION, AVG(DURATION) FROM SUBSCRIBERS S \
                 INNER JOIN CALLS C ON S.SUB_ID = C.SUB_ID WHERE C.CHARGE > {} GROUP BY REGION",
                i
            ),
            1 => format!("SELECT COUNT(*) FROM INVOICES WHERE TOTAL > {}", i * 5),
            2 => format!(
                "SELECT PLAN_NAME, MONTHLY_FEE FROM PLANS WHERE PLAN_ID = {} \
                 AND PLAN_ID <> -{}",
                1 + i % 50,
                1 + i
            ),
            _ => format!(
                "SELECT SNAME FROM SUBSCRIBERS WHERE SIGNUP_DATE > DATE '199{}-0{}-01' \
                 AND SUB_ID <> {}",
                2 + i % 8,
                1 + i % 9,
                i
            ),
        });
        i += 1;
    }
    distinct.truncate(d);

    let classes = class_tags(distinct.len(), n_translation, n_transformation, n_emulation);
    let sequence = build_sequence(distinct.len(), profile.total_queries, 0x54454C43);
    CustomerWorkload { profile, target_ddl, hyperq_setup, distinct, classes, sequence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_published_sizes() {
        let h = health(1.0);
        assert_eq!(h.profile.total_queries, 39_731);
        assert_eq!(h.profile.distinct_queries, 3_778);
        assert_eq!(h.distinct.len(), 3_778);
        assert_eq!(h.sequence.len(), 39_731);
        let t = telco(1.0);
        assert_eq!(t.profile.total_queries, 192_753);
        assert_eq!(t.profile.distinct_queries, 10_446);
        assert_eq!(t.distinct.len(), 10_446);
        assert_eq!(t.sequence.len(), 192_753);
    }

    #[test]
    fn distinct_texts_are_actually_distinct() {
        let h = health(0.1);
        let set: std::collections::HashSet<&String> = h.distinct.iter().collect();
        assert_eq!(set.len(), h.distinct.len());
        let t = telco(0.05);
        let set: std::collections::HashSet<&String> = t.distinct.iter().collect();
        assert_eq!(set.len(), t.distinct.len());
    }

    #[test]
    fn sequence_covers_every_distinct_query() {
        let h = health(0.05);
        let mut seen = vec![false; h.distinct.len()];
        for &i in &h.sequence {
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn class_tags_parallel_distinct_and_match_shares() {
        for w in [health(0.2), telco(0.05)] {
            assert_eq!(w.classes.len(), w.distinct.len());
            let counts = w.class_counts();
            let d = w.distinct.len() as f64;
            let share = |class: QueryClass| {
                counts.iter().find(|(k, _)| *k == class).unwrap().1 as f64 / d
            };
            // Generated shares track the profile calibration targets
            // (exact up to rounding and the small-count floors).
            assert!(
                (share(QueryClass::Transformation) - w.profile.transformation_share).abs() < 0.01,
                "{}: transformation share off",
                w.profile.sector
            );
            assert!(
                (share(QueryClass::Emulation) - w.profile.emulation_share).abs() < 0.01
                    || counts.iter().find(|(k, _)| *k == QueryClass::Emulation).unwrap().1 <= 4,
                "{}: emulation share off",
                w.profile.sector
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = telco(0.02);
        let b = telco(0.02);
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.sequence, b.sequence);
    }
}
