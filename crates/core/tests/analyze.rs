//! Static-analysis layer tests: strict-mode gating, rule-audit
//! attribution, the serializer-boundary semi/anti join gate, and
//! property-based "generated queries never violate" coverage.

use std::sync::Arc;

use proptest::prelude::*;

use hyperq_core::binder::Binder;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::transform::{Phase, TransformRule, Transformer};
use hyperq_core::{AnalyzeMode, Analyzer, HyperQError, ObsContext};
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::catalog::{ColumnDef, MemoryCatalog, TableDef};
use hyperq_xtra::expr::ScalarExpr;
use hyperq_xtra::feature::FeatureSet;
use hyperq_xtra::rel::{JoinKind, Plan, RelExpr};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;

fn catalog() -> MemoryCatalog {
    MemoryCatalog::new()
        .with_table(TableDef::new(
            "T",
            vec![
                ColumnDef::new("A", SqlType::Integer, true),
                ColumnDef::new("B", SqlType::Integer, true),
                ColumnDef::new("D", SqlType::Date, true),
                ColumnDef::new("S", SqlType::Varchar(Some(20)), true),
            ],
        ))
        .with_table(TableDef::new(
            "U",
            vec![
                ColumnDef::new("A", SqlType::Integer, true),
                ColumnDef::new("X", SqlType::Integer, true),
            ],
        ))
}

fn bind(sql: &str) -> Plan {
    let cat: &'static MemoryCatalog = Box::leak(Box::new(catalog()));
    let parsed = parse_one(sql, Dialect::Teradata).unwrap();
    let mut binder = Binder::new(cat);
    binder.bind_statement(&parsed.stmt).unwrap()
}

fn analyzer(mode: AnalyzeMode) -> (Analyzer, Arc<ObsContext>) {
    let obs = ObsContext::new();
    (Analyzer::new(mode, &obs), obs)
}

/// Run a statement through the analyzed pipeline exactly as the cross
/// compiler does: bind-boundary check, audited transform, serializer-
/// boundary check, then the round-trip audit against the same catalog.
fn strict_pipeline(sql: &str) -> Result<(), HyperQError> {
    let (az, _obs) = analyzer(AnalyzeMode::Strict);
    let caps = TargetCapabilities::simwh();
    let transformer = Transformer::standard();
    let plan = bind(sql);
    az.check_plan(&plan, "bind")?;
    let mut fired = FeatureSet::new();
    let plan = az.transform(&transformer, plan, &caps, &mut fired)?;
    az.check_plan(&plan, "serializer")?;
    let out = hyperq_core::serialize::Serializer::new(&caps).serialize_plan(&plan)?;
    az.audit_roundtrip(&out, &plan, &catalog())
}

// ---------------------------------------------------------------------------
// Strict mode on well-formed statements

#[test]
fn representative_statements_pass_strict_analysis() {
    for sql in [
        "SEL A, B FROM T WHERE B > 0",
        "SEL T.A, U.X FROM T, U WHERE T.A = U.A",
        "SEL A, COUNT(*) FROM T GROUP BY A ORDER BY 2 DESC",
        "SEL A FROM T WHERE A IN (SEL A FROM U)",
        "SEL A, B FROM T QUALIFY ROW_NUMBER() OVER (PARTITION BY A ORDER BY B) = 1",
        "SEL TOP 5 WITH TIES A FROM T ORDER BY A",
        "SEL A FROM T WHERE D > DATE '2001-01-01' + 30",
        "SEL A, SUM(B) FROM T GROUP BY GROUPING SETS ((A), ())",
        "SEL A FROM T UNION ALL SEL X FROM U",
    ] {
        strict_pipeline(sql).unwrap_or_else(|e| panic!("{sql}\n  -> {e}"));
    }
}

// ---------------------------------------------------------------------------
// Deliberately broken rules: caught and attributed by name

/// Drops the last projection column — preserves well-formedness but
/// changes the plan's output schema, which the audit must flag.
struct DropLastColumn;

impl TransformRule for DropLastColumn {
    fn name(&self) -> &'static str {
        "test_drop_last_column"
    }
    fn phase(&self) -> Phase {
        Phase::Binding
    }
    fn rewrite_rel(&self, rel: RelExpr) -> (RelExpr, bool) {
        match rel {
            RelExpr::Project { input, mut exprs } if exprs.len() > 1 => {
                exprs.pop();
                (RelExpr::Project { input, exprs }, true)
            }
            other => (other, false),
        }
    }
}

/// Renames every reference to column `A` to a name that resolves nowhere —
/// the validator must report the dangling reference after the rule fires.
struct GhostColumn;

impl TransformRule for GhostColumn {
    fn name(&self) -> &'static str {
        "test_ghost_column"
    }
    fn phase(&self) -> Phase {
        Phase::Binding
    }
    fn rewrite_expr(&self, expr: ScalarExpr) -> (ScalarExpr, bool) {
        match expr {
            ScalarExpr::Column { qualifier, name, ty } if name == "A" => (
                ScalarExpr::Column { qualifier, name: "GHOST".into(), ty },
                true,
            ),
            other => (other, false),
        }
    }
}

fn audited(rule: Box<dyn TransformRule>, mode: AnalyzeMode) -> (Result<Plan, HyperQError>, Arc<ObsContext>) {
    let (az, obs) = analyzer(mode);
    let transformer = Transformer::with_rules(vec![rule]);
    let plan = bind("SEL A, B FROM T WHERE A > 0");
    let mut fired = FeatureSet::new();
    let out = az.transform(&transformer, plan, &TargetCapabilities::simwh(), &mut fired);
    (out, obs)
}

#[test]
fn schema_changing_rule_is_caught_and_attributed() {
    let (out, _) = audited(Box::new(DropLastColumn), AnalyzeMode::Strict);
    let err = out.unwrap_err().to_string();
    assert!(err.contains("test_drop_last_column"), "{err}");
    assert!(err.contains("output schema changed"), "{err}");
}

#[test]
fn invariant_breaking_rule_is_caught_and_attributed() {
    let (out, _) = audited(Box::new(GhostColumn), AnalyzeMode::Strict);
    let err = out.unwrap_err().to_string();
    assert!(err.contains("test_ghost_column"), "{err}");
    assert!(err.contains("unresolved_column"), "{err}");
}

#[test]
fn log_only_counts_rule_audit_failures_without_failing() {
    let (out, obs) = audited(Box::new(DropLastColumn), AnalyzeMode::LogOnly);
    out.unwrap();
    assert!(
        obs.metrics.counter_value(
            "hyperq_rule_audit_failures_total",
            &[("rule", "test_drop_last_column")],
        ) >= 1
    );
    assert!(
        obs.metrics.counter_value(
            "hyperq_validation_violations_total",
            &[("invariant", "rule_schema_drift")],
        ) >= 1
    );
}

#[test]
fn off_mode_skips_the_walks_entirely() {
    let (out, obs) = audited(Box::new(DropLastColumn), AnalyzeMode::Off);
    out.unwrap();
    assert_eq!(
        obs.metrics.counter_value(
            "hyperq_rule_audit_failures_total",
            &[("rule", "test_drop_last_column")],
        ),
        0
    );
}

// ---------------------------------------------------------------------------
// Serializer-boundary gate: engine-internal join kinds must not escape

fn semi_join_plan(kind: JoinKind) -> Plan {
    let get = |table: &str, cols: &[&str]| RelExpr::Get {
        table: table.to_string(),
        alias: None,
        schema: Schema::new(
            cols.iter()
                .map(|c| Field {
                    qualifier: Some(table.to_string()),
                    name: (*c).to_string(),
                    ty: SqlType::Integer,
                    nullable: true,
                })
                .collect(),
        ),
    };
    Plan::Query(RelExpr::Join {
        kind,
        left: Box::new(get("T", &["A", "B"])),
        right: Box::new(get("U", &["A", "X"])),
        condition: None,
    })
}

#[test]
fn semi_and_anti_joins_are_rejected_at_the_serializer_boundary() {
    let (az, obs) = analyzer(AnalyzeMode::Strict);
    for kind in [JoinKind::Semi, JoinKind::Anti] {
        let plan = semi_join_plan(kind);
        let err = az.check_plan(&plan, "serializer").unwrap_err().to_string();
        assert!(err.contains("internal_join"), "{err}");
        // Regression anchor: the serializer itself also refuses the plan,
        // so the validator gate fires strictly earlier on the same input.
        let caps = TargetCapabilities::simwh();
        let ser = hyperq_core::serialize::Serializer::new(&caps);
        assert!(ser.serialize_plan(&plan).is_err());
    }
    assert!(
        obs.metrics.counter_value(
            "hyperq_validation_violations_total",
            &[("invariant", "internal_join")],
        ) >= 2
    );
}

// ---------------------------------------------------------------------------
// Property: generated queries through bind -> transform -> validate are
// always clean in strict mode.

const COLS: [&str; 4] = ["A", "B", "D", "S"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_queries_never_violate(
        proj in proptest::collection::vec(0usize..4, 1..4),
        filter in 0u8..4,
        shape in 0u8..4,
        limit in 0u8..3,
        n in -100i64..100,
    ) {
        let mut sql = String::from("SEL ");
        let top = limit > 0 && matches!(shape, 0 | 1);
        if top {
            sql.push_str(&format!("TOP {limit} "));
        }
        match shape {
            // Plain projection over generated column picks.
            0 | 1 => {
                let cols: Vec<&str> = proj.iter().map(|&i| COLS[i]).collect();
                sql.push_str(&cols.join(", "));
            }
            // Grouped aggregate.
            2 => sql.push_str("A, COUNT(*) AS C, SUM(B) AS SB"),
            // Distinct projection.
            _ => sql.push_str("DISTINCT A, B"),
        }
        sql.push_str(" FROM T");
        match filter {
            0 => {}
            1 => sql.push_str(&format!(" WHERE A > {n}")),
            2 => sql.push_str(&format!(" WHERE B = {n} AND A <> 0")),
            _ => sql.push_str(" WHERE A IN (SEL A FROM U)"),
        }
        if shape == 2 {
            sql.push_str(" GROUP BY A ORDER BY 1");
        }
        if top {
            sql.push_str(" ORDER BY A");
        }
        let result = strict_pipeline(&sql);
        prop_assert!(result.is_ok(), "{sql}\n  -> {:?}", result.err());
    }
}
