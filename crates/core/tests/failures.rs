//! Fault injection: the pipeline's behavior when the target database
//! rejects or fails requests, and the exact SQL traffic it generates —
//! including the resilience layer (retry/backoff, deadlines, circuit
//! breaker, replay safety).

use std::sync::Arc;
use std::time::Duration;

use hyperq_core::backend::testing::{FaultInjectingBackend, FaultPlan, ScriptedBackend};
use hyperq_core::backend::{Backend, BackendError, BackendErrorKind, ExecResult};
use hyperq_core::resilience::{BreakerConfig, ResilienceConfig, ResilientBackend, RetryPolicy};
use hyperq_core::{HyperQ, HyperQBuilder, ObsContext};
use hyperq_xtra::catalog::{ColumnDef, TableDef};
use hyperq_xtra::types::SqlType;

fn sales_table() -> TableDef {
    TableDef::new(
        "SALES",
        vec![
            ColumnDef::new("STORE", SqlType::Integer, true),
            ColumnDef::new("AMOUNT", SqlType::Integer, true),
        ],
    )
}

#[test]
fn backend_error_propagates_with_message() {
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![sales_table()],
        responder: Box::new(|_| Err(BackendError::fatal("disk quota exceeded"))),
    };
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    let err = hq.run_one("SEL * FROM SALES").unwrap_err();
    assert!(err.to_string().contains("disk quota exceeded"), "{err}");
}

#[test]
fn translation_errors_do_not_reach_the_backend() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    // Bind error: unknown column.
    assert!(hq.run_one("SEL NOPE FROM SALES").is_err());
    // Parse error.
    assert!(hq.run_one("SELEKT 1").is_err());
    assert!(
        backend.sql_log().is_empty(),
        "failed translations must not generate target traffic: {:?}",
        backend.sql_log()
    );
}

#[test]
fn exactly_one_request_for_a_simple_query() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    assert_eq!(backend.sql_log().len(), 1);
}

#[test]
fn merge_generates_update_then_insert() {
    let backend = Arc::new(ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![
            sales_table(),
            TableDef::new(
                "FEED",
                vec![
                    ColumnDef::new("STORE", SqlType::Integer, true),
                    ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ],
            ),
        ],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    });
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    hq.run_one(
        "MERGE INTO SALES S USING FEED F ON S.STORE = F.STORE \
         WHEN MATCHED THEN UPDATE SET AMOUNT = F.AMOUNT \
         WHEN NOT MATCHED THEN INSERT (STORE, AMOUNT) VALUES (F.STORE, F.AMOUNT)",
    )
    .unwrap();
    let log = backend.sql_log();
    assert_eq!(log.len(), 2, "{log:?}");
    assert!(log[0].starts_with("UPDATE SALES"), "{}", log[0]);
    assert!(log[1].starts_with("INSERT INTO SALES"), "{}", log[1]);
    assert!(log[1].contains("NOT EXISTS"), "{}", log[1]);
}

#[test]
fn recursion_failure_mid_emulation_surfaces() {
    // The seed CTAS succeeds, the first recursive-step CTAS fails: the
    // error must surface rather than hang or corrupt state.
    let calls = Arc::new(parking_lot::Mutex::new(0usize));
    let calls2 = Arc::clone(&calls);
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![TableDef::new(
            "EMP",
            vec![
                ColumnDef::new("EMPNO", SqlType::Integer, true),
                ColumnDef::new("MGRNO", SqlType::Integer, true),
            ],
        )],
        responder: Box::new(move |_| {
            let mut n = calls2.lock();
            *n += 1;
            if *n >= 3 {
                Err(BackendError::fatal("temp space exhausted"))
            } else {
                Ok(ExecResult::affected(1))
            }
        }),
    };
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    let err = hq
        .run_one(
            "WITH RECURSIVE R (EMPNO, MGRNO) AS ( \
               SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 1 \
               UNION ALL SELECT E.EMPNO, E.MGRNO FROM EMP E, R WHERE R.EMPNO = E.MGRNO) \
             SELECT EMPNO FROM R",
        )
        .unwrap_err();
    assert!(err.to_string().contains("temp space exhausted"), "{err}");
}

#[test]
fn runaway_recursion_hits_the_step_limit() {
    // A backend that always reports progress: the emulation must stop at
    // its bound instead of spinning forever.
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![TableDef::new(
            "EMP",
            vec![ColumnDef::new("EMPNO", SqlType::Integer, true)],
        )],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    };
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    let err = hq
        .run_one(
            "WITH RECURSIVE R (EMPNO) AS ( \
               SELECT EMPNO FROM EMP UNION ALL SELECT R.EMPNO FROM EMP, R) \
             SELECT EMPNO FROM R",
        )
        .unwrap_err();
    assert!(err.to_string().contains("converge"), "{err}");
}

#[test]
fn unknown_macro_and_procedure_errors() {
    let backend = ScriptedBackend::acking(vec![]);
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    assert!(hq.run_one("EXEC NO_SUCH_MACRO(1)").unwrap_err().to_string().contains("NO_SUCH_MACRO"));
    assert!(hq.run_one("CALL NO_SUCH_PROC(1)").unwrap_err().to_string().contains("NO_SUCH_PROC"));
}

#[test]
fn duplicate_view_without_replace_is_error() {
    let backend = ScriptedBackend::acking(vec![sales_table()]);
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    hq.run_one("CREATE VIEW V AS SEL STORE FROM SALES").unwrap();
    assert!(hq.run_one("CREATE VIEW V AS SEL AMOUNT FROM SALES").is_err());
    // REPLACE VIEW succeeds.
    hq.run_one("REPLACE VIEW V AS SEL AMOUNT FROM SALES").unwrap();
}

#[test]
fn session_isolation_of_dtm_objects() {
    // Two sessions against the same backend: DTM objects (macros, views)
    // are per-session state, like Teradata volatile objects.
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut s1 = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    let mut s2 = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    s1.run_one("CREATE MACRO M AS (SEL STORE FROM SALES;)").unwrap();
    assert!(s1.run_one("EXEC M").is_ok());
    assert!(s2.run_one("EXEC M").is_err(), "macros are session-scoped DTM state");
}

#[test]
fn procedure_body_may_contain_emulated_statements() {
    // MERGE inside a procedure: the body router must emulate it.
    let backend = Arc::new(ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![
            sales_table(),
            TableDef::new(
                "FEED",
                vec![
                    ColumnDef::new("STORE", SqlType::Integer, true),
                    ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ],
            ),
        ],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    });
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    hq.run_one(
        "CREATE PROCEDURE SYNC (S INTEGER) BEGIN \
           MERGE INTO SALES T USING FEED F ON T.STORE = F.STORE AND T.STORE = :S \
           WHEN MATCHED THEN UPDATE SET AMOUNT = F.AMOUNT; \
         END",
    )
    .unwrap();
    let o = hq.run_one("CALL SYNC(3)").unwrap();
    assert!(o.features.contains(hyperq_xtra::feature::Feature::MergeStatement));
    let log = backend.sql_log();
    assert!(log.iter().any(|s| s.starts_with("UPDATE SALES")), "{log:?}");
}

// ---------------------------------------------------------------------------
// Resilience layer: retry/backoff, deadlines, breaker, replay safety
// ---------------------------------------------------------------------------

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        jitter: 0.5,
        seed: 7,
        deadline: None,
    }
}

/// A HyperQ session over Instrumented → Resilient → FaultInjecting →
/// Scripted, with an isolated obs context.
fn resilient_session(
    tables: Vec<TableDef>,
    plan: FaultPlan,
    retry: RetryPolicy,
    breaker: BreakerConfig,
) -> (HyperQ, Arc<FaultInjectingBackend>, Arc<ObsContext>) {
    let obs = ObsContext::new();
    let inner = Arc::new(ScriptedBackend::acking(tables));
    let fault = FaultInjectingBackend::wrap(inner as Arc<dyn Backend>, plan);
    let resilient = ResilientBackend::wrap(
        Arc::clone(&fault) as Arc<dyn Backend>,
        ResilienceConfig { retry, breaker },
        &obs,
    );
    let hq = HyperQBuilder::for_target(resilient as Arc<dyn Backend>, hyperq_core::targets::simwh()).obs(Arc::clone(&obs)).build();
    (hq, fault, obs)
}

#[test]
fn transient_failures_are_retried_transparently() {
    let (mut hq, fault, obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
        fast_retry(),
        BreakerConfig::default(),
    );
    hq.run_one("SEL STORE FROM SALES").unwrap();
    assert_eq!(fault.attempts(), 3, "2 transient failures + 1 success");
    assert_eq!(
        obs.metrics.counter_value("hyperq_backend_retries_total", &[("backend", "scripted")]),
        2
    );
}

#[test]
fn fatal_backend_errors_are_not_retried_by_the_pipeline() {
    let (mut hq, fault, _obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::always_fail(BackendErrorKind::Fatal),
        fast_retry(),
        BreakerConfig::default(),
    );
    let err = hq.run_one("SEL STORE FROM SALES").unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(fault.attempts(), 1);
}

#[test]
fn statements_inside_an_open_transaction_are_never_retried() {
    let (mut hq, fault, _obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient),
        fast_retry(),
        BreakerConfig::default(),
    );
    hq.run_one("BT").unwrap();
    assert!(hq.run_one("SEL STORE FROM SALES").is_err(), "single failure must surface");
    assert_eq!(fault.attempts(), 1, "in-transaction statements must not be replayed");

    // After ET the same failure mode is retried again.
    hq.run_one("ET").unwrap();
    fault.set_plan(FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient));
    hq.run_one("SEL STORE FROM SALES").unwrap();
}

#[test]
fn non_idempotent_dml_is_never_retried() {
    let (mut hq, fault, _obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient),
        fast_retry(),
        BreakerConfig::default(),
    );
    assert!(hq.run_one("INSERT INTO SALES (STORE, AMOUNT) VALUES (1, 2)").is_err());
    assert_eq!(fault.attempts(), 1, "INSERT must not be blindly replayed");
}

#[test]
fn deadline_caps_total_time_across_attempts() {
    let (mut hq, _fault, obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::always_fail(BackendErrorKind::Transient),
        RetryPolicy {
            max_attempts: 1_000,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(4),
            jitter: 0.0,
            seed: 1,
            deadline: Some(Duration::from_millis(15)),
        },
        BreakerConfig { failure_threshold: 10_000, ..Default::default() },
    );
    let err = hq.run_one("SEL STORE FROM SALES").unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_backend_deadline_exceeded_total", &[("backend", "scripted")]),
        1
    );
}

#[test]
fn breaker_opens_under_persistent_failure_and_fails_fast() {
    let (mut hq, fault, obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::always_fail(BackendErrorKind::ConnectionLost),
        RetryPolicy { max_attempts: 1, ..fast_retry() },
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(60),
            success_threshold: 1,
        },
    );
    for _ in 0..3 {
        assert!(hq.run_one("SEL STORE FROM SALES").is_err());
    }
    let reached = fault.attempts();
    let err = hq.run_one("SEL STORE FROM SALES").unwrap_err();
    assert!(err.to_string().contains("circuit breaker open"), "{err}");
    assert_eq!(fault.attempts(), reached, "open breaker must not reach the backend");
    assert_eq!(
        obs.metrics.counter_value(
            "hyperq_backend_breaker_transitions_total",
            &[("backend", "scripted"), ("to", "open")]
        ),
        1
    );
}

#[test]
fn breaker_recovers_through_half_open_probe() {
    let (mut hq, fault, obs) = resilient_session(
        vec![sales_table()],
        FaultPlan::always_fail(BackendErrorKind::ConnectionLost),
        RetryPolicy { max_attempts: 1, ..fast_retry() },
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(20),
            success_threshold: 1,
        },
    );
    for _ in 0..2 {
        assert!(hq.run_one("SEL STORE FROM SALES").is_err());
    }
    fault.set_plan(FaultPlan::none());
    std::thread::sleep(Duration::from_millis(30));
    hq.run_one("SEL STORE FROM SALES").unwrap();
    assert_eq!(
        obs.metrics.counter_value(
            "hyperq_backend_breaker_transitions_total",
            &[("backend", "scripted"), ("to", "half_open")]
        ),
        1
    );
    assert_eq!(
        obs.metrics.counter_value(
            "hyperq_backend_breaker_transitions_total",
            &[("backend", "scripted"), ("to", "closed")]
        ),
        1
    );
}

#[test]
fn failed_recursion_drops_its_temp_tables() {
    // The seed CTAS and the WT→TT copy succeed; the first recursive-step
    // CTAS fails fatally. The emulation must issue best-effort
    // DROP TABLE IF EXISTS for the tables it created.
    let calls = Arc::new(parking_lot::Mutex::new(0usize));
    let calls2 = Arc::clone(&calls);
    let backend = Arc::new(ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![TableDef::new(
            "EMP",
            vec![
                ColumnDef::new("EMPNO", SqlType::Integer, true),
                ColumnDef::new("MGRNO", SqlType::Integer, true),
            ],
        )],
        responder: Box::new(move |sql| {
            let mut n = calls2.lock();
            *n += 1;
            if *n == 3 {
                Err(BackendError::fatal("temp space exhausted"))
            } else if sql.starts_with("DROP") {
                Ok(ExecResult::ack())
            } else {
                Ok(ExecResult::affected(1))
            }
        }),
    });
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh()).build();
    hq.run_one(
        "WITH RECURSIVE R (EMPNO, MGRNO) AS ( \
           SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 1 \
           UNION ALL SELECT E.EMPNO, E.MGRNO FROM EMP E, R WHERE R.EMPNO = E.MGRNO) \
         SELECT EMPNO FROM R",
    )
    .unwrap_err();
    let log = backend.sql_log();
    let cleanups: Vec<&String> =
        log.iter().filter(|s| s.starts_with("DROP TABLE IF EXISTS")).collect();
    assert_eq!(cleanups.len(), 3, "WT + TT + failed-step TT must be cleaned up: {log:?}");
}

#[test]
fn create_view_in_macro_body_is_a_clear_error() {
    let backend = ScriptedBackend::acking(vec![sales_table()]);
    let mut hq = HyperQBuilder::for_target(Arc::new(backend), hyperq_core::targets::simwh()).build();
    hq.run_one("CREATE MACRO M AS (CREATE VIEW V AS SEL STORE FROM SALES;)").unwrap();
    let err = hq.run_one("EXEC M").unwrap_err();
    assert!(err.to_string().contains("not supported"), "{err}");
}
