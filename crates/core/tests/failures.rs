//! Fault injection: the pipeline's behavior when the target database
//! rejects or fails requests, and the exact SQL traffic it generates.

use std::sync::Arc;

use hyperq_core::backend::testing::ScriptedBackend;
use hyperq_core::backend::{Backend, BackendError, ExecResult};
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::HyperQ;
use hyperq_xtra::catalog::{ColumnDef, TableDef};
use hyperq_xtra::types::SqlType;

fn sales_table() -> TableDef {
    TableDef::new(
        "SALES",
        vec![
            ColumnDef::new("STORE", SqlType::Integer, true),
            ColumnDef::new("AMOUNT", SqlType::Integer, true),
        ],
    )
}

#[test]
fn backend_error_propagates_with_message() {
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![sales_table()],
        responder: Box::new(|_| Err(BackendError("disk quota exceeded".into()))),
    };
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    let err = hq.run_one("SEL * FROM SALES").unwrap_err();
    assert!(err.to_string().contains("disk quota exceeded"), "{err}");
}

#[test]
fn translation_errors_do_not_reach_the_backend() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    // Bind error: unknown column.
    assert!(hq.run_one("SEL NOPE FROM SALES").is_err());
    // Parse error.
    assert!(hq.run_one("SELEKT 1").is_err());
    assert!(
        backend.sql_log().is_empty(),
        "failed translations must not generate target traffic: {:?}",
        backend.sql_log()
    );
}

#[test]
fn exactly_one_request_for_a_simple_query() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    assert_eq!(backend.sql_log().len(), 1);
}

#[test]
fn merge_generates_update_then_insert() {
    let backend = Arc::new(ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![
            sales_table(),
            TableDef::new(
                "FEED",
                vec![
                    ColumnDef::new("STORE", SqlType::Integer, true),
                    ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ],
            ),
        ],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    });
    let mut hq = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    hq.run_one(
        "MERGE INTO SALES S USING FEED F ON S.STORE = F.STORE \
         WHEN MATCHED THEN UPDATE SET AMOUNT = F.AMOUNT \
         WHEN NOT MATCHED THEN INSERT (STORE, AMOUNT) VALUES (F.STORE, F.AMOUNT)",
    )
    .unwrap();
    let log = backend.sql_log();
    assert_eq!(log.len(), 2, "{log:?}");
    assert!(log[0].starts_with("UPDATE SALES"), "{}", log[0]);
    assert!(log[1].starts_with("INSERT INTO SALES"), "{}", log[1]);
    assert!(log[1].contains("NOT EXISTS"), "{}", log[1]);
}

#[test]
fn recursion_failure_mid_emulation_surfaces() {
    // The seed CTAS succeeds, the first recursive-step CTAS fails: the
    // error must surface rather than hang or corrupt state.
    let calls = Arc::new(parking_lot::Mutex::new(0usize));
    let calls2 = Arc::clone(&calls);
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![TableDef::new(
            "EMP",
            vec![
                ColumnDef::new("EMPNO", SqlType::Integer, true),
                ColumnDef::new("MGRNO", SqlType::Integer, true),
            ],
        )],
        responder: Box::new(move |_| {
            let mut n = calls2.lock();
            *n += 1;
            if *n >= 3 {
                Err(BackendError("temp space exhausted".into()))
            } else {
                Ok(ExecResult::affected(1))
            }
        }),
    };
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    let err = hq
        .run_one(
            "WITH RECURSIVE R (EMPNO, MGRNO) AS ( \
               SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 1 \
               UNION ALL SELECT E.EMPNO, E.MGRNO FROM EMP E, R WHERE R.EMPNO = E.MGRNO) \
             SELECT EMPNO FROM R",
        )
        .unwrap_err();
    assert!(err.to_string().contains("temp space exhausted"), "{err}");
}

#[test]
fn runaway_recursion_hits_the_step_limit() {
    // A backend that always reports progress: the emulation must stop at
    // its bound instead of spinning forever.
    let backend = ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![TableDef::new(
            "EMP",
            vec![ColumnDef::new("EMPNO", SqlType::Integer, true)],
        )],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    };
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    let err = hq
        .run_one(
            "WITH RECURSIVE R (EMPNO) AS ( \
               SELECT EMPNO FROM EMP UNION ALL SELECT R.EMPNO FROM EMP, R) \
             SELECT EMPNO FROM R",
        )
        .unwrap_err();
    assert!(err.to_string().contains("converge"), "{err}");
}

#[test]
fn unknown_macro_and_procedure_errors() {
    let backend = ScriptedBackend::acking(vec![]);
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    assert!(hq.run_one("EXEC NO_SUCH_MACRO(1)").unwrap_err().to_string().contains("NO_SUCH_MACRO"));
    assert!(hq.run_one("CALL NO_SUCH_PROC(1)").unwrap_err().to_string().contains("NO_SUCH_PROC"));
}

#[test]
fn duplicate_view_without_replace_is_error() {
    let backend = ScriptedBackend::acking(vec![sales_table()]);
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    hq.run_one("CREATE VIEW V AS SEL STORE FROM SALES").unwrap();
    assert!(hq.run_one("CREATE VIEW V AS SEL AMOUNT FROM SALES").is_err());
    // REPLACE VIEW succeeds.
    hq.run_one("REPLACE VIEW V AS SEL AMOUNT FROM SALES").unwrap();
}

#[test]
fn session_isolation_of_dtm_objects() {
    // Two sessions against the same backend: DTM objects (macros, views)
    // are per-session state, like Teradata volatile objects.
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut s1 = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    let mut s2 = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    s1.run_one("CREATE MACRO M AS (SEL STORE FROM SALES;)").unwrap();
    assert!(s1.run_one("EXEC M").is_ok());
    assert!(s2.run_one("EXEC M").is_err(), "macros are session-scoped DTM state");
}

#[test]
fn procedure_body_may_contain_emulated_statements() {
    // MERGE inside a procedure: the body router must emulate it.
    let backend = Arc::new(ScriptedBackend {
        log: parking_lot::Mutex::new(Vec::new()),
        tables: vec![
            sales_table(),
            TableDef::new(
                "FEED",
                vec![
                    ColumnDef::new("STORE", SqlType::Integer, true),
                    ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ],
            ),
        ],
        responder: Box::new(|_| Ok(ExecResult::affected(1))),
    });
    let mut hq = HyperQ::new(Arc::clone(&backend) as Arc<dyn Backend>, TargetCapabilities::simwh());
    hq.run_one(
        "CREATE PROCEDURE SYNC (S INTEGER) BEGIN \
           MERGE INTO SALES T USING FEED F ON T.STORE = F.STORE AND T.STORE = :S \
           WHEN MATCHED THEN UPDATE SET AMOUNT = F.AMOUNT; \
         END",
    )
    .unwrap();
    let o = hq.run_one("CALL SYNC(3)").unwrap();
    assert!(o.features.contains(hyperq_xtra::feature::Feature::MergeStatement));
    let log = backend.sql_log();
    assert!(log.iter().any(|s| s.starts_with("UPDATE SALES")), "{log:?}");
}

#[test]
fn create_view_in_macro_body_is_a_clear_error() {
    let backend = ScriptedBackend::acking(vec![sales_table()]);
    let mut hq = HyperQ::new(Arc::new(backend), TargetCapabilities::simwh());
    hq.run_one("CREATE MACRO M AS (CREATE VIEW V AS SEL STORE FROM SALES;)").unwrap();
    let err = hq.run_one("EXEC M").unwrap_err();
    assert!(err.to_string().contains("not supported"), "{err}");
}
