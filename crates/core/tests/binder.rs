//! Binder unit tests: name resolution, diagnostics, the binder-stage
//! rewrites, and typing.

use hyperq_core::binder::Binder;
use hyperq_core::HyperQError;
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::catalog::{ColumnDef, MemoryCatalog, TableDef, ViewDef};
use hyperq_xtra::display::render_rel;
use hyperq_xtra::feature::Feature;
use hyperq_xtra::rel::Plan;
use hyperq_xtra::types::SqlType;

fn catalog() -> MemoryCatalog {
    MemoryCatalog::new()
        .with_table(TableDef::new(
            "T",
            vec![
                ColumnDef::new("A", SqlType::Integer, true),
                ColumnDef::new("B", SqlType::Integer, true),
                ColumnDef::new("D", SqlType::Date, true),
                ColumnDef::new("S", SqlType::Varchar(Some(20)), true),
            ],
        ))
        .with_table(TableDef::new(
            "U",
            vec![
                ColumnDef::new("A", SqlType::Integer, true),
                ColumnDef::new("X", SqlType::Integer, true),
            ],
        ))
        .with_view(ViewDef {
            name: "V".to_string(),
            columns: vec![],
            body_sql: "SELECT A, B FROM T WHERE B > 0".to_string(),
        })
}

fn bind(sql: &str) -> Result<(Plan, Binder<'static>), HyperQError> {
    // Leak the catalog so the Binder's lifetime is 'static for the test.
    let cat: &'static MemoryCatalog = Box::leak(Box::new(catalog()));
    let parsed = parse_one(sql, Dialect::Teradata).map_err(HyperQError::Parse)?;
    let mut binder = Binder::new(cat);
    let plan = binder.bind_statement(&parsed.stmt)?;
    Ok((plan, binder))
}

fn bind_err(sql: &str) -> String {
    match bind(sql) {
        Err(e) => e.to_string(),
        Ok((plan, _)) => panic!("expected bind error, got {plan:?}"),
    }
}

#[test]
fn unknown_table_reported() {
    let err = bind_err("SEL * FROM NOPE");
    assert!(err.contains("NOPE"), "{err}");
}

#[test]
fn unknown_column_reported() {
    let err = bind_err("SEL NOPE FROM T");
    assert!(err.contains("NOPE"), "{err}");
}

#[test]
fn ambiguous_column_reported() {
    let err = bind_err("SEL A FROM T, U");
    assert!(err.contains("ambiguous"), "{err}");
}

#[test]
fn qualified_reference_disambiguates() {
    let (plan, _) = bind("SEL T.A, U.A FROM T, U").unwrap();
    match plan {
        Plan::Query(rel) => assert_eq!(rel.schema().len(), 2),
        other => panic!("{other:?}"),
    }
}

#[test]
fn self_join_requires_aliases() {
    let (plan, _) = bind("SEL X.A, Y.A FROM T X, T Y WHERE X.A = Y.B").unwrap();
    match plan {
        Plan::Query(rel) => {
            let tree = render_rel(&rel);
            assert!(tree.contains("get (T 'X')"), "{tree}");
            assert!(tree.contains("get (T 'Y')"), "{tree}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn ordinal_out_of_range() {
    let err = bind_err("SEL A FROM T GROUP BY 5");
    assert!(err.contains("position 5"), "{err}");
    let err = bind_err("SEL A FROM T ORDER BY 9");
    assert!(err.contains("position 9"), "{err}");
}

#[test]
fn having_without_aggregate_rejected() {
    let err = bind_err("SEL A FROM T HAVING A > 1");
    assert!(err.contains("HAVING"), "{err}");
}

#[test]
fn distinct_with_hidden_sort_column_rejected() {
    let err = bind_err("SEL DISTINCT A FROM T ORDER BY B");
    assert!(err.contains("DISTINCT"), "{err}");
}

#[test]
fn aggregate_in_where_rejected() {
    let err = bind_err("SEL A FROM T WHERE SUM(B) > 1");
    assert!(err.contains("not allowed"), "{err}");
}

#[test]
fn window_in_where_rejected() {
    let err = bind_err("SEL A FROM T WHERE RANK() OVER (ORDER BY A) = 1");
    assert!(err.contains("window"), "{err}");
}

#[test]
fn unknown_function_rejected() {
    let err = bind_err("SEL FROBNICATE(A) FROM T");
    assert!(err.contains("FROBNICATE"), "{err}");
}

#[test]
fn function_arity_checked() {
    let err = bind_err("SEL SUBSTRING(S) FROM T");
    assert!(err.contains("arguments"), "{err}");
    let err = bind_err("SEL NULLIF(A) FROM T");
    assert!(err.contains("arguments"), "{err}");
}

#[test]
fn scalar_subquery_width_checked() {
    let err = bind_err("SEL A FROM T WHERE B = (SEL A, B FROM T)");
    assert!(err.contains("one column"), "{err}");
}

#[test]
fn in_subquery_width_checked() {
    let err = bind_err("SEL A FROM T WHERE (A, B) IN (SEL A FROM U)");
    assert!(err.contains("columns"), "{err}");
}

#[test]
fn insert_width_checked() {
    let err = bind_err("INSERT INTO T (A, B) VALUES (1)");
    assert!(err.contains("values"), "{err}");
}

#[test]
fn update_unknown_column_checked() {
    let err = bind_err("UPD T SET NOPE = 1");
    assert!(err.contains("NOPE"), "{err}");
}

#[test]
fn chained_projection_inlines_alias() {
    let (plan, binder) = bind("SEL A AS BASE, BASE + 10 AS NEXT FROM T").unwrap();
    assert!(binder.features.contains(Feature::NamedExprReference));
    match plan {
        Plan::Query(rel) => {
            let schema = rel.schema();
            assert_eq!(schema.fields[1].name, "NEXT");
            assert_eq!(schema.fields[1].ty, SqlType::Integer);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn alias_chain_left_to_right_only() {
    // Referencing an alias defined *later* in the list is an error.
    let err = bind_err("SEL LATER + 1 AS FIRST, A AS LATER FROM T");
    assert!(err.contains("LATER"), "{err}");
}

#[test]
fn implicit_join_adds_table_and_feature() {
    let (plan, binder) = bind("SEL T.A FROM T WHERE T.A = U.X").unwrap();
    assert!(binder.features.contains(Feature::ImplicitJoin));
    match plan {
        Plan::Query(rel) => {
            let tables = rel.referenced_tables();
            assert!(tables.contains(&"U".to_string()), "{tables:?}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn view_reference_inlines_body() {
    let (plan, _) = bind("SEL A FROM V WHERE A > 5").unwrap();
    match plan {
        Plan::Query(rel) => {
            // The view body's base table appears; no view object remains.
            assert_eq!(rel.referenced_tables(), vec!["T".to_string()]);
            let tree = render_rel(&rel);
            assert!(tree.contains("alias 'V'"), "{tree}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn date_int_comparison_feature_recorded() {
    let (_, binder) = bind("SEL A FROM T WHERE D > 1200101").unwrap();
    assert!(binder.features.contains(Feature::DateIntComparison));
}

#[test]
fn date_arithmetic_feature_recorded() {
    let (_, binder) = bind("SEL D + 7 FROM T").unwrap();
    assert!(binder.features.contains(Feature::DateArithmetic));
}

#[test]
fn recursive_query_must_not_reach_binder() {
    let err = bind_err("WITH RECURSIVE R (N) AS (SEL 1 UNION ALL SEL N + 1 FROM R) SEL * FROM R");
    assert!(err.contains("emulated"), "{err}");
}

#[test]
fn set_op_arity_checked() {
    let err = bind_err("SEL A FROM T UNION ALL SEL A, B FROM T");
    assert!(err.contains("equally wide"), "{err}");
}

#[test]
fn group_by_alias_resolves() {
    let (plan, _) = bind("SEL A + 1 AS BUCKET, COUNT(*) FROM T GROUP BY BUCKET").unwrap();
    match plan {
        Plan::Query(rel) => {
            let tree = render_rel(&rel);
            assert!(tree.contains("gbagg"), "{tree}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn values_width_checked() {
    let err = bind_err("INSERT INTO T (A, B) VALUES (1, 2), (3)");
    assert!(err.contains("width") || err.contains("values"), "{err}");
}

#[test]
fn derived_table_alias_arity_checked() {
    let err = bind_err("SEL * FROM (SEL A, B FROM T) AS X (P)");
    assert!(err.contains("columns"), "{err}");
}

#[test]
fn cte_shadowing_and_reuse() {
    let (plan, _) = bind(
        "WITH C AS (SEL A FROM T WHERE A > 0) \
         SEL X.A FROM C X, C Y WHERE X.A = Y.A",
    )
    .unwrap();
    match plan {
        Plan::Query(rel) => {
            // The CTE is inlined twice.
            let tree = render_rel(&rel);
            assert_eq!(tree.matches("get (T").count(), 2, "{tree}");
        }
        other => panic!("{other:?}"),
    }
}
