//! Translation-cache behavior through the full crosscompiler: warm-hit
//! replay, literal splicing, DDL/SET invalidation, per-session isolation
//! on a shared cache, GTT and transaction bypasses, and strict-mode
//! revalidation sampling.

use std::sync::Arc;

use hyperq_core::backend::testing::ScriptedBackend;
use hyperq_core::backend::Backend;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::{AnalyzeMode, CacheConfig, HyperQBuilder, ObsContext, TranslationCache};
use hyperq_xtra::catalog::{ColumnDef, TableDef};
use hyperq_xtra::types::SqlType;

fn sales_table() -> TableDef {
    TableDef::new(
        "SALES",
        vec![
            ColumnDef::new("STORE", SqlType::Integer, true),
            ColumnDef::new("AMOUNT", SqlType::Integer, true),
        ],
    )
}

fn counter(obs: &Arc<ObsContext>, name: &str) -> u64 {
    obs.metrics.counter_value(name, &[])
}

#[test]
fn warm_hit_replays_byte_identical_sql_without_retranslating() {
    let obs = ObsContext::new();
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();
    let sql = "SEL STORE FROM SALES WHERE AMOUNT > 10";
    hq.run_one(sql).unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 0);
    hq.run_one(sql).unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 1);
    let log = backend.sql_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0], log[1], "warm hit must replay the exact SQL-B");
}

#[test]
fn literal_variation_upgrades_to_a_spliced_template() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .build();
    // Two distinct literal vectors under one fingerprint: the second
    // populate builds (and probe-verifies) a spliced template.
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 20").unwrap();
    // A literal never seen before must now be served by splicing…
    let o = hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 31337").unwrap();
    assert!(
        o.sql_sent[0].contains("31337"),
        "spliced SQL must carry the new literal: {:?}",
        o.sql_sent
    );
    // …and byte-match what a cold pipeline produces for the same text.
    let mut cold = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .no_cache()
        .build();
    let c = cold.run_one("SEL STORE FROM SALES WHERE AMOUNT > 31337").unwrap();
    assert_eq!(o.sql_sent, c.sql_sent);
}

#[test]
fn ddl_invalidates_cached_translations_for_the_table() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .build();
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    let cache = Arc::clone(hq.cache().expect("cache on by default"));
    assert_eq!(cache.len(), 1);
    hq.run_one("DROP TABLE SALES").unwrap();
    assert_eq!(cache.len(), 0, "DROP TABLE must drop entries that resolved SALES");
}

#[test]
fn set_session_moves_the_session_to_a_fresh_key_space() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();
    let sql = "SEL STORE FROM SALES WHERE AMOUNT > 10";
    hq.run_one(sql).unwrap();
    hq.run_one(sql).unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 1);
    hq.run_one("SET SESSION COLLATION = 'UNICODE'").unwrap();
    // Same text, new settings epoch: must re-translate, not hit.
    hq.run_one(sql).unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 1);
    let cache = hq.cache().unwrap();
    assert_eq!(cache.len(), 2, "old and new epochs hold separate entries");
}

/// The regression the shared-cache design must hold: one gateway-wide
/// cache, two sessions whose `SET` state differs, same statement text —
/// each session gets *its own* translation, never the other's.
#[test]
fn shared_cache_respects_per_session_settings() {
    let backend = Arc::new(ScriptedBackend::acking(vec![
        TableDef::new("T", vec![ColumnDef::new("X", SqlType::Integer, true)]),
        TableDef::new("SALES.T", vec![ColumnDef::new("X", SqlType::Integer, true)]),
    ]));
    let obs = ObsContext::new();
    let cache = Arc::new(TranslationCache::new(CacheConfig::default(), &obs));
    let mk = || {
        HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
            .obs(Arc::clone(&obs))
            .shared_cache(Arc::clone(&cache))
            .build()
    };
    let mut a = mk();
    let mut b = mk();
    a.run_one("SET SESSION DATABASE = 'SALES'").unwrap();

    let sql = "SEL X FROM T WHERE X = 1";
    let a_cold = a.run_one(sql).unwrap().sql_sent;
    let b_cold = b.run_one(sql).unwrap().sql_sent;
    assert!(a_cold[0].contains("SALES.T"), "session A resolves via its default database: {a_cold:?}");
    assert!(!b_cold[0].contains("SALES"), "session B resolves the bare table: {b_cold:?}");

    // Warm replays: each session must hit its *own* entry.
    let a_warm = a.run_one(sql).unwrap().sql_sent;
    let b_warm = b.run_one(sql).unwrap().sql_sent;
    assert_eq!(a_cold, a_warm);
    assert_eq!(b_cold, b_warm);
    assert!(counter(&obs, "hyperq_cache_hits_total") >= 2);
}

#[test]
fn gtt_statements_are_never_cached() {
    // GTT statements depend on per-session materialization state (and are
    // re-materialized after recovery); caching their translation could
    // replay a pre-recovery instance name. They must bypass entirely.
    let backend = Arc::new(ScriptedBackend::acking(vec![]));
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .build();
    hq.run_one("CREATE GLOBAL TEMPORARY TABLE STAGE (K INTEGER, V INTEGER)").unwrap();
    let cache = Arc::clone(hq.cache().unwrap());
    for _ in 0..3 {
        hq.run_one("SEL K FROM STAGE WHERE V = 1").unwrap();
    }
    assert_eq!(cache.len(), 0, "GTT-touching statements must never populate the cache");
    // The bypass is not a behavior change, just a slow path: every
    // execution still reached the target.
    assert!(backend.sql_log().len() >= 3);
}

#[test]
fn in_transaction_dml_takes_the_slow_path() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .dml_batching(false)
        .build();
    // Populate the entry outside a transaction.
    hq.run_one("UPDATE SALES SET AMOUNT = 5 WHERE STORE = 1").unwrap();
    hq.run_one("UPDATE SALES SET AMOUNT = 5 WHERE STORE = 1").unwrap();
    let hits_before = counter(&obs, "hyperq_cache_hits_total");
    assert_eq!(hits_before, 1);
    // The same statement inside an open transaction must not hit.
    hq.run_script("BEGIN TRANSACTION").unwrap();
    hq.run_one("UPDATE SALES SET AMOUNT = 5 WHERE STORE = 1").unwrap();
    hq.run_script("COMMIT").unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), hits_before);
    assert!(counter(&obs, "hyperq_cache_bypass_total") >= 1);
}

#[test]
fn strict_mode_revalidates_sampled_hits() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .analyze(AnalyzeMode::Strict)
        .cache(CacheConfig { revalidate_every: 1, ..CacheConfig::default() })
        .build();
    let sql = "SEL STORE FROM SALES WHERE AMOUNT > 10";
    for _ in 0..3 {
        hq.run_one(sql).unwrap();
    }
    let ok = obs.metrics.counter_value("hyperq_cache_revalidations_total", &[("outcome", "ok")]);
    assert!(ok >= 2, "every strict-mode hit revalidates at period 1, got {ok}");
    assert_eq!(
        obs.metrics.counter_value("hyperq_cache_revalidations_total", &[("outcome", "mismatch")]),
        0
    );
}

#[test]
fn bypass_request_skips_lookup_and_population() {
    use hyperq_core::Request;
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, hyperq_core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();
    let sql = "SEL STORE FROM SALES WHERE AMOUNT > 10";
    hq.run(Request::script(sql).bypass_cache()).unwrap();
    hq.run(Request::script(sql).bypass_cache()).unwrap();
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 0);
    assert_eq!(hq.cache().unwrap().len(), 0);
}

/// Two sessions on one shared cache, same statement text, different
/// target profiles: each target must populate and replay *its own*
/// entry — a `simwh` translation served to a `simwh-reduced` session
/// would ship the wrong dialect to the target.
#[test]
fn shared_cache_isolates_entries_per_target() {
    let backend = Arc::new(ScriptedBackend::acking(vec![sales_table()]));
    let obs = ObsContext::new();
    let cache = Arc::new(TranslationCache::new(CacheConfig::default(), &obs));
    let mk = |profile| {
        HyperQBuilder::for_target(Arc::clone(&backend) as Arc<dyn Backend>, profile)
            .obs(Arc::clone(&obs))
            .shared_cache(Arc::clone(&cache))
            .build()
    };
    let mut full = mk(hyperq_core::targets::simwh());
    let mut reduced = mk(hyperq_core::targets::simwh_reduced());

    // A statement whose spelling differs between the flavors.
    let sql = "SEL STORE FROM SALES WHERE STORE MOD 3 = 1";
    let full_cold = full.run_one(sql).unwrap().sql_sent;
    let reduced_cold = reduced.run_one(sql).unwrap().sql_sent;
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 0);
    assert_eq!(cache.len(), 2, "one entry per target, never shared");
    assert!(full_cold[0].contains('%'), "{full_cold:?}");
    assert!(reduced_cold[0].contains("MOD("), "{reduced_cold:?}");

    // Warm replays stay within their target's key space.
    assert_eq!(full.run_one(sql).unwrap().sql_sent, full_cold);
    assert_eq!(reduced.run_one(sql).unwrap().sql_sent, reduced_cold);
    assert_eq!(counter(&obs, "hyperq_cache_hits_total"), 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn deprecated_constructors_still_work_and_cache() {
    #[allow(deprecated)]
    let mut hq = hyperq_core::HyperQ::new(
        Arc::new(ScriptedBackend::acking(vec![sales_table()])),
        TargetCapabilities::simwh(),
    );
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    hq.run_one("SEL STORE FROM SALES WHERE AMOUNT > 10").unwrap();
    assert_eq!(hq.cache().unwrap().len(), 1);
}
