//! Serializer unit tests: per-target dialect spellings and block assembly.

use hyperq_core::binder::Binder;
use hyperq_core::capability::TargetCapabilities;
use hyperq_core::serialize::Serializer;
use hyperq_core::transform::Transformer;
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::catalog::{ColumnDef, MemoryCatalog, TableDef};
use hyperq_xtra::feature::FeatureSet;
use hyperq_xtra::rel::Plan;
use hyperq_xtra::types::SqlType;

fn tables() -> Vec<TableDef> {
    vec![
        TableDef::new(
            "SALES",
            vec![
                ColumnDef::new("STORE", SqlType::Integer, true),
                ColumnDef::new("AMOUNT", SqlType::Integer, true),
                ColumnDef::new("SALES_DATE", SqlType::Date, true),
                ColumnDef::new("NAME", SqlType::Varchar(Some(30)), true),
            ],
        ),
        TableDef::new(
            "SALES_HISTORY",
            vec![
                ColumnDef::new("GROSS", SqlType::Integer, true),
                ColumnDef::new("NET", SqlType::Integer, true),
            ],
        ),
    ]
}

fn catalog_with(tables: Vec<TableDef>) -> MemoryCatalog {
    let mut cat = MemoryCatalog::new();
    for t in tables {
        cat = cat.with_table(t);
    }
    cat
}

/// Translate Teradata SQL for the given capability profile.
fn translate(sql: &str, caps: &TargetCapabilities) -> String {
    let catalog = catalog_with(tables());
    let parsed = parse_one(sql, Dialect::Teradata).unwrap();
    let mut binder = Binder::new(&catalog);
    let plan = binder.bind_statement(&parsed.stmt).unwrap();
    let mut fired = FeatureSet::new();
    let plan = Transformer::standard().run_all(plan, caps, &mut fired).unwrap();
    Serializer::new(caps).serialize_plan(&plan).unwrap()
}

#[test]
fn top_vs_limit_spelling() {
    let q = "SEL TOP 7 STORE FROM SALES ORDER BY STORE";
    let with_limit = translate(q, &TargetCapabilities::simwh());
    assert!(with_limit.contains("LIMIT 7"), "{with_limit}");
    assert!(!with_limit.contains("TOP"), "{with_limit}");
    let with_top = translate(q, &TargetCapabilities::cloud_a());
    assert!(with_top.contains("SELECT TOP 7"), "{with_top}");
    assert!(!with_top.contains("LIMIT"), "{with_top}");
}

#[test]
fn mod_spelling_per_target() {
    let q = "SEL AMOUNT MOD 3 FROM SALES";
    let pct = translate(q, &TargetCapabilities::simwh());
    assert!(pct.contains("% 3"), "{pct}");
    let func = translate(q, &TargetCapabilities::cloud_c());
    assert!(func.contains("MOD("), "{func}");
}

#[test]
fn date_add_spellings() {
    let q = "SEL SALES_DATE + 30 FROM SALES";
    // SimWH: native date arithmetic — no rewrite.
    let native = translate(q, &TargetCapabilities::simwh());
    assert!(native.contains("+ 30"), "{native}");
    assert!(!native.to_uppercase().contains("DATEADD"), "{native}");
    // CloudWH-A: DATEADD(DAY, n, d).
    let dateadd = translate(q, &TargetCapabilities::cloud_a());
    assert!(dateadd.contains("DATEADD(DAY, 30,"), "{dateadd}");
    // CloudWH-C: DATE_ADD(d, INTERVAL n DAY).
    let interval_fn = translate(q, &TargetCapabilities::cloud_c());
    assert!(interval_fn.contains("DATE_ADD("), "{interval_fn}");
    assert!(interval_fn.contains("INTERVAL 30 DAY"), "{interval_fn}");
    // CloudWH-E: d + INTERVAL 'n' DAY.
    let interval_lit = translate(q, &TargetCapabilities::cloud_e());
    assert!(interval_lit.contains("INTERVAL '30' DAY"), "{interval_lit}");
}

#[test]
fn add_months_spellings() {
    let q = "SEL ADD_MONTHS(SALES_DATE, 2) FROM SALES";
    let native = translate(q, &TargetCapabilities::simwh());
    assert!(native.contains("ADD_MONTHS("), "{native}");
    let dateadd = translate(q, &TargetCapabilities::cloud_a());
    assert!(dateadd.contains("DATEADD(MONTH, 2,"), "{dateadd}");
    let interval = translate(q, &TargetCapabilities::cloud_c());
    assert!(interval.contains("INTERVAL '2' MONTH"), "{interval}");
}

#[test]
fn power_operator_becomes_function() {
    let sql = translate("SEL AMOUNT ** 2 FROM SALES", &TargetCapabilities::simwh());
    assert!(sql.contains("POWER("), "{sql}");
    assert!(!sql.contains("**"), "{sql}");
}

#[test]
fn grouping_sets_native_when_supported() {
    let q = "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE)";
    // CloudWH-D supports grouping sets → native syntax, no UNION ALL.
    let native = translate(q, &TargetCapabilities::cloud_d());
    assert!(native.contains("GROUPING SETS"), "{native}");
    assert!(!native.contains("UNION ALL"), "{native}");
    // SimWH lacks them → UNION ALL expansion.
    let expanded = translate(q, &TargetCapabilities::simwh());
    assert!(expanded.contains("UNION ALL"), "{expanded}");
    assert!(!expanded.contains("GROUPING SETS"), "{expanded}");
}

#[test]
fn vector_subquery_native_when_supported() {
    let q = "SEL STORE FROM SALES \
             WHERE (AMOUNT, AMOUNT) > ANY (SEL GROSS, NET FROM SALES_HISTORY)";
    // CloudWH-E supports row-valued quantified comparison natively.
    let native = translate(q, &TargetCapabilities::cloud_e());
    assert!(native.contains("> ANY"), "{native}");
    assert!(!native.contains("EXISTS"), "{native}");
    // SimWH: rewritten to EXISTS.
    let rewritten = translate(q, &TargetCapabilities::simwh());
    assert!(rewritten.contains("EXISTS"), "{rewritten}");
    assert!(!rewritten.contains("ANY"), "{rewritten}");
}

#[test]
fn qualify_native_when_supported() {
    // CloudWH-D has native QUALIFY, but the binder always lowers it, which
    // is still *correct* SQL for that target — the serializer must never
    // emit QUALIFY (normalized form is universal).
    let q = "SEL STORE FROM SALES QUALIFY RANK() OVER (ORDER BY AMOUNT DESC) <= 1";
    for caps in [TargetCapabilities::simwh(), TargetCapabilities::cloud_d()] {
        let sql = translate(q, &caps);
        assert!(!sql.to_uppercase().contains("QUALIFY"), "{sql}");
        assert!(sql.to_uppercase().contains("RANK() OVER"), "{sql}");
    }
}

#[test]
fn string_literals_escaped() {
    let sql = translate("SEL STORE FROM SALES WHERE NAME = 'O''Brien'", &TargetCapabilities::simwh());
    assert!(sql.contains("'O''Brien'"), "{sql}");
}

#[test]
fn nested_blocks_requalify_columns() {
    // Window + filter + projection forces a derived-table wrap; references
    // above the wrap must switch to the derived alias.
    let sql = translate(
        "SEL STORE, AMOUNT FROM SALES QUALIFY RANK(AMOUNT DESC) <= 2",
        &TargetCapabilities::simwh(),
    );
    assert!(sql.contains(") AS _T1"), "{sql}");
    assert!(sql.contains("_T1.STORE"), "{sql}");
    assert!(
        !sql.starts_with("SELECT SALES.STORE"),
        "outer references must use the derived alias: {sql}"
    );
}

#[test]
fn dml_serialization() {
    let caps = TargetCapabilities::simwh();
    let upd = translate("UPD SALES SET AMOUNT = AMOUNT + 1 WHERE STORE = 2", &caps);
    assert!(upd.starts_with("UPDATE SALES SET AMOUNT ="), "{upd}");
    let del = translate("DEL FROM SALES WHERE AMOUNT < 0", &caps);
    assert!(del.starts_with("DELETE FROM SALES WHERE"), "{del}");
    let ins = translate("INS SALES (1, 2, DATE '2020-01-01', 'x')", &caps);
    assert!(ins.starts_with("INSERT INTO SALES"), "{ins}");
    assert!(ins.contains("VALUES (1, 2, DATE '2020-01-01', 'x')"), "{ins}");
}

#[test]
fn create_table_serialization() {
    let caps = TargetCapabilities::simwh();
    let catalog = catalog_with(vec![]);
    let parsed = parse_one(
        "CREATE TABLE T2 (A INTEGER NOT NULL, B DECIMAL(10,2) DEFAULT 0.00, C VARCHAR(5))",
        Dialect::Teradata,
    )
    .unwrap();
    let mut binder = Binder::new(&catalog);
    let plan = binder.bind_statement(&parsed.stmt).unwrap();
    let sql = Serializer::new(&caps).serialize_plan(&plan).unwrap();
    assert!(sql.contains("A INTEGER NOT NULL"), "{sql}");
    assert!(sql.contains("B DECIMAL(10,2) DEFAULT 0.00"), "{sql}");
    assert!(sql.contains("C VARCHAR(5)"), "{sql}");
}

#[test]
fn semi_join_cannot_be_serialized() {
    use hyperq_xtra::rel::{JoinKind, RelExpr};
    use hyperq_xtra::schema::Schema;
    let join = RelExpr::Join {
        kind: JoinKind::Semi,
        left: Box::new(RelExpr::Values { rows: vec![], schema: Schema::empty() }),
        right: Box::new(RelExpr::Values { rows: vec![], schema: Schema::empty() }),
        condition: Some(hyperq_xtra::expr::ScalarExpr::boolean(true)),
    };
    let caps = TargetCapabilities::simwh();
    assert!(Serializer::new(&caps).serialize_plan(&Plan::Query(join)).is_err());
}

#[test]
fn set_operations_serialize_flat() {
    let sql = translate(
        "SEL STORE FROM SALES UNION ALL SEL GROSS FROM SALES_HISTORY ORDER BY 1",
        &TargetCapabilities::simwh(),
    );
    assert!(sql.contains("UNION ALL"), "{sql}");
    assert!(sql.contains("ORDER BY"), "{sql}");
    // The set operation is not needlessly wrapped.
    assert!(!sql.contains("AS _S"), "{sql}");
}
