//! Transformer unit tests: phases, fixed-point cascading, capability
//! gating, and rule-by-rule behavior on hand-built plans.

use hyperq_core::capability::TargetCapabilities;
use hyperq_core::transform::{Phase, Transformer};
use hyperq_xtra::datum::{date_from_ymd, Datum};
use hyperq_xtra::expr::{CmpOp, ScalarExpr, SortExpr};
use hyperq_xtra::feature::{Feature, FeatureSet};
use hyperq_xtra::rel::{Grouping, Plan, RelExpr};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;

fn sales_get() -> RelExpr {
    RelExpr::Get {
        table: "SALES".into(),
        alias: Some("SALES".into()),
        schema: Schema::new(vec![
            Field::new(Some("SALES"), "AMOUNT", SqlType::Integer, true),
            Field::new(Some("SALES"), "SALES_DATE", SqlType::Date, true),
        ]),
    }
}

fn date_col() -> ScalarExpr {
    ScalarExpr::column(Some("SALES"), "SALES_DATE", SqlType::Date)
}

#[test]
fn date_int_comparison_fires_in_binding_phase_only() {
    let plan = Plan::Query(RelExpr::Select {
        input: Box::new(sales_get()),
        predicate: ScalarExpr::cmp(CmpOp::Gt, date_col(), ScalarExpr::int(1_140_101)),
    });
    let t = Transformer::standard();
    let caps = TargetCapabilities::simwh();
    let mut fired = FeatureSet::new();
    // Serialization phase alone must not touch it…
    let unchanged = t.run(plan.clone(), Phase::Serialization, &caps, &mut fired).unwrap();
    assert_eq!(unchanged, plan);
    assert!(!fired.contains(Feature::DateIntComparison));
    // …the binding phase rewrites it.
    let rewritten = t.run(plan, Phase::Binding, &caps, &mut fired).unwrap();
    assert!(fired.contains(Feature::DateIntComparison));
    let dbg = format!("{rewritten:?}");
    assert!(dbg.contains("Extract"), "{dbg}");
}

#[test]
fn constant_date_folds_to_teradata_int() {
    // DATE literal compared to INT folds to an int-int comparison rather
    // than an EXTRACT expansion.
    let plan = Plan::Query(RelExpr::Select {
        input: Box::new(sales_get()),
        predicate: ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Literal(Datum::Date(date_from_ymd(2014, 1, 1)), SqlType::Date),
            ScalarExpr::int(1_140_101),
        ),
    });
    let mut fired = FeatureSet::new();
    let out = Transformer::standard()
        .run(plan, Phase::Binding, &TargetCapabilities::simwh(), &mut fired)
        .unwrap();
    let dbg = format!("{out:?}");
    assert!(!dbg.contains("Extract"), "{dbg}");
    assert!(dbg.contains("Int(1140101)"), "{dbg}");
}

#[test]
fn grouping_sets_gated_by_capability() {
    let agg = RelExpr::Aggregate {
        input: Box::new(sales_get()),
        group_by: vec![(
            ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer),
            "AMOUNT".into(),
        )],
        grouping: Grouping::rollup(1),
        aggs: vec![],
    };
    let t = Transformer::standard();
    let mut fired = FeatureSet::new();
    // Target WITH grouping sets: untouched.
    let kept = t
        .run(Plan::Query(agg.clone()), Phase::Serialization, &TargetCapabilities::cloud_d(), &mut fired)
        .unwrap();
    assert!(format!("{kept:?}").contains("Sets"), "{kept:?}");
    // Target WITHOUT: expanded to a union.
    let expanded = t
        .run(Plan::Query(agg), Phase::Serialization, &TargetCapabilities::simwh(), &mut fired)
        .unwrap();
    let dbg = format!("{expanded:?}");
    assert!(dbg.contains("SetOp"), "{dbg}");
    assert!(fired.contains(Feature::GroupingExtensions));
}

#[test]
fn rollup_expansion_has_one_branch_per_set() {
    let agg = RelExpr::Aggregate {
        input: Box::new(sales_get()),
        group_by: vec![
            (ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer), "AMOUNT".into()),
            (ScalarExpr::column(Some("SALES"), "SALES_DATE", SqlType::Date), "SALES_DATE".into()),
        ],
        grouping: Grouping::rollup(2),
        aggs: vec![],
    };
    let mut fired = FeatureSet::new();
    let out = Transformer::standard()
        .run(
            Plan::Query(agg),
            Phase::Serialization,
            &TargetCapabilities::simwh(),
            &mut fired,
        )
        .unwrap();
    // rollup(2) → 3 grouping sets → 3 aggregate branches, 2 unions.
    let mut aggs = 0;
    let mut unions = 0;
    if let Plan::Query(rel) = &out {
        rel.visit(&mut |_| {}, &mut |r| match r {
            RelExpr::Aggregate { .. } => aggs += 1,
            RelExpr::SetOp { .. } => unions += 1,
            _ => {}
        });
    }
    assert_eq!(aggs, 3);
    assert_eq!(unions, 2);
}

#[test]
fn with_ties_lowering_gated_by_capability() {
    let limit = RelExpr::Limit {
        input: Box::new(RelExpr::Sort {
            input: Box::new(sales_get()),
            keys: vec![SortExpr::desc(ScalarExpr::column(
                Some("SALES"),
                "AMOUNT",
                SqlType::Integer,
            ))],
        }),
        limit: Some(3),
        offset: 0,
        with_ties: true,
    };
    let t = Transformer::standard();
    let mut fired = FeatureSet::new();
    // CloudWH-A supports WITH TIES: the Limit survives.
    let kept = t
        .run(Plan::Query(limit.clone()), Phase::Serialization, &TargetCapabilities::cloud_a(), &mut fired)
        .unwrap();
    assert!(format!("{kept:?}").contains("with_ties: true"), "{kept:?}");
    // SimWH does not: lowered to a RANK window + filter.
    let lowered = t
        .run(Plan::Query(limit), Phase::Serialization, &TargetCapabilities::simwh(), &mut fired)
        .unwrap();
    let dbg = format!("{lowered:?}");
    assert!(dbg.contains("__TIES_RANK"), "{dbg}");
    assert!(!dbg.contains("with_ties: true"), "{dbg}");
}

#[test]
fn null_ordering_rule_is_idempotent_across_runs() {
    let sort = RelExpr::Sort {
        input: Box::new(sales_get()),
        keys: vec![SortExpr::asc(ScalarExpr::column(
            Some("SALES"),
            "AMOUNT",
            SqlType::Integer,
        ))],
    };
    let t = Transformer::standard();
    let caps = TargetCapabilities::simwh();
    let mut fired = FeatureSet::new();
    let once = t.run(Plan::Query(sort), Phase::Serialization, &caps, &mut fired).unwrap();
    let twice = t.run(once.clone(), Phase::Serialization, &caps, &mut fired).unwrap();
    assert_eq!(once, twice, "fixed point must be stable");
}

#[test]
fn cascade_reaches_fixed_point() {
    // A date-int comparison nested inside a vector subquery requires the
    // binding rule to fire inside the tree the serialization rule then
    // rewrites — the cascading case the paper's §4.3 describes.
    let history = RelExpr::Get {
        table: "H".into(),
        alias: Some("H".into()),
        schema: Schema::new(vec![
            Field::new(Some("H"), "G", SqlType::Integer, true),
            Field::new(Some("H"), "N", SqlType::Integer, true),
            Field::new(Some("H"), "D", SqlType::Date, true),
        ]),
    };
    let inner = RelExpr::Select {
        input: Box::new(history),
        predicate: ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::column(Some("H"), "D", SqlType::Date),
            ScalarExpr::int(1_150_101),
        ),
    };
    let inner = RelExpr::Project {
        input: Box::new(inner),
        exprs: vec![
            (ScalarExpr::column(Some("H"), "G", SqlType::Integer), "G".into()),
            (ScalarExpr::column(Some("H"), "N", SqlType::Integer), "N".into()),
        ],
    };
    let outer_pred = ScalarExpr::QuantifiedCmp {
        left: vec![
            ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer),
            ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer),
        ],
        op: CmpOp::Gt,
        quantifier: hyperq_xtra::expr::Quantifier::Any,
        subquery: Box::new(inner),
    };
    let plan = Plan::Query(RelExpr::Select {
        input: Box::new(sales_get()),
        predicate: outer_pred,
    });
    let mut fired = FeatureSet::new();
    let out = Transformer::standard()
        .run_all(plan, &TargetCapabilities::simwh(), &mut fired)
        .unwrap();
    assert!(fired.contains(Feature::DateIntComparison));
    assert!(fired.contains(Feature::VectorSubquery));
    let dbg = format!("{out:?}");
    assert!(dbg.contains("Exists"), "{dbg}");
    assert!(dbg.contains("Extract"), "{dbg}");
    assert!(!dbg.contains("QuantifiedCmp"), "{dbg}");
}

#[test]
fn scalar_quantified_comparison_left_alone() {
    // A 1-wide quantified comparison is ANSI; the vector rule must not
    // touch it.
    let inner = RelExpr::Get {
        table: "H".into(),
        alias: Some("H".into()),
        schema: Schema::new(vec![Field::new(Some("H"), "G", SqlType::Integer, true)]),
    };
    let pred = ScalarExpr::QuantifiedCmp {
        left: vec![ScalarExpr::column(Some("SALES"), "AMOUNT", SqlType::Integer)],
        op: CmpOp::Gt,
        quantifier: hyperq_xtra::expr::Quantifier::Any,
        subquery: Box::new(inner),
    };
    let plan = Plan::Query(RelExpr::Select {
        input: Box::new(sales_get()),
        predicate: pred,
    });
    let mut fired = FeatureSet::new();
    let out = Transformer::standard()
        .run_all(plan.clone(), &TargetCapabilities::simwh(), &mut fired)
        .unwrap();
    let dbg = format!("{out:?}");
    assert!(dbg.contains("QuantifiedCmp"), "{dbg}");
    assert!(!fired.contains(Feature::VectorSubquery));
}
