//! Fault-tolerant backend execution.
//!
//! The paper positions Hyper-Q as production middleware in front of an
//! entire warehouse workload (§4, §6): a flaky or slow cloud target must
//! degrade gracefully at the middle tier instead of cascading into dropped
//! client connections. [`ResilientBackend`] is the policy layer that sits
//! between the pipeline and the ODBC-server abstraction:
//!
//! * **bounded retries** with exponential backoff and seedable jitter —
//!   only for errors whose [`BackendErrorKind`](crate::backend::BackendErrorKind)
//!   is retryable AND statements whose
//!   [`RequestContext`] is replay-safe (idempotent, not inside an
//!   open transaction);
//! * **per-request deadlines** — a wall-clock budget across all attempts,
//!   checked cooperatively between attempts (the synchronous `Backend`
//!   trait cannot interrupt an in-flight call; the gateway's socket
//!   timeouts bound the client-facing side);
//! * a three-state **circuit breaker** (closed → open → half-open probe)
//!   shared by every session on the wrapped backend, so a dead target is
//!   answered fast-fail at the middle tier instead of queueing threads.
//!
//! Everything reports through [`ObsContext`]:
//! `hyperq_backend_retries_total`, `hyperq_backend_deadline_exceeded_total`,
//! `hyperq_backend_breaker_state` (0 = closed, 1 = open, 2 = half-open),
//! `hyperq_backend_breaker_fastfail_total`,
//! `hyperq_backend_breaker_transitions_total{to=…}` and the per-attempt
//! histogram `hyperq_backend_attempt_duration_seconds`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use hyperq_governor::QueryDeadline;
use hyperq_obs::{Counter, Gauge, Histogram, ObsContext};
use hyperq_xtra::catalog::TableDef;

use crate::backend::{Backend, BackendError, ExecResult, RequestContext};

/// Retry/backoff/deadline policy.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// `max_backoff`, then jittered.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away: the sleep is drawn
    /// uniformly from `[(1 - jitter) * b, b]`. 0 disables jitter.
    pub jitter: f64,
    /// Seed for the jitter generator — deterministic timing under test.
    pub seed: u64,
    /// Wall-clock budget for the whole request across attempts and
    /// backoffs. `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0x5EED_CAFE,
            deadline: None,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before letting a half-open probe
    /// through.
    pub cooldown: Duration,
    /// Consecutive half-open successes required to close again.
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
            success_threshold: 1,
        }
    }
}

/// Combined resilience configuration for one wrapped backend.
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
}

/// Breaker states, in gauge encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    opened_at: Option<Instant>,
}

/// A three-state circuit breaker. Shared across sessions of one target.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    state_gauge: Arc<Gauge>,
    transitions: [Arc<Counter>; 3],
}

impl CircuitBreaker {
    fn new(config: BreakerConfig, backend: &str, obs: &ObsContext) -> CircuitBreaker {
        let state_gauge =
            obs.metrics.gauge("hyperq_backend_breaker_state", &[("backend", backend)]);
        state_gauge.set(0);
        let transition = |to: BreakerState| {
            obs.metrics.counter(
                "hyperq_backend_breaker_transitions_total",
                &[("backend", backend), ("to", to.as_str())],
            )
        };
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                half_open_successes: 0,
                opened_at: None,
            }),
            state_gauge,
            transitions: [
                transition(BreakerState::Closed),
                transition(BreakerState::Open),
                transition(BreakerState::HalfOpen),
            ],
        }
    }

    fn transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        inner.state = to;
        self.state_gauge.set(to.gauge_value());
        self.transitions[to.gauge_value() as usize].inc();
        match to {
            BreakerState::Closed => {
                inner.consecutive_failures = 0;
                inner.half_open_successes = 0;
                inner.opened_at = None;
            }
            BreakerState::Open => {
                inner.opened_at = Some(Instant::now());
                inner.half_open_successes = 0;
            }
            BreakerState::HalfOpen => {
                inner.half_open_successes = 0;
            }
        }
    }

    /// Whether a request may proceed right now. An open breaker past its
    /// cooldown flips to half-open and admits the caller as the probe.
    fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|t| t.elapsed() >= self.config.cooldown);
                if cooled {
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.half_open_successes += 1;
                if inner.half_open_successes >= self.config.success_threshold {
                    self.transition(&mut inner, BreakerState::Closed);
                }
            }
            // A success completing after the breaker re-opened: stale, keep
            // the open state authoritative.
            BreakerState::Open => {}
        }
    }

    fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    self.transition(&mut inner, BreakerState::Open);
                }
            }
            // A failed probe re-opens immediately and restarts the cooldown.
            BreakerState::HalfOpen => self.transition(&mut inner, BreakerState::Open),
            BreakerState::Open => {}
        }
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }
}

/// A [`Backend`] wrapper implementing retries, deadlines and the circuit
/// breaker. Stack it *under* [`crate::backend::InstrumentedBackend`] (the
/// crosscompiler wraps instrumentation around whatever backend it is
/// given), and share one instance across sessions so the breaker sees the
/// target's aggregate health.
pub struct ResilientBackend {
    inner: Arc<dyn Backend>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    jitter_rng: Mutex<StdRng>,
    retries: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    fast_fails: Arc<Counter>,
    attempt_latency: Arc<Histogram>,
}

impl ResilientBackend {
    /// Wrap `inner` with the given policy, reporting into `obs`. Returns
    /// the concrete type so callers can inspect [`ResilientBackend::breaker_state`];
    /// it coerces to `Arc<dyn Backend>` where needed.
    pub fn wrap(
        inner: Arc<dyn Backend>,
        config: ResilienceConfig,
        obs: &ObsContext,
    ) -> Arc<ResilientBackend> {
        let labels = &[("backend", inner.name())][..];
        let m = &obs.metrics;
        Arc::new(ResilientBackend {
            breaker: CircuitBreaker::new(config.breaker, inner.name(), obs),
            jitter_rng: Mutex::new(StdRng::seed_from_u64(config.retry.seed)),
            retries: m.counter("hyperq_backend_retries_total", labels),
            deadline_exceeded: m.counter("hyperq_backend_deadline_exceeded_total", labels),
            fast_fails: m.counter("hyperq_backend_breaker_fastfail_total", labels),
            attempt_latency: m.histogram("hyperq_backend_attempt_duration_seconds", labels),
            policy: config.retry,
            inner,
        })
    }

    /// Current breaker state (diagnostics / tests).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Backoff before retry number `retry` (1-based), jittered. With
    /// `jitter = 0` the sequence is exactly `base * 2^(retry-1)` capped at
    /// `max_backoff`; with a fixed seed the jittered sequence is
    /// deterministic too.
    fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.policy.max_backoff);
        let jitter = self.policy.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || exp.is_zero() {
            return exp;
        }
        // 53 high bits of the seeded generator → uniform unit draw.
        let unit = (self.jitter_rng.lock().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(1.0 - jitter * unit)
    }
}

impl Backend for ResilientBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.execute_ctx(sql, RequestContext::from_sql(sql))
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        // The per-request budget and the statement's governor deadline are
        // both expressed as the shared `QueryDeadline`; the retry loop
        // consults whichever is tighter.
        let budget = QueryDeadline::new(self.policy.deadline);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Cooperative cancellation: a cancelled (or past-deadline)
            // statement must not start another attempt. Fatal is never
            // retried and does not touch the breaker.
            if let Err(c) = hyperq_governor::checkpoint() {
                return Err(BackendError::fatal(c.to_string()));
            }
            if !self.breaker.try_acquire() {
                self.fast_fails.inc();
                return Err(BackendError::rejected(format!(
                    "circuit breaker open for target {}; request failed fast",
                    self.inner.name()
                )));
            }
            let t0 = Instant::now();
            let result = self.inner.execute_ctx(sql, ctx);
            self.attempt_latency.record(t0.elapsed());
            let err = match result {
                Ok(r) => {
                    self.breaker.on_success();
                    return Ok(r);
                }
                Err(e) => {
                    self.breaker.on_failure();
                    e
                }
            };
            if !(ctx.allows_retry() && err.kind.is_retryable())
                || attempt >= self.policy.max_attempts
            {
                return Err(err);
            }
            let backoff = self.backoff(attempt);
            if budget.would_exceed(backoff) {
                self.deadline_exceeded.inc();
                return Err(BackendError::timeout(format!(
                    "request deadline of {:?} exceeded after {attempt} attempt(s); \
                     last error: {}",
                    self.policy.deadline.unwrap_or_default(),
                    err.message
                )));
            }
            // Never sleep past the statement's own deadline either: clamp
            // the backoff to what the governor allows and let the
            // checkpoint at the top of the next iteration surface the
            // cancellation.
            let backoff = match hyperq_governor::deadline_remaining() {
                Some(rem) => backoff.min(rem),
                None => backoff,
            };
            self.retries.inc();
            hyperq_obs::provenance::note_retry();
            std::thread::sleep(backoff);
        }
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.inner.table_meta(name)
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        self.inner.reset_session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testing::{FaultInjectingBackend, FaultPlan, ScriptedBackend};
    use crate::backend::BackendErrorKind;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            jitter: 0.5,
            seed: 42,
            deadline: None,
        }
    }

    fn resilient(
        plan: FaultPlan,
        retry: RetryPolicy,
        breaker: BreakerConfig,
    ) -> (Arc<ResilientBackend>, Arc<FaultInjectingBackend>, Arc<ObsContext>) {
        let obs = ObsContext::new();
        let inner = Arc::new(ScriptedBackend::acking(vec![]));
        let fault = FaultInjectingBackend::wrap(inner as Arc<dyn Backend>, plan);
        let rb = ResilientBackend::wrap(
            Arc::clone(&fault) as Arc<dyn Backend>,
            ResilienceConfig { retry, breaker },
            &obs,
        );
        (rb, fault, obs)
    }

    #[test]
    fn backoff_sequence_is_deterministic_for_a_seed() {
        let seq = |seed: u64| -> Vec<Duration> {
            let obs = ObsContext::new();
            let inner = Arc::new(ScriptedBackend::acking(vec![]));
            let rb = ResilientBackend::wrap(
                inner as Arc<dyn Backend>,
                ResilienceConfig {
                    retry: RetryPolicy { seed, ..fast_policy() },
                    breaker: BreakerConfig::default(),
                },
                &obs,
            );
            (1..=6).map(|n| rb.backoff(n)).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same jittered backoffs");
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let obs = ObsContext::new();
        let inner = Arc::new(ScriptedBackend::acking(vec![]));
        let rb = ResilientBackend::wrap(
            inner as Arc<dyn Backend>,
            ResilienceConfig {
                retry: RetryPolicy {
                    base_backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(40),
                    jitter: 0.0,
                    ..fast_policy()
                },
                breaker: BreakerConfig::default(),
            },
            &obs,
        );
        assert_eq!(rb.backoff(1), Duration::from_millis(10));
        assert_eq!(rb.backoff(2), Duration::from_millis(20));
        assert_eq!(rb.backoff(3), Duration::from_millis(40));
        assert_eq!(rb.backoff(4), Duration::from_millis(40), "capped at max_backoff");
        assert_eq!(rb.backoff(40), Duration::from_millis(40), "huge retry counts don't overflow");
    }

    #[test]
    fn retries_until_success_and_counts() {
        let (rb, fault, obs) = resilient(
            FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
            fast_policy(),
            BreakerConfig::default(),
        );
        rb.execute_ctx("SEL 1", RequestContext::read_only()).unwrap();
        assert_eq!(fault.attempts(), 3, "2 failures + 1 success");
        assert_eq!(
            obs.metrics.counter_value("hyperq_backend_retries_total", &[("backend", "scripted")]),
            2
        );
        assert_eq!(rb.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn fatal_errors_are_never_retried() {
        let (rb, fault, _obs) = resilient(
            FaultPlan::always_fail(BackendErrorKind::Fatal),
            fast_policy(),
            BreakerConfig::default(),
        );
        let err = rb.execute_ctx("SEL 1", RequestContext::read_only()).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Fatal);
        assert_eq!(fault.attempts(), 1);
    }

    #[test]
    fn non_idempotent_and_in_transaction_requests_are_never_retried() {
        for ctx in [
            RequestContext::write(),
            RequestContext { idempotent: true, in_transaction: true },
        ] {
            let (rb, fault, _obs) = resilient(
                FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient),
                fast_policy(),
                BreakerConfig::default(),
            );
            assert!(rb.execute_ctx("INSERT INTO T VALUES (1)", ctx).is_err());
            assert_eq!(fault.attempts(), 1, "{ctx:?} must not be retried");
        }
    }

    #[test]
    fn deadline_bounds_total_retry_time() {
        let (rb, fault, obs) = resilient(
            FaultPlan::always_fail(BackendErrorKind::Transient),
            RetryPolicy {
                max_attempts: 100,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(5),
                jitter: 0.0,
                seed: 1,
                deadline: Some(Duration::from_millis(12)),
            },
            BreakerConfig { failure_threshold: 1000, ..Default::default() },
        );
        let err = rb.execute_ctx("SEL 1", RequestContext::read_only()).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Timeout, "{err}");
        assert!(fault.attempts() < 100, "deadline must cut retries short");
        assert_eq!(
            obs.metrics.counter_value(
                "hyperq_backend_deadline_exceeded_total",
                &[("backend", "scripted")]
            ),
            1
        );
    }

    #[test]
    fn breaker_opens_fast_fails_then_recovers_via_half_open() {
        let (rb, fault, obs) = resilient(
            FaultPlan::always_fail(BackendErrorKind::Transient),
            RetryPolicy { max_attempts: 1, ..fast_policy() },
            BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(30),
                success_threshold: 1,
            },
        );
        for _ in 0..3 {
            assert!(rb.execute_ctx("SEL 1", RequestContext::read_only()).is_err());
        }
        assert_eq!(rb.breaker_state(), BreakerState::Open);
        let reached = fault.attempts();

        // While open: fail fast without touching the backend.
        let err = rb.execute_ctx("SEL 1", RequestContext::read_only()).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Rejected);
        assert!(err.message.contains("circuit breaker open"), "{err}");
        assert_eq!(fault.attempts(), reached, "open breaker must not reach the backend");
        assert!(
            obs.metrics.counter_value(
                "hyperq_backend_breaker_fastfail_total",
                &[("backend", "scripted")]
            ) >= 1
        );

        // Heal the target, wait out the cooldown: the next call is the
        // half-open probe, succeeds, and closes the breaker.
        fault.set_plan(FaultPlan::none());
        std::thread::sleep(Duration::from_millis(40));
        rb.execute_ctx("SEL 1", RequestContext::read_only()).unwrap();
        assert_eq!(rb.breaker_state(), BreakerState::Closed);
        assert_eq!(
            obs.metrics.counter_value(
                "hyperq_backend_breaker_transitions_total",
                &[("backend", "scripted"), ("to", "half_open")]
            ),
            1
        );
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let (rb, _fault, _obs) = resilient(
            FaultPlan::always_fail(BackendErrorKind::Transient),
            RetryPolicy { max_attempts: 1, ..fast_policy() },
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(10),
                success_threshold: 1,
            },
        );
        assert!(rb.execute_ctx("SEL 1", RequestContext::read_only()).is_err());
        assert_eq!(rb.breaker_state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        // Probe admitted, fails → straight back to open.
        assert!(rb.execute_ctx("SEL 1", RequestContext::read_only()).is_err());
        assert_eq!(rb.breaker_state(), BreakerState::Open);
    }
}
