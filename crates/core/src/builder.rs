//! The engine's front door: [`HyperQBuilder`] and the canonical
//! [`Request`]/[`Response`] pair.
//!
//! Earlier revisions accreted constructors (`HyperQ::new`, `with_obs`,
//! `with_analysis`) and three run entry points with ad-hoc shapes. The
//! builder replaces the constructor sprawl — one place to set backend,
//! capabilities, observability, analyze mode, translation cache and
//! recovery policy — and `HyperQ::run(Request)` is the single execution
//! entry point that `run_one`/`run_script`/`run_with_params` wrap, so the
//! translation cache keys off one canonical request shape.

use std::sync::Arc;

use hyperq_obs::{ObsContext, ProvenanceConfig};
use hyperq_xtra::datum::Datum;

use crate::analyze::AnalyzeMode;
use crate::backend::Backend;
use crate::cache::{CacheConfig, TranslationCache};
use crate::capability::TargetCapabilities;
use crate::conformance::ConformanceMode;
use crate::crosscompiler::{BuildSpec, HyperQ, StatementResult};
use crate::error::{HyperQError, Result};
use crate::recover::RecoverConfig;
use crate::replicate::{ReplicaConfig, ReplicatedBackend};
use crate::targets::TargetProfile;

enum CacheChoice {
    /// A private cache with default configuration (the default: caching is
    /// transparent, so it is on unless the caller opts out).
    Default,
    Disabled,
    Config(CacheConfig),
    Shared(Arc<TranslationCache>),
}

/// Builder for a [`HyperQ`] session.
///
/// ```
/// use std::sync::Arc;
/// use hyperq_core::backend::testing::ScriptedBackend;
/// use hyperq_core::{targets, HyperQBuilder};
///
/// let backend = ScriptedBackend::acking(vec![]);
/// let mut hq = HyperQBuilder::for_target(Arc::new(backend), targets::simwh()).build();
/// assert!(hq.run_script("BEGIN TRANSACTION; COMMIT").is_ok());
/// ```
pub struct HyperQBuilder {
    backend: Arc<dyn Backend>,
    profile: TargetProfile,
    obs: Option<Arc<ObsContext>>,
    analyze: AnalyzeMode,
    conformance: ConformanceMode,
    cache: CacheChoice,
    recover: RecoverConfig,
    dml_batching: bool,
    provenance: Option<ProvenanceConfig>,
    replicas: Vec<Arc<dyn Backend>>,
    replica_config: ReplicaConfig,
}

impl HyperQBuilder {
    /// Start a builder for the given target profile (the primary
    /// constructor). Profiles come from the registry
    /// ([`crate::targets::lookup`], [`crate::targets::simwh`], ...) or
    /// from [`TargetProfile::from_caps`] for a hand-rolled capability
    /// signature.
    pub fn for_target(backend: Arc<dyn Backend>, profile: TargetProfile) -> Self {
        HyperQBuilder {
            backend,
            profile,
            obs: None,
            analyze: AnalyzeMode::default(),
            conformance: ConformanceMode::default(),
            cache: CacheChoice::Default,
            recover: RecoverConfig::default(),
            dml_batching: true,
            provenance: None,
            replicas: Vec::new(),
            replica_config: ReplicaConfig::default(),
        }
    }

    /// Start a builder from a bare capability signature.
    #[deprecated(
        since = "0.10.0",
        note = "use `HyperQBuilder::for_target` with a `TargetProfile` (e.g. \
                `targets::lookup(\"simwh\")` or `TargetProfile::from_caps`)"
    )]
    pub fn new(backend: Arc<dyn Backend>, caps: TargetCapabilities) -> Self {
        Self::for_target(backend, TargetProfile::from_caps(caps))
    }

    /// Replace the target profile chosen at construction time.
    pub fn target(mut self, profile: TargetProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Run against a replicated warehouse: the primary backend becomes
    /// replica `r0` and each entry of `replicas` an additional replica.
    /// Reads load-balance, writes broadcast, fenced replicas self-heal via
    /// the write-repair journal, and a background health prober runs at
    /// `config.probe_interval` (set it to zero to drive
    /// [`ReplicatedBackend::probe_and_repair`] manually). An empty
    /// `replicas` keeps the plain single-backend stack.
    pub fn replicas(mut self, replicas: Vec<Arc<dyn Backend>>, config: ReplicaConfig) -> Self {
        self.replicas = replicas;
        self.replica_config = config;
        self
    }

    /// Report into the given observability context instead of the
    /// process-wide one (isolated metrics/traces for tests).
    pub fn obs(mut self, obs: Arc<ObsContext>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Static-analysis mode (`LogOnly` by default).
    pub fn analyze(mut self, mode: AnalyzeMode) -> Self {
        self.analyze = mode;
        self
    }

    /// Capability-conformance lint mode over serialized SQL (`LogOnly` by
    /// default; `Strict` fails statements whose emitted SQL uses a
    /// construct the target lacks).
    pub fn conformance(mut self, mode: ConformanceMode) -> Self {
        self.conformance = mode;
        self
    }

    /// Use a private translation cache with the given configuration.
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = CacheChoice::Config(config);
        self
    }

    /// Disable the translation cache: every statement takes the full
    /// pipeline (benchmark baselines, ablations).
    pub fn no_cache(mut self) -> Self {
        self.cache = CacheChoice::Disabled;
        self
    }

    /// Share a translation cache with other sessions (the gateway gives
    /// every connection the same cache; per-session state is part of the
    /// cache key, not the cache identity).
    pub fn shared_cache(mut self, cache: Arc<TranslationCache>) -> Self {
        self.cache = CacheChoice::Shared(cache);
        self
    }

    /// Session-continuity (reconnect + replay) policy.
    pub fn recovery(mut self, config: RecoverConfig) -> Self {
        self.recover = config;
        self
    }

    /// Toggle the single-row DML batching transformation (§4.3). On by
    /// default; the ablation benchmark turns it off.
    pub fn dml_batching(mut self, on: bool) -> Self {
        self.dml_batching = on;
        self
    }

    /// Per-statement provenance capture knobs (enable/disable, ring
    /// capacity, raw-SQL opt-in), applied to the session's observability
    /// context at build time. Without this the context's existing settings
    /// stand (capture on, 1024 records, literal-redacted SQL).
    pub fn provenance(mut self, config: ProvenanceConfig) -> Self {
        self.provenance = Some(config);
        self
    }

    pub fn build(self) -> HyperQ {
        let obs = self.obs.unwrap_or_else(|| Arc::clone(ObsContext::global()));
        if let Some(cfg) = self.provenance {
            cfg.apply(&obs.provenance);
        }
        let cache = match self.cache {
            CacheChoice::Default => {
                Some(Arc::new(TranslationCache::new(CacheConfig::default(), &obs)))
            }
            CacheChoice::Disabled => None,
            CacheChoice::Config(cfg) => Some(Arc::new(TranslationCache::new(cfg, &obs))),
            CacheChoice::Shared(cache) => Some(cache),
        };
        let (backend, replication, prober) = if self.replicas.is_empty() {
            (self.backend, None, None)
        } else {
            let mut set: Vec<Arc<dyn Backend>> = vec![self.backend];
            set.extend(self.replicas);
            let spawn_prober = !self.replica_config.probe_interval.is_zero();
            match ReplicatedBackend::with_config(set, self.replica_config, &obs) {
                Ok(rep) => {
                    let rep = Arc::new(rep);
                    let prober = spawn_prober.then(|| rep.spawn_prober());
                    (Arc::clone(&rep) as Arc<dyn Backend>, Some(rep), prober)
                }
                // `with_config` only fails on an empty set, and `set`
                // always holds the primary.
                Err(_) => unreachable!("replica set always contains the primary backend"),
            }
        };
        HyperQ::from_spec(BuildSpec {
            backend,
            profile: self.profile,
            obs,
            analyze: self.analyze,
            conformance: self.conformance,
            cache,
            recover: self.recover,
            dml_batching: self.dml_batching,
            replication,
            prober,
        })
    }
}

/// Per-request options.
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Skip the translation cache for this request (both lookup and
    /// population).
    pub bypass_cache: bool,
    /// Wall-clock deadline for the whole request. When set (and no
    /// gateway governor is already installed on the thread), `run`
    /// installs a standalone [`hyperq_governor::QueryGovernor`] so every
    /// pipeline checkpoint observes it; expiry surfaces as
    /// [`HyperQError::Cancelled`].
    pub timeout: Option<std::time::Duration>,
    /// Per-request memory budget in bytes (0 = unlimited), enforced the
    /// same way via a standalone governor.
    pub memory_budget: u64,
    /// Run this request against a different registered target profile
    /// (by registry name, e.g. `"simwh-reduced"`). The session's profile
    /// is restored afterwards; an unknown name fails the request.
    pub target: Option<String>,
}

/// The canonical execution request: one SQL text (possibly a
/// multi-statement script), optional positional parameter values, and
/// per-request options. All `run_*` entry points lower onto this.
#[derive(Debug, Clone)]
pub struct Request {
    pub sql: String,
    /// Positional (`?`) parameter values; non-empty restricts the request
    /// to exactly one statement (the ODBC parameterized-query shape,
    /// §4.5).
    pub params: Vec<Datum>,
    pub ctx: RequestOptions,
}

impl Request {
    /// A script of one or more statements.
    pub fn script(sql: impl Into<String>) -> Self {
        Request { sql: sql.into(), params: Vec::new(), ctx: RequestOptions::default() }
    }

    /// One statement with positional parameter values.
    pub fn with_params(sql: impl Into<String>, params: Vec<Datum>) -> Self {
        Request { sql: sql.into(), params, ctx: RequestOptions::default() }
    }

    /// Skip the translation cache for this request.
    pub fn bypass_cache(mut self) -> Self {
        self.ctx.bypass_cache = true;
        self
    }

    /// Bound the whole request by a wall-clock deadline; expiry cancels
    /// the request with [`HyperQError::Cancelled`].
    pub fn timeout(mut self, limit: std::time::Duration) -> Self {
        self.ctx.timeout = Some(limit);
        self
    }

    /// Bound the request's charged memory (engine hash tables and
    /// materialized rows); exceeding it cancels with
    /// [`HyperQError::Cancelled`].
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.ctx.memory_budget = bytes;
        self
    }

    /// Run this request against a different registered target profile
    /// (looked up by name in [`crate::targets::lookup`]); the session's
    /// profile is restored once the request completes.
    pub fn target(mut self, name: impl Into<String>) -> Self {
        self.ctx.target = Some(name.into());
        self
    }
}

/// The result of a [`Request`]: one [`StatementResult`] per statement.
#[derive(Debug, Clone)]
pub struct Response {
    pub statements: Vec<StatementResult>,
}

impl Response {
    /// The last statement's result, consuming the response (the historical
    /// `run_one` shape: a single-statement request has exactly one).
    pub fn into_last(self) -> Result<StatementResult> {
        self.statements
            .into_iter()
            .next_back()
            .ok_or_else(|| HyperQError::Emulation("empty statement".into()))
    }

    pub fn last(&self) -> Option<&StatementResult> {
        self.statements.last()
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, StatementResult> {
        self.statements.iter()
    }
}

impl IntoIterator for Response {
    type Item = StatementResult;
    type IntoIter = std::vec::IntoIter<StatementResult>;
    fn into_iter(self) -> Self::IntoIter {
        self.statements.into_iter()
    }
}
