//! Background repair of fenced replicas.
//!
//! A fenced replica is not dead — it missed writes. This module closes the
//! loop: [`ReplicatedBackend::probe_and_repair`] probes each fenced
//! replica with a cheap read, drains its write-repair journal in order
//! under an idempotent [`RequestContext`], and re-admits the replica only
//! after a clean drain. Re-admission requires, under the state lock, an
//! empty journal *and* no outstanding pending-miss tickets (a broadcast
//! that observed the fence but has not yet journaled its op): a write
//! racing the drain therefore either lands in the journal before the
//! check, or defers the heal to the next sweep — it is never applied out
//! of order and never lost.
//!
//! [`ReplicatedBackend::spawn_prober`] runs the sweep on a background
//! thread with a configurable interval, mirroring the governor watchdog's
//! lifecycle idiom: the returned [`ProberHandle`] stops and joins the
//! thread on drop, so a gateway shutdown cannot leak it.
//!
//! Replicas in [`ReplicaHealth::NeedsResync`] are deliberately skipped:
//! their journal overflowed (or their write results diverged), so replay
//! can no longer reconcile them and re-admission needs an out-of-band
//! rebuild.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::backend::RequestContext;
use crate::replicate::{RepairOp, ReplicaHealth, ReplicatedBackend};

/// What one repair sweep accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Fenced replicas probed this sweep.
    pub probed: usize,
    /// Journal entries successfully replayed.
    pub repaired_ops: usize,
    /// Replicas re-admitted to rotation after a clean drain.
    pub healed: usize,
    /// Replicas still fenced after the sweep (failed probe or mid-drain
    /// failure).
    pub still_fenced: usize,
}

impl ReplicatedBackend {
    /// One synchronous repair sweep: probe every fenced replica, drain its
    /// journal, re-admit on a clean drain. Safe to call concurrently with
    /// live traffic (and with itself — journal entries are popped only
    /// after successful replay, so double replay of an applied entry is
    /// the worst case, and entries are replayed under an idempotent
    /// context for exactly that reason).
    pub fn probe_and_repair(&self) -> RepairReport {
        let mut report = RepairReport::default();
        for (i, r) in self.replicas.iter().enumerate() {
            if r.state.lock().health != ReplicaHealth::Fenced {
                continue;
            }
            report.probed += 1;
            // The probe runs outside any statement, so shield the
            // session's provenance record from its retries.
            let probe = hyperq_obs::provenance::suspended(|| {
                r.backend.execute_ctx(&self.config.probe_sql, RequestContext::read_only())
            });
            if probe.is_err() {
                r.probes_fail.inc();
                report.still_fenced += 1;
                continue;
            }
            r.probes_ok.inc();
            let replayed_before = r.repairs.get();
            if self.drain_journal(i) {
                report.healed += 1;
            } else {
                report.still_fenced += 1;
            }
            report.repaired_ops += (r.repairs.get() - replayed_before) as usize;
        }
        report
    }

    /// Drain one fenced replica's journal in order; returns whether the
    /// replica was re-admitted.
    fn drain_journal(&self, i: usize) -> bool {
        let r = &self.replicas[i];
        loop {
            // Peek without holding the lock across the replay call: a
            // concurrent broadcast must be able to append.
            let front = {
                let st = r.state.lock();
                if st.health != ReplicaHealth::Fenced {
                    return st.health == ReplicaHealth::Healthy;
                }
                st.journal.front().cloned()
            };
            let Some(op) = front else {
                let mut st = r.state.lock();
                if st.health != ReplicaHealth::Fenced {
                    return st.health == ReplicaHealth::Healthy;
                }
                if !st.journal.is_empty() {
                    // A write raced in between the peek and this check;
                    // keep draining.
                    continue;
                }
                if st.pending_misses > 0 {
                    // An in-flight broadcast observed the fence and will
                    // journal its op momentarily. Re-admitting now would
                    // let newer broadcasts apply before that older op —
                    // stay fenced, the next sweep drains it.
                    return false;
                }
                // Empty journal, no pending misses, all under one lock ⇒
                // nothing raced in ⇒ re-admit.
                st.health = ReplicaHealth::Healthy;
                r.health_state.set(0);
                r.heals.inc();
                drop(st);
                self.refresh_healthy_gauge();
                return true;
            };
            let replayed = hyperq_obs::provenance::suspended(|| match &op {
                RepairOp::Write(sql) => r
                    .backend
                    .execute_ctx(sql, RequestContext { idempotent: true, in_transaction: false })
                    .is_ok(),
                RepairOp::Reset => r.backend.reset_session().is_ok(),
            });
            if !replayed {
                // Stay fenced; the next sweep starts from the same entry.
                return false;
            }
            let mut st = r.state.lock();
            st.journal.pop_front();
            r.depth_gauge.set(st.journal.len() as i64);
            r.repairs.inc();
        }
    }

    /// Start the background health prober at the configured interval
    /// (clamped to ≥ 1ms). The prober stops when the handle drops, so own
    /// it for the gateway's lifetime and drop it during shutdown.
    pub fn spawn_prober(self: &Arc<Self>) -> ProberHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let set = Arc::clone(self);
        let interval = self.config.probe_interval.max(Duration::from_millis(1));
        let thread = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                set.probe_and_repair();
                // Sleep in small slices so shutdown never waits a full
                // interval for the join.
                let mut remaining = interval;
                while !remaining.is_zero() && !flag.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        ProberHandle { stop, thread: Some(thread) }
    }
}

/// Owns the prober thread; dropping stops and joins it.
pub struct ProberHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ProberHandle {
    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ProberHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testing::{FaultInjectingBackend, FaultPlan};
    use crate::backend::{Backend, BackendError, BackendErrorKind, ExecResult};
    use crate::replicate::ReplicaConfig;
    use crate::resilience::{ResilienceConfig, RetryPolicy};
    use hyperq_obs::ObsContext;
    use hyperq_xtra::catalog::TableDef;
    use parking_lot::Mutex;

    /// An append-only fake warehouse: every applied write lands in `log`,
    /// so post-heal convergence is literal log equality.
    struct LogDb {
        log: Mutex<Vec<String>>,
    }

    impl LogDb {
        fn new() -> Arc<Self> {
            Arc::new(LogDb { log: Mutex::new(Vec::new()) })
        }
    }

    impl Backend for LogDb {
        fn name(&self) -> &str {
            "logdb"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            if crate::replicate::is_read_only(sql) {
                return Ok(ExecResult::ack());
            }
            self.log.lock().push(sql.to_string());
            Ok(ExecResult::affected(1))
        }

        fn table_meta(&self, _name: &str) -> Option<TableDef> {
            None
        }
    }

    fn no_retry_config() -> ReplicaConfig {
        ReplicaConfig {
            probe_interval: Duration::ZERO,
            resilience: Some(ResilienceConfig {
                retry: RetryPolicy { max_attempts: 1, ..Default::default() },
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn fenced_replica_heals_after_journal_drain_and_states_converge() {
        let (a, b) = (LogDb::new(), LogDb::new());
        let flaky = FaultInjectingBackend::wrap(
            Arc::clone(&b) as Arc<dyn Backend>,
            FaultPlan::fail_n_then_succeed(1, BackendErrorKind::ConnectionLost),
        );
        let rep = Arc::new(
            ReplicatedBackend::with_config(
                vec![Arc::clone(&a) as Arc<dyn Backend>, flaky as Arc<dyn Backend>],
                no_retry_config(),
                &ObsContext::new(),
            )
            .unwrap(),
        );
        rep.execute("INSERT INTO T VALUES (1)").unwrap(); // fences r1
        rep.execute("INSERT INTO T VALUES (2)").unwrap(); // journaled for r1
        rep.execute("INSERT INTO T VALUES (3)").unwrap();
        assert_eq!(rep.healthy_replicas(), 1);
        assert_eq!(rep.snapshot()[1].journal_depth, 3);

        let report = rep.probe_and_repair();
        assert_eq!(report.healed, 1, "{report:?}");
        assert_eq!(report.still_fenced, 0);
        assert_eq!(rep.healthy_replicas(), 2);
        assert_eq!(rep.snapshot()[1].journal_depth, 0, "no journal leak");
        assert_eq!(rep.snapshot()[1].heals, 1);
        assert_eq!(*a.log.lock(), *b.log.lock(), "replica states must converge");

        // The healed replica participates in the next broadcast directly.
        rep.execute("INSERT INTO T VALUES (4)").unwrap();
        assert_eq!(*a.log.lock(), *b.log.lock());
    }

    #[test]
    fn prober_defers_readmission_while_a_broadcast_miss_is_pending() {
        // A broadcast that saw the fence holds a pending-miss ticket until
        // its op lands in the journal. The prober must not re-admit the
        // replica in that window, even with an empty journal — a heal there
        // would let newer writes apply before the older in-flight op.
        let (a, b) = (LogDb::new(), LogDb::new());
        let rep = ReplicatedBackend::with_config(
            vec![Arc::clone(&a) as Arc<dyn Backend>, Arc::clone(&b) as Arc<dyn Backend>],
            no_retry_config(),
            &ObsContext::new(),
        )
        .unwrap();
        rep.fence(1);
        rep.replicas[1].state.lock().pending_misses += 1;
        let report = rep.probe_and_repair();
        assert_eq!((report.healed, report.still_fenced), (0, 1), "{report:?}");
        assert_eq!(rep.healthy_replicas(), 1);
        // Ticket released (the broadcast journaled or applied nowhere):
        // the next sweep re-admits.
        rep.replicas[1].state.lock().pending_misses -= 1;
        let report = rep.probe_and_repair();
        assert_eq!(report.healed, 1, "{report:?}");
        assert_eq!(rep.healthy_replicas(), 2);
    }

    #[test]
    fn failed_probe_keeps_the_replica_fenced() {
        let (a, b) = (LogDb::new(), LogDb::new());
        let dead = FaultInjectingBackend::wrap(
            Arc::clone(&b) as Arc<dyn Backend>,
            FaultPlan::always_fail(BackendErrorKind::ConnectionLost),
        );
        let rep = ReplicatedBackend::with_config(
            vec![Arc::clone(&a) as Arc<dyn Backend>, Arc::clone(&dead) as Arc<dyn Backend>],
            no_retry_config(),
            &ObsContext::new(),
        )
        .unwrap();
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        assert_eq!(rep.healthy_replicas(), 1);
        let report = rep.probe_and_repair();
        assert_eq!((report.probed, report.healed, report.still_fenced), (1, 0, 1));
        assert_eq!(rep.healthy_replicas(), 1);

        // Heal the link; the next sweep drains and re-admits.
        dead.set_plan(FaultPlan::none());
        let report = rep.probe_and_repair();
        assert_eq!(report.healed, 1);
        assert_eq!(*a.log.lock(), *b.log.lock());
    }

    #[test]
    fn background_prober_heals_without_manual_sweeps() {
        let (a, b) = (LogDb::new(), LogDb::new());
        let flaky = FaultInjectingBackend::wrap(
            Arc::clone(&b) as Arc<dyn Backend>,
            FaultPlan::fail_n_then_succeed(1, BackendErrorKind::ConnectionLost),
        );
        let mut config = no_retry_config();
        config.probe_interval = Duration::from_millis(5);
        let rep = Arc::new(
            ReplicatedBackend::with_config(
                vec![Arc::clone(&a) as Arc<dyn Backend>, flaky as Arc<dyn Backend>],
                config,
                &ObsContext::new(),
            )
            .unwrap(),
        );
        let prober = rep.spawn_prober();
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rep.healthy_replicas() < 2 {
            assert!(std::time::Instant::now() < deadline, "prober never healed the replica");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(prober); // must stop and join cleanly
        assert_eq!(*a.log.lock(), *b.log.lock());
        assert_eq!(rep.snapshot()[1].journal_depth, 0);
    }
}
